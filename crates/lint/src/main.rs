#![forbid(unsafe_code)]
//! The `iqb-lint` binary: lint the workspace, print rustc-style
//! diagnostics, exit nonzero when anything fires.
//!
//! ```text
//! cargo run -p iqb-lint            # lint the workspace you're in
//! cargo run -p iqb-lint -- --root <dir> --config <lint.toml>
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use iqb_lint::Config;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(value) => root = Some(PathBuf::from(value)),
                None => return usage("--root needs a directory"),
            },
            "--config" => match args.next() {
                Some(value) => config_path = Some(PathBuf::from(value)),
                None => return usage("--config needs a file path"),
            },
            "--help" | "-h" => {
                println!(
                    "iqb-lint: workspace invariant checker\n\n\
                     USAGE: iqb-lint [--root <workspace-dir>] [--config <lint.toml>]\n\n\
                     Without --root, the workspace root is found by walking up from the\n\
                     current directory to the first Cargo.toml declaring [workspace].\n\
                     Without --config, <root>/lint.toml is used (built-in policy if absent)."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(root) => root,
        None => {
            eprintln!("iqb-lint: no Cargo.toml with [workspace] above the current directory");
            return ExitCode::from(2);
        }
    };
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config = match Config::load(&config_path) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("iqb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    match iqb_lint::run_workspace(&root, &config) {
        Ok(diags) if diags.is_empty() => {
            println!("iqb-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}\n");
            }
            println!("iqb-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("iqb-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("iqb-lint: {problem} (try --help)");
    ExitCode::from(2)
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|text| text.lines().any(|l| l.trim() == "[workspace]"))
        .unwrap_or(false)
}
