//! Lock-acquisition-order discipline: the classic deadlock
//! precondition is two threads taking the same pair of locks in
//! opposite orders. This pass builds a workspace-wide acquisition-order
//! graph over the lock identities declared in `[locks] names` — every
//! `(held, acquired)` pair observed inside one function body is a
//! directed edge — and flags **every** site of any pair that appears in
//! both directions, naming the opposing acquisition site so the
//! diagnostic carries both halves of the cycle.
//!
//! Same-identity pairs never form an edge: at the lexical level two
//! guards on fields that share a name (two shards' `writer` mutexes)
//! are indistinguishable from re-locking one instance, and flagging
//! them would misfire on legitimate cross-instance replay. That is a
//! documented false negative, not an accident.

use std::collections::BTreeMap;

use crate::analysis::{lock_model, LexedFile};
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::walker::Role;

/// One observed `(held, acquired)` site.
struct Site {
    file_idx: usize,
    fn_name: String,
    held_line: u32,
    acquired_line: u32,
}

pub fn check(files: &[LexedFile<'_>], config: &Config, diags: &mut Vec<Diagnostic>) {
    if config.lock_names.is_empty() {
        return;
    }
    let mut edges: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();
    for (file_idx, file) in files.iter().enumerate() {
        if file.src.role == Role::Test {
            continue;
        }
        for function in lock_model(file, &config.lock_names) {
            for edge in &function.edges {
                if file.in_test(edge.acquired_line) {
                    continue;
                }
                edges
                    .entry((edge.held.clone(), edge.acquired.clone()))
                    .or_default()
                    .push(Site {
                        file_idx,
                        fn_name: function.name.clone(),
                        held_line: edge.held_line,
                        acquired_line: edge.acquired_line,
                    });
            }
        }
    }
    for ((a, b), forward) in &edges {
        // Each unordered pair is handled once, from its
        // lexicographically first key; both directions are flagged.
        if a >= b {
            continue;
        }
        let Some(reverse) = edges.get(&(b.clone(), a.clone())) else {
            continue;
        };
        flag_sites(files, config, diags, (a, b), forward, reverse);
        flag_sites(files, config, diags, (b, a), reverse, forward);
    }
}

/// Flags every site taking `pair.0` → `pair.1` against the first site
/// of the opposite order.
fn flag_sites(
    files: &[LexedFile<'_>],
    config: &Config,
    diags: &mut Vec<Diagnostic>,
    pair: (&str, &str),
    sites: &[Site],
    opposing: &[Site],
) {
    let Some(other) = opposing.first() else {
        return;
    };
    let other_file = &files[other.file_idx].src.path;
    for site in sites {
        let file = &files[site.file_idx];
        super::emit(
            file,
            config,
            diags,
            "lock_order",
            site.acquired_line,
            format!(
                "lock `{}` acquired while `{}` (taken at line {}) is held, but \
                 {}:{} (fn `{}`) takes them in the opposite order; two threads, \
                 one in each order, deadlock",
                pair.1, pair.0, site.held_line, other_file, other.acquired_line, other.fn_name
            ),
        );
    }
}
