//! The eleven lint families.
//!
//! Each rule module exposes `check(...)` taking the per-file analysis
//! context and pushing [`Diagnostic`]s. Emission funnels through
//! [`emit`] so annotation and allowlist handling is identical
//! everywhere: a `// lint: allow(<rule>) <reason>` comment on the
//! violating line (or the line above) suppresses the finding, an
//! annotation without a reason does not, and `lint.toml` `[[allow]]`
//! entries suppress by path (optionally pinned to a line).

pub mod float;
pub mod hot_alloc;
pub mod iter_order;
pub mod lock_held;
pub mod lock_order;
pub mod metric_names;
pub mod nondet;
pub mod panics;
pub mod serve_role;
pub mod time;
pub mod unsafe_attr;

use crate::analysis::LexedFile;
use crate::config::Config;
use crate::diagnostics::Diagnostic;

/// Reports a violation unless an annotation or allowlist entry covers
/// it. A reason-less annotation is rejected loudly rather than silently
/// honoured: the policy is that every suppression names its excuse.
/// Suppressed findings are still recorded (with `allowed: true`) so
/// `--format json` can surface the full audit trail; only
/// `allowed: false` diagnostics count as violations.
pub(crate) fn emit(
    file: &LexedFile<'_>,
    config: &Config,
    diags: &mut Vec<Diagnostic>,
    rule: &'static str,
    line: u32,
    message: String,
) {
    if config.allows(rule, &file.src.path, line) {
        diags.push(Diagnostic::suppressed(&file.src.path, line, rule, message));
        return;
    }
    if let Some(annotation) = file.annotation(rule, line) {
        if annotation.has_reason {
            diags.push(Diagnostic::suppressed(&file.src.path, line, rule, message));
            return;
        }
        diags.push(Diagnostic::new(
            &file.src.path,
            line,
            rule,
            format!("{message} (the `lint: allow({rule})` annotation needs a reason)"),
        ));
        return;
    }
    diags.push(Diagnostic::new(&file.src.path, line, rule, message));
}
