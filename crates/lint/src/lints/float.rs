//! Float-determinism: comparisons that are partial or NaN-asymmetric
//! poison sort stability and fold results. Scores must order floats
//! with `total_cmp`, whose ordering is total and platform-independent.

use crate::analysis::LexedFile;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;
use crate::walker::Role;

pub fn check(file: &LexedFile<'_>, config: &Config, diags: &mut Vec<Diagnostic>) {
    if file.src.role == Role::Test {
        return;
    }
    let toks = &file.toks;
    for i in 0..toks.len() {
        let line = toks[i].line;
        if file.in_test(line) {
            continue;
        }
        match file.ident(i) {
            Some("partial_cmp") => {
                // `fn partial_cmp` is the PartialOrd impl itself, not a
                // comparison through it.
                if i > 0 && file.ident(i - 1) == Some("fn") {
                    continue;
                }
                super::emit(
                    file,
                    config,
                    diags,
                    "float",
                    line,
                    "ordering through `partial_cmp` is not total (NaN compares as None); \
                     use `total_cmp` for float ordering"
                        .to_string(),
                );
            }
            Some(m @ ("max" | "min")) => {
                if float_min_max(file, i) {
                    super::emit(
                        file,
                        config,
                        diags,
                        "float",
                        line,
                        format!(
                            "float `{m}` propagates the non-NaN operand, so a stray NaN \
                             silently vanishes from the reduction; compare with `total_cmp` \
                             (e.g. `max_by(|a, b| a.total_cmp(b))`) or handle NaN explicitly"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Whether the `max`/`min` identifier at `i` is a float comparison the
/// lint can see without type inference: the `f64::max` / `f32::min`
/// path form, or a method call whose receiver or first argument is a
/// float literal (`x.max(0.0)`, `1.5.min(y)`).
fn float_min_max(file: &LexedFile<'_>, i: usize) -> bool {
    // Path form: `f64 :: max`.
    if i >= 3 && file.path_sep(i - 2) && matches!(file.ident(i - 3), Some("f64") | Some("f32")) {
        return true;
    }
    // Method form needs `.` before and `(` after to be a call at all.
    if i == 0 || !file.punct(i - 1, '.') || !file.punct(i + 1, '(') {
        return false;
    }
    if i >= 2 && is_float_literal(file, i - 2) {
        return true;
    }
    is_float_literal(file, i + 2)
}

fn is_float_literal(file: &LexedFile<'_>, i: usize) -> bool {
    matches!(&file.toks.get(i), Some(t) if t.kind == TokKind::Num
        && (t.text.contains('.') || t.text.contains("f64") || t.text.contains("f32")))
}
