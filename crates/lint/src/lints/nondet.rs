//! Nondeterminism sources: inside scoring-path crates (the `[nondet]
//! crates` list in `lint.toml`) wall clocks, monotonic clocks, ambient
//! RNG and environment reads are banned. Scores must be a pure function
//! of the ingested data and the seeded configuration; anything ambient
//! belongs in `cli` or `bench`, which are deliberately off the list.

use crate::analysis::LexedFile;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::walker::Role;

pub fn check(file: &LexedFile<'_>, config: &Config, diags: &mut Vec<Diagnostic>) {
    if file.src.role == Role::Test || !config.nondet_crates.contains(&file.src.crate_key) {
        return;
    }
    for i in 0..file.toks.len() {
        let line = file.toks[i].line;
        if file.in_test(line) {
            continue;
        }
        let finding = match file.ident(i) {
            Some(t @ ("SystemTime" | "Instant"))
                if file.path_sep(i + 1) && file.ident(i + 3) == Some("now") =>
            {
                Some(format!(
                    "`{t}::now()` in a scoring-path crate: clock reads make runs \
                     unreproducible; thread timestamps in as data or move the read to `cli`"
                ))
            }
            Some(t @ ("thread_rng" | "from_entropy" | "OsRng")) => Some(format!(
                "`{t}` seeds from ambient entropy: scoring-path randomness must come \
                 from an explicitly seeded `StdRng`"
            )),
            Some("env")
                if file.path_sep(i + 1)
                    && matches!(
                        file.ident(i + 3),
                        Some("var") | Some("var_os") | Some("vars") | Some("vars_os")
                    ) =>
            {
                Some(
                    "environment read in a scoring-path crate: configuration must arrive \
                     through typed arguments (env reads belong in `cli` or `bench`)"
                        .to_string(),
                )
            }
            _ => None,
        };
        if let Some(message) = finding {
            super::emit(file, config, diags, "nondet", line, message);
        }
    }
}
