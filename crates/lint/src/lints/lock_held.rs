//! Held-guard hygiene, two shapes over the declared lock identities
//! (`[locks] names`):
//!
//! 1. A call from the `[lock_held] deny` list — socket/file I/O, thread
//!    joins, ingest/rescore entry points — made while a guard is live
//!    stretches the critical section across a blocking operation: every
//!    other thread contending on that lock stalls behind the I/O.
//! 2. A guard bound with `let _ = x.lock()` drops on the same
//!    statement: the critical section is empty and whatever the author
//!    thought was protected is not. Use `let _guard = ...` for an
//!    intentional scope-long hold.

use crate::analysis::{lock_model, GuardBinding, LexedFile};
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::walker::Role;

pub fn check(file: &LexedFile<'_>, config: &Config, diags: &mut Vec<Diagnostic>) {
    if file.src.role == Role::Test || config.lock_names.is_empty() {
        return;
    }
    for function in lock_model(file, &config.lock_names) {
        for acq in &function.acquisitions {
            if acq.binding == GuardBinding::Wildcard && !file.in_test(acq.line) {
                super::emit(
                    file,
                    config,
                    diags,
                    "lock_held",
                    acq.line,
                    format!(
                        "guard on `{}` bound with `let _ = ...` drops immediately: \
                         the critical section is empty; bind it `let _guard = ...` \
                         to hold the lock for the scope, or delete the acquisition",
                        acq.lock
                    ),
                );
            }
        }
        for call in &function.calls {
            if !config.lock_held_deny.contains(&call.callee) || file.in_test(call.line) {
                continue;
            }
            super::emit(
                file,
                config,
                diags,
                "lock_held",
                call.line,
                format!(
                    "blocking call `{}(..)` while the guard on `{}` (`.{}()` at \
                     line {}) is held; move the work out of the critical section \
                     or shrink the guard's scope",
                    call.callee, call.guard.lock, call.guard.method, call.guard.line
                ),
            );
        }
    }
}
