//! Per-record allocation discipline on the hot paths listed in
//! `[hot_alloc] paths` (streaming ingest, pane merging, session
//! scoring): inside a loop body, an allocation per iteration is an
//! allocation per record, and at "millions of users" scale that is the
//! difference between a bounded-memory pipeline and a GC-shaped latency
//! curve. Flags `format!`, `.to_string()`, `.clone()` (method form —
//! `Arc::clone(&x)` is the sanctioned cheap-clone spelling and is not
//! flagged), `Vec::new` and `String::new` inside `for`/`while`/`loop`
//! bodies. Hoist the allocation, reuse a buffer, or carry a reasoned
//! `// lint: allow(hot_alloc)` annotation.

use crate::analysis::LexedFile;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;
use crate::walker::Role;

pub fn check(file: &LexedFile<'_>, config: &Config, diags: &mut Vec<Diagnostic>) {
    if file.src.role == Role::Test || !config.hot_alloc_paths.contains(&file.src.path) {
        return;
    }
    let bodies = loop_bodies(file);
    if bodies.is_empty() {
        return;
    }
    let in_loop = |i: usize| bodies.iter().any(|&(open, close)| i > open && i < close);
    for i in 0..file.toks.len() {
        let line = file.toks[i].line;
        if file.in_test(line) || !in_loop(i) {
            continue;
        }
        let Some(name) = file.ident(i) else { continue };
        let found = if name == "format" && file.punct(i + 1, '!') {
            Some("`format!` allocates a fresh `String` per record".to_string())
        } else if matches!(name, "to_string" | "clone")
            && i >= 1
            && file.punct(i - 1, '.')
            && file.punct(i + 1, '(')
            && file.punct(i + 2, ')')
        {
            Some(format!("`.{name}()` allocates per record"))
        } else if matches!(name, "Vec" | "String")
            && file.path_sep(i + 1)
            && file.ident(i + 3) == Some("new")
        {
            Some(format!("`{name}::new` allocates per record"))
        } else {
            None
        };
        if let Some(what) = found {
            super::emit(
                file,
                config,
                diags,
                "hot_alloc",
                line,
                format!(
                    "{what} in a hot-path loop; hoist it out of the loop or reuse \
                     a buffer across iterations"
                ),
            );
        }
    }
}

/// Token index ranges `(open, close)` of every loop body in the file.
/// A `for` is only a loop when an `in` token appears before its body
/// brace (which excludes `impl Trait for Type { ... }`); `while` and
/// `loop` take the first `{` at paren/bracket depth 0.
fn loop_bodies(file: &LexedFile<'_>) -> Vec<(usize, usize)> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let keyword = match file.ident(i) {
            Some(k @ ("for" | "while" | "loop")) => k,
            _ => {
                i += 1;
                continue;
            }
        };
        let mut depth = 0i32;
        let mut saw_in = keyword != "for";
        let mut open = None;
        let mut j = i + 1;
        while j < toks.len() {
            let t = &toks[j];
            match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "in") if depth == 0 => saw_in = true,
                (TokKind::Punct, "(") | (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, ")") | (TokKind::Punct, "]") => depth -= 1,
                (TokKind::Punct, "{") if depth == 0 => {
                    open = Some(j);
                    break;
                }
                (TokKind::Punct, ";") if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let (Some(open), true) = (open, saw_in) else {
            i += 1;
            continue;
        };
        let mut braces = 0i32;
        let mut close = open;
        for (k, t) in toks.iter().enumerate().skip(open) {
            if t.kind == TokKind::Punct {
                if t.text == "{" {
                    braces += 1;
                } else if t.text == "}" {
                    braces -= 1;
                    if braces == 0 {
                        close = k;
                        break;
                    }
                }
            }
        }
        out.push((open, close));
        // Descend so nested loops are found; overlapping ranges are
        // fine — membership is "inside any body".
        i = open + 1;
    }
    out
}
