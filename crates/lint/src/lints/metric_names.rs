//! Metric-name discipline: the obs metric namespace is governed by a
//! single catalog file (`crates/obs/src/names.rs`). Instrumentation
//! call sites (`.counter(..)`, `.gauge(..)`, `.histogram(..)`) must
//! route through the catalog constants — a raw string literal at a call
//! site is flagged whether or not its value happens to match a catalog
//! entry. In the other direction, a catalog constant no production code
//! references is a dead entry and is flagged at its definition.

use crate::analysis::LexedFile;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::lexer::TokKind;
use crate::walker::Role;

/// One `pub const NAME: &str = "value";` entry from the catalog.
struct CatalogEntry {
    name: String,
    value: String,
    line: u32,
}

const SINK_METHODS: [&str; 4] = ["counter", "gauge", "histogram", "histogram_with_buckets"];

pub fn check(files: &[LexedFile<'_>], config: &Config, diags: &mut Vec<Diagnostic>) {
    let catalog_file = match files.iter().find(|f| f.src.path == config.metric_catalog) {
        Some(f) => f,
        // No catalog in this file set (e.g. a fixture run that is not
        // exercising this lint): nothing to check against.
        None => return,
    };
    let catalog = extract_catalog(catalog_file);

    for file in files {
        if file.src.role == Role::Test {
            continue;
        }
        check_call_sites(file, config, &catalog, diags);
    }

    for entry in &catalog {
        let referenced = files.iter().any(|f| {
            f.src.path != config.metric_catalog
                && f.src.role != Role::Test
                && f.toks
                    .iter()
                    .any(|t| t.kind == TokKind::Ident && t.text == entry.name && !f.in_test(t.line))
        });
        if !referenced {
            super::emit(
                catalog_file,
                config,
                diags,
                "metric-names",
                entry.line,
                format!(
                    "dead catalog entry: `{}` (\"{}\") has no production reference; \
                     delete it or wire up the instrumentation",
                    entry.name, entry.value
                ),
            );
        }
    }
}

/// Flags raw string literals fed to metric-sink methods. A literal that
/// matches a catalog value should be the constant; one that does not is
/// an unregistered metric name.
fn check_call_sites(
    file: &LexedFile<'_>,
    config: &Config,
    catalog: &[CatalogEntry],
    diags: &mut Vec<Diagnostic>,
) {
    for i in 0..file.toks.len() {
        let line = file.toks[i].line;
        if file.in_test(line) {
            continue;
        }
        let is_sink = matches!(file.ident(i), Some(name) if SINK_METHODS.contains(&name));
        if !is_sink || i == 0 || !file.punct(i - 1, '.') || !file.punct(i + 1, '(') {
            continue;
        }
        let arg = match file.toks.get(i + 2) {
            Some(t) if t.kind == TokKind::Str => t,
            _ => continue,
        };
        let message = match catalog.iter().find(|e| e.value == arg.text) {
            Some(entry) => format!(
                "metric name \"{}\" is written as a literal; use the catalog constant \
                 `names::{}` so renames stay atomic",
                arg.text, entry.name
            ),
            None => format!(
                "metric name \"{}\" is not in the catalog ({}); register it there first",
                arg.text, config.metric_catalog
            ),
        };
        super::emit(file, config, diags, "metric-names", arg.line, message);
    }
}

/// Pulls `const NAME: ... = "value";` pairs out of the catalog file.
fn extract_catalog(file: &LexedFile<'_>) -> Vec<CatalogEntry> {
    let mut out = Vec::new();
    let toks = &file.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if file.ident(i) == Some("const") && !file.in_test(toks[i].line) {
            if let Some(name) = file.ident(i + 1) {
                let line = toks[i].line;
                let name = name.to_string();
                // Scan the initializer up to `;` for its string value.
                let mut j = i + 2;
                let mut value = None;
                while j < toks.len() && !file.punct(j, ';') {
                    if toks[j].kind == TokKind::Str {
                        value = Some(toks[j].text.clone());
                        break;
                    }
                    j += 1;
                }
                if let Some(value) = value {
                    out.push(CatalogEntry { name, value, line });
                }
                i = j;
            }
        }
        i += 1;
    }
    out
}
