//! Panic-surface policy: library code in the core scoring crates (the
//! `[panic] crates` list) must not call `.unwrap()` / `.expect(...)`.
//! Either the error is handled and routed, or the call carries a
//! `// lint: allow(panic) <reason>` annotation explaining why the
//! invariant cannot fail. Tests, benches and binaries are exempt —
//! panicking is an acceptable failure mode there.

use crate::analysis::LexedFile;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::walker::Role;

pub fn check(file: &LexedFile<'_>, config: &Config, diags: &mut Vec<Diagnostic>) {
    if file.src.role != Role::Lib || !config.panic_crates.contains(&file.src.crate_key) {
        return;
    }
    for i in 0..file.toks.len() {
        let line = file.toks[i].line;
        if file.in_test(line) {
            continue;
        }
        if let Some(name @ ("unwrap" | "expect")) = file.ident(i) {
            // Only the method-call shape: `.unwrap()` / `.expect(`.
            if i == 0 || !file.punct(i - 1, '.') || !file.punct(i + 1, '(') {
                continue;
            }
            super::emit(
                file,
                config,
                diags,
                "panic",
                line,
                format!(
                    "`.{name}(..)` in library code: return the error, or justify with \
                     `// lint: allow(panic) <reason>` if the invariant is locally provable"
                ),
            );
        }
    }
}
