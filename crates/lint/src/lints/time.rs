//! Event-time purity: files on the temporal scoring path (the `[time]
//! paths` list in `lint.toml`) must derive every timestamp from record
//! data. Windows close when a watermark computed from ingested
//! timestamps passes their end; a `SystemTime::now()` or
//! `Instant::now()` read in these files would tie window closure (or
//! campaign scheduling) to the wall clock, turning deterministic replay
//! into a race. The ban is file-scoped — unlike `nondet`'s crate scope —
//! so it also holds in the serving and CLI layers, whose *other* code is
//! deliberately free to read clocks.

use crate::analysis::LexedFile;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::walker::Role;

pub fn check(file: &LexedFile<'_>, config: &Config, diags: &mut Vec<Diagnostic>) {
    if file.src.role == Role::Test || !config.time_paths.contains(&file.src.path) {
        return;
    }
    for i in 0..file.toks.len() {
        let line = file.toks[i].line;
        if file.in_test(line) {
            continue;
        }
        if let Some(t @ ("SystemTime" | "Instant")) = file.ident(i) {
            if file.path_sep(i + 1) && file.ident(i + 3) == Some("now") {
                super::emit(
                    file,
                    config,
                    diags,
                    "time",
                    line,
                    format!(
                        "`{t}::now()` on the event-time scoring path: window, \
                         watermark and campaign timestamps must come from record \
                         data, never the wall clock"
                    ),
                );
            }
        }
    }
}
