//! Socket confinement: only the serving crates (the `[serve] crates`
//! list in `lint.toml` — the daemon and its CLI driver) may name
//! `std::net` listener and stream types. Scoring crates are pure
//! functions of their inputs; a socket anywhere else is an architecture
//! violation, not a style problem. (Wall-clock reads are already
//! governed by the `[nondet]` list, from which the serving crates are
//! deliberately absent.)

use crate::analysis::LexedFile;
use crate::config::Config;
use crate::diagnostics::Diagnostic;
use crate::walker::Role;

pub fn check(file: &LexedFile<'_>, config: &Config, diags: &mut Vec<Diagnostic>) {
    if file.src.role == Role::Test || config.serve_crates.contains(&file.src.crate_key) {
        return;
    }
    for i in 0..file.toks.len() {
        let line = file.toks[i].line;
        if file.in_test(line) {
            continue;
        }
        if let Some(
            t @ ("TcpListener" | "TcpStream" | "UdpSocket" | "UnixListener" | "UnixStream"),
        ) = file.ident(i)
        {
            super::emit(
                file,
                config,
                diags,
                "serve",
                line,
                format!(
                    "`{t}` outside the serving crates: sockets live in `serve` and `cli` \
                     (the `[serve] crates` list); scoring crates take data as arguments"
                ),
            );
        }
    }
}
