//! Iteration-order hygiene: files that serialize, render reports or
//! generate exhibits must not touch `HashMap`/`HashSet` at all —
//! their iteration order varies run to run (and by hasher seed), which
//! turns byte-stable outputs into flaky ones. The file list lives in
//! `lint.toml` under `[iter_order] paths`.

use crate::analysis::LexedFile;
use crate::config::Config;
use crate::diagnostics::Diagnostic;

pub fn check(file: &LexedFile<'_>, config: &Config, diags: &mut Vec<Diagnostic>) {
    if !config.iter_order_paths.contains(&file.src.path) {
        return;
    }
    for i in 0..file.toks.len() {
        let line = file.toks[i].line;
        if file.in_test(line) {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = file.ident(i) {
            let ordered = if name == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            super::emit(
                file,
                config,
                diags,
                "iter-order",
                line,
                format!(
                    "`{name}` in an ordered-output file: its iteration order is \
                     nondeterministic; use `{ordered}` so rendered output stays byte-stable"
                ),
            );
        }
    }
}
