//! Every crate root must carry `#![forbid(unsafe_code)]`. The
//! workspace has no reason to write `unsafe`, and forbidding it at the
//! crate level makes that a compiler-checked fact rather than a habit.

use crate::analysis::LexedFile;
use crate::config::Config;
use crate::diagnostics::Diagnostic;

pub fn check(file: &LexedFile<'_>, config: &Config, diags: &mut Vec<Diagnostic>) {
    if !file.src.is_crate_root {
        return;
    }
    for i in 0..file.toks.len() {
        if file.punct(i, '#')
            && file.punct(i + 1, '!')
            && file.punct(i + 2, '[')
            && file.ident(i + 3) == Some("forbid")
            && file.punct(i + 4, '(')
            && file.ident(i + 5) == Some("unsafe_code")
        {
            return;
        }
    }
    super::emit(
        file,
        config,
        diags,
        "forbid-unsafe",
        1,
        "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
    );
}
