//! `lint.toml`: the checked-in policy and allowlist.
//!
//! The file is parsed with a small hand-rolled reader covering the TOML
//! subset the policy needs — `[section]` tables, `[[allow]]` table
//! arrays, string/integer values and (possibly multi-line) string
//! arrays. Keeping the parser in-tree avoids an external dependency and
//! keeps the accepted grammar small enough to audit.
//!
//! Policy knobs (`[iter_order] paths`, `[nondet] crates`, `[panic]
//! crates`, `[serve] crates`, `[time] paths`, `[metric_names] catalog`,
//! `[locks] names`, `[lock_held] deny`, `[hot_alloc] paths`)
//! live in the file so the policy is
//! reviewable where it is enforced; `Config::default_policy()` mirrors
//! the committed `lint.toml` so the tool still runs sensibly without
//! one.

use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// One allowlist entry: suppress `rule` in `path` (optionally only on
/// `line`), with a mandatory human reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub line: Option<u32>,
    pub reason: String,
}

/// Parsed lint policy + allowlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Files where `HashMap`/`HashSet` may not appear at all
    /// (serialization, report rendering, exhibit generation).
    pub iter_order_paths: BTreeSet<String>,
    /// Crate keys where clocks, ambient RNG and env reads are banned.
    pub nondet_crates: BTreeSet<String>,
    /// Crate keys where `unwrap()`/`expect()` need an annotation.
    pub panic_crates: BTreeSet<String>,
    /// Crate keys allowed to touch sockets (`std::net` listener and
    /// stream types); everywhere else a socket is an architecture
    /// violation.
    pub serve_crates: BTreeSet<String>,
    /// Files on the event-time scoring path where wall-clock reads are
    /// banned outright: timestamps must come from record data. File-
    /// scoped (not crate-scoped) so it also binds the serving and CLI
    /// layers, whose other code may time freely.
    pub time_paths: BTreeSet<String>,
    /// Workspace-relative path of the metric-name catalog.
    pub metric_catalog: String,
    /// Declared lock identities: the receiver field names whose
    /// `.lock()`/`.read()`/`.write()` calls the concurrency lints model.
    /// Only declared names participate in the acquisition-order graph
    /// and the held-guard analysis.
    pub lock_names: BTreeSet<String>,
    /// Callee names considered blocking (I/O, thread joins, ingest and
    /// rescore entry points); calling one while a declared guard is
    /// live is a `lock_held` violation.
    pub lock_held_deny: BTreeSet<String>,
    /// Hot-path files where per-record allocation inside loop bodies is
    /// flagged (`format!`, `.to_string()`, `.clone()`, `Vec::new`,
    /// `String::new`).
    pub hot_alloc_paths: BTreeSet<String>,
    pub allows: Vec<AllowEntry>,
}

impl Default for Config {
    fn default() -> Self {
        Config::default_policy()
    }
}

impl Config {
    /// The built-in policy, kept in sync with the committed `lint.toml`.
    pub fn default_policy() -> Self {
        let set = |items: &[&str]| items.iter().map(|s| s.to_string()).collect();
        Config {
            iter_order_paths: set(&[
                "crates/pipeline/src/report.rs",
                "crates/pipeline/src/exhibits.rs",
                "crates/pipeline/src/table.rs",
                "crates/pipeline/src/compare.rs",
                "crates/pipeline/src/trend.rs",
                "crates/pipeline/src/rank.rs",
                "crates/pipeline/src/quality.rs",
                "crates/data/src/store.rs",
                "crates/data/src/agg_record.rs",
                "crates/data/src/quarantine.rs",
                "crates/obs/src/registry.rs",
                "crates/obs/src/telemetry.rs",
            ]),
            nondet_crates: set(&[
                "core", "stats", "data", "pipeline", "synth", "netsim", "obs", "iqb",
            ]),
            panic_crates: set(&["core", "data", "stats", "pipeline", "lint"]),
            serve_crates: set(&["serve", "cli"]),
            time_paths: set(&[
                "crates/pipeline/src/temporal.rs",
                "crates/pipeline/src/trend.rs",
                "crates/stats/src/changepoint.rs",
                "crates/synth/src/campaign.rs",
                "crates/serve/src/server.rs",
                "crates/cli/src/commands.rs",
            ]),
            metric_catalog: "crates/obs/src/names.rs".to_string(),
            lock_names: set(&[
                "writer",
                "published",
                "registry",
                "counters",
                "gauges",
                "histograms",
                "state",
                "out",
                "buf",
            ]),
            lock_held_deny: set(&[
                "write_all",
                "flush",
                "read_line",
                "read_to_string",
                "read_to_end",
                "read_exact",
                "connect",
                "accept",
                "join",
                "sleep",
                "park",
                "recv",
                "ingest",
                "ingest_batch",
                "ingest_lenient",
                "ingest_refs",
                "ingest_all",
                "ingest_one",
                "rescore",
                "reload",
                "score_trend",
                "stream_csv",
                "submit_stream",
            ]),
            hot_alloc_paths: set(&[
                "crates/data/src/stream.rs",
                "crates/data/src/ingest.rs",
                "crates/data/src/memscan.rs",
                "crates/pipeline/src/pane.rs",
                "crates/pipeline/src/stream.rs",
                "crates/pipeline/src/session.rs",
            ]),
            allows: Vec::new(),
        }
    }

    /// Loads `lint.toml` from `path`; a missing file yields the default
    /// policy with an empty allowlist.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::from_toml_str(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default_policy()),
            Err(e) => Err(ConfigError(format!("cannot read {}: {e}", path.display()))),
        }
    }

    /// Parses the supported TOML subset.
    pub fn from_toml_str(text: &str) -> Result<Self, ConfigError> {
        let mut config = Config::default_policy();
        let mut policy_paths_set = false;
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                section = format!("[[{}]]", name.trim());
                if name.trim() == "allow" {
                    config.allows.push(AllowEntry {
                        rule: String::new(),
                        path: String::new(),
                        line: None,
                        reason: String::new(),
                    });
                }
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let (key, mut value) = split_key_value(&line, idx + 1)?;
            // Multi-line arrays: keep consuming until brackets balance.
            while value.starts_with('[') && !brackets_balanced(&value) {
                match lines.next() {
                    Some((_, cont)) => {
                        value.push(' ');
                        value.push_str(strip_comment(cont).trim());
                    }
                    None => {
                        return Err(ConfigError(format!(
                            "line {}: unterminated array for key `{key}`",
                            idx + 1
                        )))
                    }
                }
            }
            apply(
                &mut config,
                &mut policy_paths_set,
                &section,
                &key,
                &value,
                idx + 1,
            )?;
        }
        for (i, allow) in config.allows.iter().enumerate() {
            if allow.rule.is_empty() || allow.path.is_empty() {
                return Err(ConfigError(format!(
                    "[[allow]] entry #{} needs both `rule` and `path`",
                    i + 1
                )));
            }
            if allow.reason.is_empty() {
                return Err(ConfigError(format!(
                    "[[allow]] entry for {}:{} needs a `reason`",
                    allow.path, allow.rule
                )));
            }
        }
        Ok(config)
    }

    /// Whether an allowlist entry suppresses `rule` at `path:line`.
    pub fn allows(&self, rule: &str, path: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.path == path && a.line.map_or(true, |l| l == line))
    }
}

fn apply(
    config: &mut Config,
    policy_paths_set: &mut bool,
    section: &str,
    key: &str,
    value: &str,
    line_no: usize,
) -> Result<(), ConfigError> {
    let fail = |msg: String| Err(ConfigError(format!("line {line_no}: {msg}")));
    match (section, key) {
        ("iter_order", "paths") => {
            if !*policy_paths_set {
                config.iter_order_paths.clear();
                *policy_paths_set = true;
            }
            config.iter_order_paths.extend(parse_array(value, line_no)?);
            Ok(())
        }
        ("nondet", "crates") => {
            config.nondet_crates = parse_array(value, line_no)?.into_iter().collect();
            Ok(())
        }
        ("panic", "crates") => {
            config.panic_crates = parse_array(value, line_no)?.into_iter().collect();
            Ok(())
        }
        ("serve", "crates") => {
            config.serve_crates = parse_array(value, line_no)?.into_iter().collect();
            Ok(())
        }
        ("time", "paths") => {
            config.time_paths = parse_array(value, line_no)?.into_iter().collect();
            Ok(())
        }
        ("metric_names", "catalog") => {
            config.metric_catalog = parse_string(value, line_no)?;
            Ok(())
        }
        ("locks", "names") => {
            config.lock_names = parse_array(value, line_no)?.into_iter().collect();
            Ok(())
        }
        ("lock_held", "deny") => {
            config.lock_held_deny = parse_array(value, line_no)?.into_iter().collect();
            Ok(())
        }
        ("hot_alloc", "paths") => {
            config.hot_alloc_paths = parse_array(value, line_no)?.into_iter().collect();
            Ok(())
        }
        ("[[allow]]", _) => {
            let entry = match config.allows.last_mut() {
                Some(entry) => entry,
                None => return fail("key outside an [[allow]] entry".into()),
            };
            match key {
                "rule" => entry.rule = parse_string(value, line_no)?,
                "path" => entry.path = parse_string(value, line_no)?,
                "reason" => entry.reason = parse_string(value, line_no)?,
                "line" => {
                    entry.line = Some(value.parse::<u32>().map_err(|e| {
                        ConfigError(format!("line {line_no}: bad line number: {e}"))
                    })?)
                }
                other => return fail(format!("unknown [[allow]] key `{other}`")),
            }
            Ok(())
        }
        (section, key) => fail(format!("unknown key `{key}` in section `[{section}]`")),
    }
}

fn split_key_value(line: &str, line_no: usize) -> Result<(String, String), ConfigError> {
    match line.split_once('=') {
        Some((k, v)) => Ok((k.trim().to_string(), v.trim().to_string())),
        None => Err(ConfigError(format!(
            "line {line_no}: expected `key = value`, got `{line}`"
        ))),
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0
}

fn parse_string(value: &str, line_no: usize) -> Result<String, ConfigError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ConfigError(format!("line {line_no}: expected a \"string\"")))?;
    Ok(inner.to_string())
}

fn parse_array(value: &str, line_no: usize) -> Result<Vec<String>, ConfigError> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| ConfigError(format!("line {line_no}: expected an [array]")))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(parse_string(item, line_no)?);
    }
    Ok(out)
}

/// A `lint.toml` problem: I/O or unsupported syntax.
#[derive(Debug)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_policy_and_allowlist() {
        let toml = r#"
# comment
[iter_order]
paths = [
    "a.rs", # trailing comment
    "b.rs",
]

[nondet]
crates = ["core"]

[serve]
crates = ["serve", "cli", "bench"]

[time]
paths = ["crates/pipeline/src/temporal.rs"]

[metric_names]
catalog = "names.rs"

[[allow]]
rule = "nondet"
path = "crates/data/src/ingest.rs"
reason = "telemetry only"

[[allow]]
rule = "panic"
path = "x.rs"
line = 12
reason = "slice checked"
"#;
        let config = Config::from_toml_str(toml).unwrap();
        assert_eq!(
            config.iter_order_paths,
            ["a.rs", "b.rs"].iter().map(|s| s.to_string()).collect()
        );
        assert_eq!(config.nondet_crates.len(), 1);
        assert_eq!(config.serve_crates.len(), 3);
        assert_eq!(
            config.time_paths,
            ["crates/pipeline/src/temporal.rs"]
                .iter()
                .map(|s| s.to_string())
                .collect()
        );
        assert_eq!(config.metric_catalog, "names.rs");
        assert_eq!(config.allows.len(), 2);
        assert!(config.allows("nondet", "crates/data/src/ingest.rs", 80));
        assert!(config.allows("panic", "x.rs", 12));
        assert!(!config.allows("panic", "x.rs", 13));
        assert!(!config.allows("float", "x.rs", 12));
    }

    #[test]
    fn parses_concurrency_sections() {
        let toml = "[locks]\nnames = [\"writer\", \"published\"]\n\n[lock_held]\ndeny = [\"flush\"]\n\n[hot_alloc]\npaths = [\"crates/data/src/stream.rs\"]\n";
        let config = Config::from_toml_str(toml).unwrap();
        assert_eq!(config.lock_names.len(), 2);
        assert!(config.lock_names.contains("writer"));
        assert_eq!(config.lock_held_deny.len(), 1);
        assert!(config.hot_alloc_paths.contains("crates/data/src/stream.rs"));
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let toml = "[[allow]]\nrule = \"panic\"\npath = \"x.rs\"\n";
        assert!(Config::from_toml_str(toml).is_err());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        assert!(Config::from_toml_str("[panic]\ncrate = [\"core\"]\n").is_err());
    }

    #[test]
    fn missing_file_falls_back_to_default_policy() {
        let config = Config::load(Path::new("/nonexistent/lint.toml")).unwrap();
        assert_eq!(config, Config::default_policy());
        assert!(config.panic_crates.contains("lint"));
    }
}
