//! Fixture: event-time equivalent the `time` rule must accept — the
//! watermark advances on record timestamps, never the wall clock.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

pub fn watermark(max_event_ts: u64, allowed_lateness_s: u64) -> u64 {
    max_event_ts.saturating_sub(allowed_lateness_s)
}

#[cfg(test)]
mod tests {
    // Wall timing inside a test region is fine: tests may measure.
    pub fn tick() -> std::time::Instant {
        std::time::Instant::now()
    }
}
