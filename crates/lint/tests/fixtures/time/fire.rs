//! Fixture: wall-clock reads the `time` rule must flag in a file on the
//! event-time scoring path — window closure tied to arrival time.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

pub fn close_windows() -> u64 {
    let now = std::time::SystemTime::now();
    let tick = std::time::Instant::now();
    let _ = (now, tick);
    0
}
