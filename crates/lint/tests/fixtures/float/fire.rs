//! Fixture: float-determinism violations the `float` rule must flag.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

pub fn spread(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let hi = f64::max(sorted[0], 1.0);
    hi - 1.0_f64.min(sorted[0])
}
