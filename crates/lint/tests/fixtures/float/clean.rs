//! Fixture: NaN-safe float ordering the `float` rule must accept.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

pub fn spread(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let hi = values.iter().copied().max_by(|a, b| a.total_cmp(b));
    let lo = values.iter().copied().min_by(|a, b| a.total_cmp(b));
    hi.unwrap_or(f64::NEG_INFINITY) - lo.unwrap_or(f64::INFINITY)
}

pub fn rto_floor(rtt: f64) -> f64 {
    // lint: allow(float) RTO floor per RFC 6298; rtt is validated finite upstream
    rtt.max(0.2)
}
