//! Fixture: a crate root missing `#![forbid(unsafe_code)]`, which the
//! `forbid-unsafe` rule must flag.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

pub fn noop() {}
