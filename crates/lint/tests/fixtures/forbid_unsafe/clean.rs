//! Fixture: a crate root carrying `#![forbid(unsafe_code)]`, which the
//! `forbid-unsafe` rule must accept.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

#![forbid(unsafe_code)]

pub fn noop() {}
