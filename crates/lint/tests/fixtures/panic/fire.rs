//! Fixture: panic-surface violations the `panic` rule must flag in
//! core library code: bare `unwrap`, bare `expect`, and an annotation
//! with no reason (which must not suppress).
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

pub fn head(values: &[u64]) -> u64 {
    *values.first().unwrap()
}

pub fn tail(values: &[u64]) -> u64 {
    // lint: allow(panic)
    *values.last().expect("non-empty")
}
