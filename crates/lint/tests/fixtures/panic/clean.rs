//! Fixture: panic-free library code (and one documented invariant) the
//! `panic` rule must accept.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

pub fn head(values: &[u64]) -> Option<u64> {
    values.first().copied()
}

pub fn checked_head(values: &[u64]) -> u64 {
    // lint: allow(panic) callers validate non-empty input at the API boundary
    *values.first().expect("non-empty")
}
