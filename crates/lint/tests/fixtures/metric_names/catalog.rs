//! Fixture: a metric-name catalog in the shape of `obs::names`.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

/// Rows accepted by ingest.
pub const INGEST_ROWS: &str = "ingest.rows";

/// Never referenced anywhere: the dead-entry check must flag it.
pub const ORPHANED_METRIC: &str = "ingest.orphaned";
