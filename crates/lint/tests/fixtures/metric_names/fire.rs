//! Fixture: metric-name violations the `metric-names` rule must flag —
//! a literal that shadows a catalog constant and a literal the catalog
//! does not know.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

pub fn record(registry: &Registry) {
    registry.counter("ingest.rows").add(1);
    registry.counter("ingest.rogue").add(1);
}
