//! Fixture: instrumentation through catalog constants, which the
//! `metric-names` rule must accept (and which keeps the catalog's
//! entries alive).
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

pub fn record(registry: &Registry) {
    registry.counter(names::INGEST_ROWS).add(1);
    registry.counter(names::ORPHANED_METRIC).add(1);
}
