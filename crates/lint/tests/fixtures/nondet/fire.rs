//! Fixture: nondeterminism sources the `nondet` rule must flag in a
//! scoring-path crate: ambient clocks and environment reads.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

pub fn stamp() -> bool {
    let started = std::time::Instant::now();
    let seed = std::env::var("IQB_SEED");
    started.elapsed().as_nanos() > 0 && seed.is_ok()
}
