//! Fixture: deterministic equivalent the `nondet` rule must accept —
//! time and seed enter as data, not from ambient sources.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

pub fn stamp(elapsed_ns: u128, seed: u64) -> bool {
    elapsed_ns > 0 && seed != 0
}
