//! Fixture: hash-ordered containers in a serialization file, which the
//! `iter-order` rule must flag when the path is policy-listed.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

use std::collections::HashMap;

pub fn render(rows: &HashMap<String, u64>) -> String {
    format!("{rows:?}")
}
