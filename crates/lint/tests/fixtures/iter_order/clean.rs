//! Fixture: ordered containers the `iter-order` rule must accept even
//! in a policy-listed serialization file.
//! Never compiled — parsed by `iqb-lint` in `tests/lints.rs`.

use std::collections::BTreeMap;

pub fn render(rows: &BTreeMap<String, u64>) -> String {
    format!("{rows:?}")
}
