//! Fixture: blocking I/O under a held guard, an immediately-dropped
//! wildcard guard, and a reason-less annotation.

pub fn writes_under_guard(s: &Sink) {
    let out = s.out.lock();
    flush();
}

pub fn empty_critical_section(s: &Sink) {
    let _ = s.out.lock();
    touch();
}

pub fn annotated_without_reason(s: &Sink) {
    let out = s.out.lock();
    // lint: allow(lock_held)
    flush();
}
