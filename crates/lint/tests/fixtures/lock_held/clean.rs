//! Fixture: guard dropped before the blocking call, a reasoned
//! annotation for a deliberate hold, and a named scope-long guard.

pub fn drops_before_io(s: &Sink) {
    let line = {
        let out = s.out.lock();
        render(&out)
    };
    flush();
}

pub fn deliberate_hold(s: &Sink) {
    let out = s.out.lock();
    // lint: allow(lock_held) the mutex exists to serialize sink writes
    flush();
}

pub fn named_guard(s: &Sink) {
    let _guard = s.out.lock();
    touch();
}
