//! Fixture: sockets outside the serving crates must fire.
//!
//! Both the bind and the connect below are violations.

pub fn listen() -> std::io::Result<()> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let _stream = std::net::TcpStream::connect(listener.local_addr()?)?;
    Ok(())
}
