//! Fixture: a scoring-path file with no socket usage, plus one socket
//! behind an annotation that names its excuse.

pub fn mean(values: &[f64]) -> f64 {
    values.iter().sum::<f64>() / values.len().max(1) as f64
}

// lint: allow(serve) fixture: exercising the annotated escape hatch
pub fn probe() { std::net::UdpSocket::bind("127.0.0.1:0").ok(); }
