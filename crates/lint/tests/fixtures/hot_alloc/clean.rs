//! Fixture: buffers hoisted out of the loop; `Arc::clone` is the
//! sanctioned cheap-clone spelling and is not flagged.

pub fn hoisted(records: &[Record], shared: &Arc<Catalog>) -> usize {
    let mut scratch = String::new();
    let mut count = 0;
    for r in records {
        scratch.clear();
        write_label(&mut scratch, r);
        let catalog = Arc::clone(shared);
        count += score(&catalog, &scratch);
    }
    count
}
