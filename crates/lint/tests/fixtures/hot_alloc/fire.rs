//! Fixture: per-record allocation inside hot-path loop bodies.

pub fn per_record(records: &[Record]) -> Vec<String> {
    let mut out = Vec::new();
    for r in records {
        let label = format!("{}-{}", r.region, r.kind);
        let copy = r.name.to_string();
        let row = r.fields.clone();
        let scratch = Vec::new();
        push(&mut out, label, copy, row, scratch);
    }
    out
}

pub fn with_escape_hatch(records: &[Record]) {
    let mut i = 0;
    while i < records.len() {
        // lint: allow(hot_alloc) cold error path, one allocation per run
        let _msg = String::new();
        i += 1;
    }
}
