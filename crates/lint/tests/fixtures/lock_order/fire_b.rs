//! Fixture: takes `index` before `ledger` — inverts fire_a's order.

pub fn inverted(a: &Shard, b: &Shard) {
    let index = b.index.lock();
    let ledger = a.ledger.lock();
    use_both(&ledger, &index);
}
