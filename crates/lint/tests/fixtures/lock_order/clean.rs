//! Fixture: every path takes `ledger` then `index` — one global order.

pub fn first(a: &Shard, b: &Shard) {
    let ledger = a.ledger.lock();
    let index = b.index.lock();
    use_both(&ledger, &index);
}

pub fn second(a: &Shard, b: &Shard) {
    let ledger = a.ledger.lock();
    let index = b.index.read();
    use_both(&ledger, &index);
}
