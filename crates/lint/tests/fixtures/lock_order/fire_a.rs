//! Fixture: takes `ledger` before `index` — one half of an inversion.

pub fn canonical(a: &Shard, b: &Shard) {
    let ledger = a.ledger.lock();
    let index = b.index.lock();
    use_both(&ledger, &index);
}
