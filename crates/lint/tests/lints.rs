//! Fixture-driven integration tests for `iqb-lint`.
//!
//! Each lint family has a `fire.rs` fixture that must produce exactly
//! the expected diagnostics and a `clean.rs` fixture that must produce
//! none. The fixtures live under `tests/fixtures/`, which the workspace
//! walker skips, so the deliberately-violating code never trips the
//! self-lint. The last test holds the committed tree to the policy:
//! `run_workspace` over the repo root with the checked-in `lint.toml`
//! must come back empty.

use std::collections::BTreeSet;
use std::path::Path;

use iqb_lint::config::AllowEntry;
use iqb_lint::{run_files, run_files_all, run_workspace, Config, Diagnostic, Role, SourceFile};

const FLOAT_FIRE: &str = include_str!("fixtures/float/fire.rs");
const FLOAT_CLEAN: &str = include_str!("fixtures/float/clean.rs");
const ITER_FIRE: &str = include_str!("fixtures/iter_order/fire.rs");
const ITER_CLEAN: &str = include_str!("fixtures/iter_order/clean.rs");
const NONDET_FIRE: &str = include_str!("fixtures/nondet/fire.rs");
const NONDET_CLEAN: &str = include_str!("fixtures/nondet/clean.rs");
const PANIC_FIRE: &str = include_str!("fixtures/panic/fire.rs");
const PANIC_CLEAN: &str = include_str!("fixtures/panic/clean.rs");
const CATALOG: &str = include_str!("fixtures/metric_names/catalog.rs");
const METRIC_FIRE: &str = include_str!("fixtures/metric_names/fire.rs");
const METRIC_CLEAN: &str = include_str!("fixtures/metric_names/clean.rs");
const UNSAFE_FIRE: &str = include_str!("fixtures/forbid_unsafe/fire.rs");
const UNSAFE_CLEAN: &str = include_str!("fixtures/forbid_unsafe/clean.rs");
const SERVE_FIRE: &str = include_str!("fixtures/serve/fire.rs");
const SERVE_CLEAN: &str = include_str!("fixtures/serve/clean.rs");
const TIME_FIRE: &str = include_str!("fixtures/time/fire.rs");
const TIME_CLEAN: &str = include_str!("fixtures/time/clean.rs");
const LOCK_ORDER_FIRE_A: &str = include_str!("fixtures/lock_order/fire_a.rs");
const LOCK_ORDER_FIRE_B: &str = include_str!("fixtures/lock_order/fire_b.rs");
const LOCK_ORDER_CLEAN: &str = include_str!("fixtures/lock_order/clean.rs");
const LOCK_HELD_FIRE: &str = include_str!("fixtures/lock_held/fire.rs");
const LOCK_HELD_CLEAN: &str = include_str!("fixtures/lock_held/clean.rs");
const HOT_ALLOC_FIRE: &str = include_str!("fixtures/hot_alloc/fire.rs");
const HOT_ALLOC_CLEAN: &str = include_str!("fixtures/hot_alloc/clean.rs");

/// A policy with every list empty, so each test opts in to exactly the
/// machinery its family needs.
fn bare_config() -> Config {
    Config {
        iter_order_paths: BTreeSet::new(),
        nondet_crates: BTreeSet::new(),
        panic_crates: BTreeSet::new(),
        serve_crates: BTreeSet::new(),
        time_paths: BTreeSet::new(),
        metric_catalog: "crates/obs/src/names.rs".to_string(),
        lock_names: BTreeSet::new(),
        lock_held_deny: BTreeSet::new(),
        hot_alloc_paths: BTreeSet::new(),
        allows: Vec::new(),
    }
}

/// Opts in to the concurrency machinery: the fixture lock identities
/// and a one-entry deny list.
fn lock_config() -> Config {
    let mut config = bare_config();
    for name in ["ledger", "index", "out"] {
        config.lock_names.insert(name.to_string());
    }
    config.lock_held_deny.insert("flush".to_string());
    config
}

fn source(path: &str, crate_key: &str, role: Role, is_crate_root: bool, text: &str) -> SourceFile {
    SourceFile {
        path: path.to_string(),
        crate_key: crate_key.to_string(),
        role,
        is_crate_root,
        text: text.to_string(),
    }
}

fn lib(path: &str, crate_key: &str, text: &str) -> SourceFile {
    source(path, crate_key, Role::Lib, false, text)
}

/// (line, rule) pairs in emitted order, for compact shape assertions.
fn shape(diags: &[Diagnostic]) -> Vec<(u32, &'static str)> {
    diags.iter().map(|d| (d.line, d.rule)).collect()
}

fn assert_clean(diags: Vec<Diagnostic>) {
    assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
}

#[test]
fn float_fire_flags_partial_cmp_and_nan_laundering_min_max() {
    let file = lib("crates/stats/src/float_fire.rs", "stats", FLOAT_FIRE);
    let diags = run_files(&[file], &bare_config());
    assert_eq!(
        shape(&diags),
        vec![(6, "float"), (7, "float"), (8, "float")]
    );
    assert!(diags[0].message.contains("`partial_cmp` is not total"));
    assert!(diags[1]
        .message
        .contains("float `max` propagates the non-NaN operand"));
    assert!(diags[2]
        .message
        .contains("float `min` propagates the non-NaN operand"));
}

#[test]
fn float_clean_accepts_total_cmp_and_reasoned_annotation() {
    let file = lib("crates/stats/src/float_clean.rs", "stats", FLOAT_CLEAN);
    assert_clean(run_files(&[file], &bare_config()));
}

#[test]
fn float_rule_exempts_test_files() {
    let file = source(
        "crates/stats/tests/float_fire.rs",
        "stats",
        Role::Test,
        false,
        FLOAT_FIRE,
    );
    assert_clean(run_files(&[file], &bare_config()));
}

#[test]
fn float_rule_exempts_cfg_test_regions() {
    let text = "#[cfg(test)]\nmod tests {\n    fn t(v: &mut [f64]) {\n        \
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n    }\n}\n";
    let file = lib("crates/stats/src/inline.rs", "stats", text);
    assert_clean(run_files(&[file], &bare_config()));
}

#[test]
fn iter_order_fire_flags_hash_containers_in_listed_files() {
    let mut config = bare_config();
    config
        .iter_order_paths
        .insert("crates/pipeline/src/report.rs".to_string());
    let file = lib("crates/pipeline/src/report.rs", "pipeline", ITER_FIRE);
    let diags = run_files(&[file], &config);
    assert_eq!(shape(&diags), vec![(5, "iter-order"), (7, "iter-order")]);
    assert!(diags[0].message.contains("use `BTreeMap`"));
}

#[test]
fn iter_order_only_applies_to_listed_paths() {
    let file = lib("crates/pipeline/src/engine.rs", "pipeline", ITER_FIRE);
    assert_clean(run_files(&[file], &bare_config()));
}

#[test]
fn iter_order_clean_accepts_ordered_containers() {
    let mut config = bare_config();
    config
        .iter_order_paths
        .insert("crates/pipeline/src/report.rs".to_string());
    let file = lib("crates/pipeline/src/report.rs", "pipeline", ITER_CLEAN);
    assert_clean(run_files(&[file], &config));
}

#[test]
fn nondet_fire_flags_clock_and_env_reads_in_scoring_crates() {
    let mut config = bare_config();
    config.nondet_crates.insert("stats".to_string());
    let file = lib("crates/stats/src/nondet_fire.rs", "stats", NONDET_FIRE);
    let diags = run_files(&[file], &config);
    assert_eq!(shape(&diags), vec![(6, "nondet"), (7, "nondet")]);
    assert!(diags[0].message.contains("`Instant::now()`"));
    assert!(diags[1].message.contains("environment read"));
}

#[test]
fn nondet_only_applies_to_listed_crates() {
    let mut config = bare_config();
    config.nondet_crates.insert("stats".to_string());
    let file = lib("crates/cli/src/nondet_fire.rs", "cli", NONDET_FIRE);
    assert_clean(run_files(&[file], &config));
}

#[test]
fn nondet_clean_accepts_time_and_seed_as_data() {
    let mut config = bare_config();
    config.nondet_crates.insert("stats".to_string());
    let file = lib("crates/stats/src/nondet_clean.rs", "stats", NONDET_CLEAN);
    assert_clean(run_files(&[file], &config));
}

#[test]
fn panic_fire_flags_unwrap_and_rejects_reasonless_annotation() {
    let mut config = bare_config();
    config.panic_crates.insert("core".to_string());
    let file = lib("crates/core/src/panic_fire.rs", "core", PANIC_FIRE);
    let diags = run_files(&[file], &config);
    assert_eq!(shape(&diags), vec![(7, "panic"), (12, "panic")]);
    assert!(diags[0].message.contains("`.unwrap(..)` in library code"));
    // The annotation on line 11 has no reason, so it must not suppress —
    // and the diagnostic must say why.
    assert!(diags[1]
        .message
        .contains("the `lint: allow(panic)` annotation needs a reason"));
}

#[test]
fn panic_clean_accepts_routed_errors_and_reasoned_annotation() {
    let mut config = bare_config();
    config.panic_crates.insert("core".to_string());
    let file = lib("crates/core/src/panic_clean.rs", "core", PANIC_CLEAN);
    assert_clean(run_files(&[file], &config));
}

#[test]
fn panic_rule_exempts_non_lib_roles() {
    let mut config = bare_config();
    config.panic_crates.insert("core".to_string());
    let as_bin = source(
        "crates/core/src/main.rs",
        "core",
        Role::Bin,
        true,
        PANIC_FIRE,
    );
    // Only the missing forbid(unsafe_code) fires: a bin root is exempt
    // from the panic policy but not from the attribute check.
    assert_eq!(
        shape(&run_files(&[as_bin], &config)),
        vec![(1, "forbid-unsafe")]
    );
}

#[test]
fn panic_violation_is_suppressed_by_toml_allowlist_entry() {
    let mut config = bare_config();
    config.panic_crates.insert("core".to_string());
    config.allows.push(AllowEntry {
        rule: "panic".to_string(),
        path: "crates/core/src/panic_fire.rs".to_string(),
        line: Some(7),
        reason: "fixture: exercising the allowlist".to_string(),
    });
    let file = lib("crates/core/src/panic_fire.rs", "core", PANIC_FIRE);
    // Line 7 is allowlisted; line 12 still fires.
    assert_eq!(shape(&run_files(&[file], &config)), vec![(12, "panic")]);
}

#[test]
fn metric_names_fire_flags_literals_and_dead_catalog_entries() {
    let config = bare_config();
    let catalog = lib("crates/obs/src/names.rs", "obs", CATALOG);
    let user = lib("crates/data/src/metrics_fire.rs", "data", METRIC_FIRE);
    let diags = run_files(&[catalog, user], &config);
    let shapes: Vec<(&str, u32)> = diags.iter().map(|d| (d.file.as_str(), d.line)).collect();
    assert_eq!(
        shapes,
        vec![
            ("crates/data/src/metrics_fire.rs", 7),
            ("crates/data/src/metrics_fire.rs", 8),
            ("crates/obs/src/names.rs", 5),
            ("crates/obs/src/names.rs", 8),
        ]
    );
    assert!(diags[0]
        .message
        .contains("use the catalog constant `names::INGEST_ROWS`"));
    assert!(diags[1]
        .message
        .contains("\"ingest.rogue\" is not in the catalog"));
    assert!(diags[2]
        .message
        .contains("dead catalog entry: `INGEST_ROWS`"));
    assert!(diags[3]
        .message
        .contains("dead catalog entry: `ORPHANED_METRIC`"));
}

#[test]
fn metric_names_clean_accepts_catalog_constants() {
    let config = bare_config();
    let catalog = lib("crates/obs/src/names.rs", "obs", CATALOG);
    let user = lib("crates/data/src/metrics_clean.rs", "data", METRIC_CLEAN);
    assert_clean(run_files(&[catalog, user], &config));
}

#[test]
fn forbid_unsafe_fire_flags_crate_root_without_the_attribute() {
    let file = source(
        "crates/example/src/lib.rs",
        "example",
        Role::Lib,
        true,
        UNSAFE_FIRE,
    );
    let diags = run_files(&[file], &bare_config());
    assert_eq!(shape(&diags), vec![(1, "forbid-unsafe")]);
    assert!(diags[0]
        .message
        .contains("missing `#![forbid(unsafe_code)]`"));
}

#[test]
fn forbid_unsafe_clean_accepts_attributed_crate_root() {
    let file = source(
        "crates/example/src/lib.rs",
        "example",
        Role::Lib,
        true,
        UNSAFE_CLEAN,
    );
    assert_clean(run_files(&[file], &bare_config()));
}

#[test]
fn forbid_unsafe_only_applies_to_crate_roots() {
    let file = lib("crates/example/src/helper.rs", "example", UNSAFE_FIRE);
    assert_clean(run_files(&[file], &bare_config()));
}

#[test]
fn serve_fire_flags_sockets_outside_serving_crates() {
    let file = lib("crates/data/src/socket_fire.rs", "data", SERVE_FIRE);
    let diags = run_files(&[file], &bare_config());
    assert_eq!(shape(&diags), vec![(6, "serve"), (7, "serve")]);
    assert!(diags[0].message.contains("`TcpListener`"));
    assert!(diags[1].message.contains("`TcpStream`"));
}

#[test]
fn serve_rule_exempts_listed_crates_and_tests() {
    let mut config = bare_config();
    config.serve_crates.insert("serve".to_string());
    let file = lib("crates/serve/src/server.rs", "serve", SERVE_FIRE);
    assert_clean(run_files(&[file], &config));
    let test_file = source(
        "crates/data/tests/socket.rs",
        "data",
        Role::Test,
        false,
        SERVE_FIRE,
    );
    assert_clean(run_files(&[test_file], &bare_config()));
}

#[test]
fn serve_clean_accepts_pure_code_and_reasoned_annotation() {
    let file = lib("crates/data/src/socket_clean.rs", "data", SERVE_CLEAN);
    assert_clean(run_files(&[file], &bare_config()));
}

#[test]
fn time_fire_flags_clock_reads_in_listed_files() {
    let mut config = bare_config();
    config
        .time_paths
        .insert("crates/serve/src/server.rs".to_string());
    // `serve` is not a nondet crate, so only the file-scoped time rule
    // can catch a clock read here.
    let file = lib("crates/serve/src/server.rs", "serve", TIME_FIRE);
    let diags = run_files(&[file], &config);
    assert_eq!(shape(&diags), vec![(6, "time"), (7, "time")]);
    assert!(diags[0].message.contains("`SystemTime::now()`"));
    assert!(diags[0].message.contains("record data"));
    assert!(diags[1].message.contains("`Instant::now()`"));
}

#[test]
fn time_only_applies_to_listed_paths() {
    let mut config = bare_config();
    config
        .time_paths
        .insert("crates/serve/src/server.rs".to_string());
    let file = lib("crates/serve/src/client.rs", "serve", TIME_FIRE);
    assert_clean(run_files(&[file], &config));
}

#[test]
fn time_clean_accepts_event_time_and_test_regions() {
    let mut config = bare_config();
    config
        .time_paths
        .insert("crates/pipeline/src/temporal.rs".to_string());
    // The clean fixture's only clock read sits inside #[cfg(test)].
    let file = lib("crates/pipeline/src/temporal.rs", "pipeline", TIME_CLEAN);
    assert_clean(run_files(&[file], &config));
}

#[test]
fn time_rule_exempts_test_role_files() {
    let mut config = bare_config();
    config
        .time_paths
        .insert("crates/pipeline/tests/windowed.rs".to_string());
    let file = source(
        "crates/pipeline/tests/windowed.rs",
        "pipeline",
        Role::Test,
        false,
        TIME_FIRE,
    );
    assert_clean(run_files(&[file], &config));
}

#[test]
fn lock_order_fire_flags_both_sides_of_an_inversion_across_files() {
    let a = lib("crates/pipeline/src/order_a.rs", "pipeline", LOCK_ORDER_FIRE_A);
    let b = lib("crates/pipeline/src/order_b.rs", "pipeline", LOCK_ORDER_FIRE_B);
    let diags = run_files(&[a, b], &lock_config());
    let shapes: Vec<(&str, u32, &str)> = diags
        .iter()
        .map(|d| (d.file.as_str(), d.line, d.rule))
        .collect();
    assert_eq!(
        shapes,
        vec![
            ("crates/pipeline/src/order_a.rs", 5, "lock_order"),
            ("crates/pipeline/src/order_b.rs", 5, "lock_order"),
        ]
    );
    // Each diagnostic names both acquisition sites: the held lock's
    // line locally and the opposing site across the file boundary.
    assert!(diags[0]
        .message
        .contains("lock `index` acquired while `ledger` (taken at line 4) is held"));
    assert!(diags[0]
        .message
        .contains("crates/pipeline/src/order_b.rs:5 (fn `inverted`)"));
    assert!(diags[1]
        .message
        .contains("lock `ledger` acquired while `index` (taken at line 4) is held"));
    assert!(diags[1]
        .message
        .contains("crates/pipeline/src/order_a.rs:5 (fn `canonical`)"));
}

#[test]
fn lock_order_renders_rustc_style_error_naming_both_sites() {
    let a = lib("crates/pipeline/src/order_a.rs", "pipeline", LOCK_ORDER_FIRE_A);
    let b = lib("crates/pipeline/src/order_b.rs", "pipeline", LOCK_ORDER_FIRE_B);
    let diags = run_files(&[a, b], &lock_config());
    let rendered = diags[0].to_string();
    assert!(rendered.starts_with("error[iqb::lock_order]:"));
    assert!(rendered.contains("taken at line 4"));
    assert!(rendered.contains("crates/pipeline/src/order_b.rs:5"));
    assert!(rendered.ends_with("--> crates/pipeline/src/order_a.rs:5"));
}

#[test]
fn lock_order_clean_accepts_one_global_order() {
    let file = lib("crates/pipeline/src/order.rs", "pipeline", LOCK_ORDER_CLEAN);
    assert_clean(run_files(&[file], &lock_config()));
}

#[test]
fn lock_order_only_models_declared_identities() {
    let a = lib("crates/pipeline/src/order_a.rs", "pipeline", LOCK_ORDER_FIRE_A);
    let b = lib("crates/pipeline/src/order_b.rs", "pipeline", LOCK_ORDER_FIRE_B);
    // No `[locks] names` declared: the inversion is invisible.
    assert_clean(run_files(&[a, b], &bare_config()));
}

#[test]
fn lock_order_exempts_test_role_files() {
    let a = lib("crates/pipeline/src/order_a.rs", "pipeline", LOCK_ORDER_FIRE_A);
    let b = source(
        "crates/pipeline/tests/order_b.rs",
        "pipeline",
        Role::Test,
        false,
        LOCK_ORDER_FIRE_B,
    );
    // The inverting half sits in a test file, so no cycle is recorded.
    assert_clean(run_files(&[a, b], &lock_config()));
}

#[test]
fn lock_held_fire_flags_io_wildcard_and_reasonless_annotation() {
    let file = lib("crates/obs/src/sink_fire.rs", "obs", LOCK_HELD_FIRE);
    let diags = run_files(&[file], &lock_config());
    assert_eq!(
        shape(&diags),
        vec![(6, "lock_held"), (10, "lock_held"), (17, "lock_held")]
    );
    assert!(diags[0]
        .message
        .contains("blocking call `flush(..)` while the guard on `out`"));
    assert!(diags[1]
        .message
        .contains("bound with `let _ = ...` drops immediately"));
    assert!(diags[2]
        .message
        .contains("the `lint: allow(lock_held)` annotation needs a reason"));
}

#[test]
fn lock_held_clean_accepts_scoped_guards_and_reasoned_annotation() {
    let file = lib("crates/obs/src/sink_clean.rs", "obs", LOCK_HELD_CLEAN);
    assert_clean(run_files(&[file], &lock_config()));
}

#[test]
fn lock_held_exempts_test_role_files() {
    let file = source(
        "crates/obs/tests/sink.rs",
        "obs",
        Role::Test,
        false,
        LOCK_HELD_FIRE,
    );
    assert_clean(run_files(&[file], &lock_config()));
}

#[test]
fn lock_held_suppressed_by_toml_allowlist_entry() {
    let mut config = lock_config();
    config.allows.push(AllowEntry {
        rule: "lock_held".to_string(),
        path: "crates/obs/src/sink_fire.rs".to_string(),
        line: Some(6),
        reason: "fixture: exercising the allowlist".to_string(),
    });
    let file = lib("crates/obs/src/sink_fire.rs", "obs", LOCK_HELD_FIRE);
    assert_eq!(
        shape(&run_files(&[file], &config)),
        vec![(10, "lock_held"), (17, "lock_held")]
    );
}

#[test]
fn hot_alloc_fire_flags_loop_allocations_and_honours_annotation() {
    let mut config = bare_config();
    config
        .hot_alloc_paths
        .insert("crates/data/src/stream.rs".to_string());
    let file = lib("crates/data/src/stream.rs", "data", HOT_ALLOC_FIRE);
    let diags = run_files(&[file], &config);
    assert_eq!(
        shape(&diags),
        vec![
            (6, "hot_alloc"),
            (7, "hot_alloc"),
            (8, "hot_alloc"),
            (9, "hot_alloc"),
        ]
    );
    assert!(diags[0].message.contains("`format!` allocates a fresh `String`"));
    assert!(diags[1].message.contains("`.to_string()` allocates per record"));
    assert!(diags[2].message.contains("`.clone()` allocates per record"));
    assert!(diags[3].message.contains("`Vec::new` allocates per record"));
}

#[test]
fn hot_alloc_only_applies_to_listed_paths() {
    let file = lib("crates/data/src/other.rs", "data", HOT_ALLOC_FIRE);
    let mut config = bare_config();
    config
        .hot_alloc_paths
        .insert("crates/data/src/stream.rs".to_string());
    assert_clean(run_files(&[file], &config));
}

#[test]
fn hot_alloc_clean_accepts_hoisted_buffers_and_arc_clone() {
    let mut config = bare_config();
    config
        .hot_alloc_paths
        .insert("crates/data/src/stream.rs".to_string());
    let file = lib("crates/data/src/stream.rs", "data", HOT_ALLOC_CLEAN);
    assert_clean(run_files(&[file], &config));
}

#[test]
fn run_files_all_reports_suppressed_findings_for_json_audit() {
    let file = lib("crates/obs/src/sink_clean.rs", "obs", LOCK_HELD_CLEAN);
    let config = lock_config();
    // Violations: none. Audit trail: the reasoned annotation in
    // `deliberate_hold` suppressed one finding, visible with
    // `allowed: true` and serialized that way.
    assert_clean(run_files(std::slice::from_ref(&file), &config));
    let all = run_files_all(&[file], &config);
    let allowed: Vec<&Diagnostic> = all.iter().filter(|d| d.allowed).collect();
    assert_eq!(allowed.len(), 1);
    assert_eq!(allowed[0].line, 15);
    assert_eq!(allowed[0].rule, "lock_held");
    assert!(allowed[0].to_json().contains("\"allowed\":true"));
    assert!(allowed[0].to_json().starts_with("{\"rule\":\"lock_held\""));
}

#[test]
fn diagnostics_render_rustc_style() {
    let file = source(
        "crates/example/src/lib.rs",
        "example",
        Role::Lib,
        true,
        UNSAFE_FIRE,
    );
    let diags = run_files(&[file], &bare_config());
    let rendered = diags[0].to_string();
    assert!(rendered.starts_with("error[iqb::forbid-unsafe]:"));
    assert!(rendered.ends_with("--> crates/example/src/lib.rs:1"));
}

/// The committed tree must satisfy its own policy: this is the same
/// check CI runs via `cargo run -p iqb-lint`, held as a test so a
/// violation fails `cargo test` too.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = Config::load(&root.join("lint.toml")).expect("lint.toml parses");
    let diags = run_workspace(&root, &config).expect("workspace walks");
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}
