//! SWAR (SIMD-within-a-register) byte scanning for the ingest hot path.
//!
//! The chunked CSV reader spends most of its non-parse time finding the
//! next `,`, `"` or `\n`. The workspace's dependency policy rules out
//! `memchr`, and `#![forbid(unsafe_code)]` rules out explicit SIMD, so
//! this module implements the classic portable word-at-a-time trick in
//! safe Rust: load 8 bytes as a little-endian `u64`, XOR with the
//! splatted needle, and use the `(x - 0x01…01) & !x & 0x80…80` zero-byte
//! test to locate a match without branching per byte. The compiler keeps
//! the whole loop in registers; on a 64-bit target this scans 8 bytes
//! per iteration instead of 1.
//!
//! All three entry points return the offset of the *first* matching byte
//! (they are drop-in replacements for `iter().position(...)`), and all
//! are verified against the naive scan by exhaustive-offset unit tests
//! and the ingest equivalence proptests.

/// Low bits set in every byte lane: `0x0101…01`.
const LO: u64 = 0x0101_0101_0101_0101;
/// High bit set in every byte lane: `0x8080…80`.
const HI: u64 = 0x8080_8080_8080_8080;

/// Broadcasts one byte into all eight lanes of a word.
#[inline(always)]
fn splat(b: u8) -> u64 {
    u64::from(b) * LO
}

/// The Mycroft zero-byte test: a nonzero result has the high bit set in
/// (at least) the lane of the first zero byte of `x`.
#[inline(always)]
fn zero_lanes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Loads 8 bytes as a little-endian word. Little-endian order makes
/// `trailing_zeros` of the lane mask identify the *lowest-addressed*
/// match regardless of host endianness.
#[inline(always)]
fn load_word(chunk: &[u8]) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(chunk);
    u64::from_le_bytes(word)
}

/// Offset of the lowest-addressed matching lane in a nonzero mask.
#[inline(always)]
fn mask_offset(mask: u64) -> usize {
    (mask.trailing_zeros() / 8) as usize
}

/// Offset of the first occurrence of `needle` in `haystack`.
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let splatted = splat(needle);
    let mut chunks = haystack.chunks_exact(8);
    let mut base = 0usize;
    for chunk in &mut chunks {
        let mask = zero_lanes(load_word(chunk) ^ splatted);
        if mask != 0 {
            return Some(base + mask_offset(mask));
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| base + i)
}

/// Offset of the first occurrence of either `a` or `b` in `haystack`.
#[inline]
pub fn find_byte2(haystack: &[u8], a: u8, b: u8) -> Option<usize> {
    let splat_a = splat(a);
    let splat_b = splat(b);
    let mut chunks = haystack.chunks_exact(8);
    let mut base = 0usize;
    for chunk in &mut chunks {
        let word = load_word(chunk);
        let mask = zero_lanes(word ^ splat_a) | zero_lanes(word ^ splat_b);
        if mask != 0 {
            return Some(base + mask_offset(mask));
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&x| x == a || x == b)
        .map(|i| base + i)
}

/// Offset of the first occurrence of `a`, `b` or `c` in `haystack`.
#[inline]
pub fn find_byte3(haystack: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
    let splat_a = splat(a);
    let splat_b = splat(b);
    let splat_c = splat(c);
    let mut chunks = haystack.chunks_exact(8);
    let mut base = 0usize;
    for chunk in &mut chunks {
        let word = load_word(chunk);
        let mask =
            zero_lanes(word ^ splat_a) | zero_lanes(word ^ splat_b) | zero_lanes(word ^ splat_c);
        if mask != 0 {
            return Some(base + mask_offset(mask));
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&x| x == a || x == b || x == c)
        .map(|i| base + i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(haystack: &[u8], needles: &[u8]) -> Option<usize> {
        haystack.iter().position(|b| needles.contains(b))
    }

    /// Every (needle offset, haystack length) combination around the
    /// 8-byte word boundary, so chunk bodies, boundaries and remainders
    /// are all hit.
    #[test]
    fn find_byte_matches_naive_at_every_offset() {
        for len in 0..40 {
            for hit in 0..len {
                let mut data = vec![b'x'; len];
                data[hit] = b'\n';
                assert_eq!(find_byte(&data, b'\n'), Some(hit), "len={len} hit={hit}");
            }
            let data = vec![b'x'; len];
            assert_eq!(find_byte(&data, b'\n'), None, "len={len}");
        }
    }

    #[test]
    fn find_byte2_matches_naive_at_every_offset() {
        for len in 0..40 {
            for hit in 0..len {
                for needle in [b',', b'\n'] {
                    let mut data = vec![b'x'; len];
                    data[hit] = needle;
                    assert_eq!(
                        find_byte2(&data, b',', b'\n'),
                        Some(hit),
                        "len={len} hit={hit} needle={needle}"
                    );
                }
            }
            assert_eq!(find_byte2(&vec![b'x'; len], b',', b'\n'), None);
        }
    }

    #[test]
    fn find_byte3_matches_naive_at_every_offset() {
        for len in 0..40 {
            for hit in 0..len {
                for needle in [b',', b'"', b'\n'] {
                    let mut data = vec![b'x'; len];
                    data[hit] = needle;
                    assert_eq!(
                        find_byte3(&data, b',', b'"', b'\n'),
                        Some(hit),
                        "len={len} hit={hit} needle={needle}"
                    );
                }
            }
            assert_eq!(find_byte3(&vec![b'x'; len], b',', b'"', b'\n'), None);
        }
    }

    /// First match wins when several needles are present, exactly like
    /// `position`.
    #[test]
    fn earliest_match_wins() {
        let data = b"aaaa,bbb\"b\ncc,c";
        assert_eq!(find_byte(data, b','), naive(data, b","));
        assert_eq!(find_byte2(data, b',', b'\n'), naive(data, b",\n"));
        assert_eq!(find_byte3(data, b',', b'"', b'\n'), naive(data, b",\"\n"));
        assert_eq!(find_byte(data, b'z'), None);
    }

    /// 0x80-class bytes (high bit set) must neither mask a real match
    /// nor produce a false one — the classic SWAR foot-gun.
    #[test]
    fn high_bit_bytes_are_not_false_positives() {
        let mut data = vec![0xFFu8; 24];
        assert_eq!(find_byte(&data, b'\n'), None);
        data[17] = b'\n';
        assert_eq!(find_byte(&data, b'\n'), Some(17));
        assert_eq!(find_byte2(&data, b',', b'\n'), Some(17));
        // A needle with the high bit set works too.
        assert_eq!(find_byte(&data, 0xFF), Some(0));
        let clean = vec![0u8; 16];
        assert_eq!(find_byte(&clean, 0), Some(0));
    }
}
