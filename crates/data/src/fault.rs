//! Fault injection: adversarial inputs for hardening tests.
//!
//! The quarantine layer claims that no single bad record or misbehaving
//! source can kill a scoring run. This module is how that claim gets
//! *proven* rather than asserted: a corrupting proxy [`ChaosSource`]
//! that wraps any real [`DataSource`] and misbehaves on demand, plus
//! byte/field-level [`Mutation`]s for corrupting CSV/JSONL fixtures.
//!
//! It ships in the library (not `#[cfg(test)]`) so integration tests,
//! downstream crates, and future soak harnesses can all reuse it; it has
//! no cost unless constructed.

use std::sync::atomic::{AtomicU64, Ordering};

use iqb_core::dataset::DatasetId;
use iqb_core::input::AggregateInput;
use iqb_core::metric::Metric;

use crate::error::DataError;
use crate::record::RegionId;
use crate::source::DataSource;
use crate::store::QueryFilter;

use crate::aggregate::AggregationSpec;

/// How a [`ChaosSource`] misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Behave exactly like the wrapped source (control case).
    Passthrough,
    /// Every `contribute` call fails with a structural error.
    ErrorAlways,
    /// The first `n` `contribute` calls fail, then behave normally —
    /// the shape a retry policy must recover from.
    ErrorFirstN(u64),
    /// Every `contribute` call panics (tests the isolation boundary).
    Panic,
    /// Contribute the wrapped source's cells with every value replaced
    /// by NaN (value corruption that parses fine).
    NanMetrics,
    /// Contribute the wrapped source's cells with throughput values
    /// negated (out-of-domain but finite).
    NegativeThroughput,
    /// Contribute nothing, silently (a dried-up feed).
    Empty,
}

/// A corrupting proxy around any [`DataSource`].
pub struct ChaosSource<S: DataSource> {
    inner: S,
    mode: ChaosMode,
    calls: AtomicU64,
}

impl<S: DataSource> ChaosSource<S> {
    /// Wraps `inner` with the given failure mode.
    pub fn new(inner: S, mode: ChaosMode) -> Self {
        ChaosSource {
            inner,
            mode,
            calls: AtomicU64::new(0),
        }
    }

    /// How many `contribute` calls have been observed.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Contributes the inner source's cells with values rewritten by
    /// `rewrite(metric, value)`.
    fn contribute_rewritten(
        &self,
        region: &RegionId,
        filter: &QueryFilter,
        spec: &AggregationSpec,
        input: &mut AggregateInput,
        rewrite: impl Fn(Metric, f64) -> f64,
    ) -> Result<(), DataError> {
        let mut scratch = AggregateInput::new();
        self.inner.contribute(region, filter, spec, &mut scratch)?;
        for ((dataset, metric), cell) in scratch.iter() {
            input.set(dataset.clone(), *metric, rewrite(*metric, cell.value));
        }
        Ok(())
    }
}

impl<S: DataSource> DataSource for ChaosSource<S> {
    fn dataset(&self) -> DatasetId {
        self.inner.dataset()
    }

    fn regions(&self) -> Vec<RegionId> {
        self.inner.regions()
    }

    fn contribute(
        &self,
        region: &RegionId,
        filter: &QueryFilter,
        spec: &AggregationSpec,
        input: &mut AggregateInput,
    ) -> Result<(), DataError> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            ChaosMode::Passthrough => self.inner.contribute(region, filter, spec, input),
            ChaosMode::ErrorAlways => Err(DataError::NoData {
                context: format!("chaos: {} feed unavailable", self.inner.dataset()),
            }),
            ChaosMode::ErrorFirstN(n) if call < n => Err(DataError::NoData {
                context: format!(
                    "chaos: {} transient failure {} of {n}",
                    self.inner.dataset(),
                    call + 1
                ),
            }),
            ChaosMode::ErrorFirstN(_) => self.inner.contribute(region, filter, spec, input),
            ChaosMode::Panic => panic!("chaos: injected panic in {} source", self.inner.dataset()),
            ChaosMode::NanMetrics => {
                self.contribute_rewritten(region, filter, spec, input, |_, _| f64::NAN)
            }
            ChaosMode::NegativeThroughput => {
                self.contribute_rewritten(region, filter, spec, input, |metric, value| match metric
                {
                    Metric::DownloadThroughput | Metric::UploadThroughput => -value.abs(),
                    _ => value,
                })
            }
            ChaosMode::Empty => Ok(()),
        }
    }
}

/// A byte/field-level corruption applied to a CSV/JSONL fixture.
///
/// Line and column numbers are 1-based (matching what a reader would see
/// in the file); out-of-range targets leave the input unchanged so
/// table-driven tests can share fixtures of different sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Cut the byte stream at an absolute offset (a truncated download).
    TruncateAt(usize),
    /// Replace one line with bytes that are not valid UTF-8.
    GarbageUtf8Line(usize),
    /// Replace one comma-separated field on one line.
    ReplaceField {
        /// 1-based line number.
        line: usize,
        /// 1-based field number within the line.
        column: usize,
        /// Replacement field text.
        value: String,
    },
    /// Repeat one line `copies` extra times (a stuttering feed).
    DuplicateLine {
        /// 1-based line number.
        line: usize,
        /// Extra copies to insert after the original.
        copies: usize,
    },
    /// Delete one line entirely.
    DeleteLine(usize),
    /// Append one line of non-record garbage at the end.
    AppendGarbageLine,
}

/// Applies a [`Mutation`] to a byte fixture, returning the corrupted copy.
pub fn mutate(bytes: &[u8], mutation: &Mutation) -> Vec<u8> {
    match mutation {
        Mutation::TruncateAt(offset) => bytes[..(*offset).min(bytes.len())].to_vec(),
        Mutation::AppendGarbageLine => {
            let mut out = bytes.to_vec();
            if !out.is_empty() && !out.ends_with(b"\n") {
                out.push(b'\n');
            }
            out.extend_from_slice(b"### not a record ###\n");
            out
        }
        Mutation::GarbageUtf8Line(line) => {
            rewrite_line(bytes, *line, |_| Some(vec![0xFF, 0xFE, 0x80, 0x81]))
        }
        Mutation::DeleteLine(line) => rewrite_line(bytes, *line, |_| None),
        Mutation::DuplicateLine { line, copies } => {
            let lines = split_lines(bytes);
            let mut out: Vec<Vec<u8>> = Vec::with_capacity(lines.len() + copies);
            for (i, content) in lines.iter().enumerate() {
                out.push(content.clone());
                if i + 1 == *line {
                    for _ in 0..*copies {
                        out.push(content.clone());
                    }
                }
            }
            join_lines(out, bytes.ends_with(b"\n"))
        }
        Mutation::ReplaceField {
            line,
            column,
            value,
        } => rewrite_line(bytes, *line, |content| {
            let mut fields: Vec<Vec<u8>> =
                content.split(|&b| b == b',').map(|f| f.to_vec()).collect();
            if *column >= 1 && *column <= fields.len() {
                fields[*column - 1] = value.as_bytes().to_vec();
            }
            Some(fields.join(&b','))
        }),
    }
}

/// Splits into lines without trailing newlines (the final empty segment a
/// trailing `\n` produces is dropped).
fn split_lines(bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut lines: Vec<Vec<u8>> = bytes.split(|&b| b == b'\n').map(|l| l.to_vec()).collect();
    if bytes.ends_with(b"\n") {
        lines.pop();
    }
    lines
}

fn join_lines(lines: Vec<Vec<u8>>, trailing_newline: bool) -> Vec<u8> {
    let mut out = lines.join(&b'\n');
    if trailing_newline && !lines.is_empty() {
        out.push(b'\n');
    }
    out
}

/// Rewrites one 1-based line via `edit` (returning `None` deletes it).
fn rewrite_line(bytes: &[u8], line: usize, edit: impl Fn(&[u8]) -> Option<Vec<u8>>) -> Vec<u8> {
    let lines = split_lines(bytes);
    let mut out: Vec<Vec<u8>> = Vec::with_capacity(lines.len());
    for (i, content) in lines.into_iter().enumerate() {
        if i + 1 == line {
            if let Some(replacement) = edit(&content) {
                out.push(replacement);
            }
        } else {
            out.push(content);
        }
    }
    join_lines(out, bytes.ends_with(b"\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TestRecord;
    use crate::store::MeasurementStore;
    use std::sync::Arc;

    fn sample_source() -> crate::source::PerTestSource {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        for i in 0..10 {
            store
                .push(TestRecord {
                    timestamp: i,
                    region: region.clone(),
                    dataset: DatasetId::Ndt,
                    download_mbps: 100.0,
                    upload_mbps: 20.0,
                    latency_ms: 30.0,
                    loss_pct: Some(0.2),
                    tech: None,
                })
                .unwrap();
        }
        crate::source::PerTestSource::new(Arc::new(store), DatasetId::Ndt)
    }

    fn contribute(source: &dyn DataSource) -> Result<AggregateInput, DataError> {
        let region = RegionId::new("r").unwrap();
        let mut input = AggregateInput::new();
        source.contribute(
            &region,
            &QueryFilter::all(),
            &AggregationSpec::paper_default(),
            &mut input,
        )?;
        Ok(input)
    }

    #[test]
    fn passthrough_matches_inner() {
        let chaos = ChaosSource::new(sample_source(), ChaosMode::Passthrough);
        let input = contribute(&chaos).unwrap();
        assert_eq!(input.get(&DatasetId::Ndt, Metric::Latency), Some(30.0));
        assert_eq!(chaos.calls(), 1);
    }

    #[test]
    fn error_first_n_recovers() {
        let chaos = ChaosSource::new(sample_source(), ChaosMode::ErrorFirstN(2));
        assert!(contribute(&chaos).is_err());
        assert!(contribute(&chaos).is_err());
        assert!(contribute(&chaos).is_ok());
        assert_eq!(chaos.calls(), 3);
    }

    #[test]
    fn nan_metrics_poisons_every_cell() {
        let chaos = ChaosSource::new(sample_source(), ChaosMode::NanMetrics);
        let input = contribute(&chaos).unwrap();
        assert!(input
            .get(&DatasetId::Ndt, Metric::Latency)
            .unwrap()
            .is_nan());
    }

    #[test]
    fn negative_throughput_spares_latency() {
        let chaos = ChaosSource::new(sample_source(), ChaosMode::NegativeThroughput);
        let input = contribute(&chaos).unwrap();
        assert!(
            input
                .get(&DatasetId::Ndt, Metric::DownloadThroughput)
                .unwrap()
                < 0.0
        );
        assert_eq!(input.get(&DatasetId::Ndt, Metric::Latency), Some(30.0));
    }

    #[test]
    fn empty_contributes_nothing() {
        let chaos = ChaosSource::new(sample_source(), ChaosMode::Empty);
        assert!(contribute(&chaos).unwrap().is_empty());
    }

    #[test]
    fn truncate_and_append() {
        let fixture = b"line-1\nline-2\n";
        assert_eq!(mutate(fixture, &Mutation::TruncateAt(9)), b"line-1\nli");
        assert_eq!(mutate(fixture, &Mutation::TruncateAt(999)), fixture);
        let appended = mutate(fixture, &Mutation::AppendGarbageLine);
        assert!(appended.starts_with(fixture));
        assert!(appended.ends_with(b"### not a record ###\n"));
    }

    #[test]
    fn line_mutations() {
        let fixture = b"a,b,c\nd,e,f\ng,h,i\n";
        let garbage = mutate(fixture, &Mutation::GarbageUtf8Line(2));
        assert!(std::str::from_utf8(&garbage).is_err());
        assert!(garbage.starts_with(b"a,b,c\n"));
        assert!(garbage.ends_with(b"\ng,h,i\n"));

        assert_eq!(mutate(fixture, &Mutation::DeleteLine(2)), b"a,b,c\ng,h,i\n");
        assert_eq!(
            mutate(fixture, &Mutation::DuplicateLine { line: 2, copies: 2 }),
            b"a,b,c\nd,e,f\nd,e,f\nd,e,f\ng,h,i\n"
        );
        assert_eq!(
            mutate(
                fixture,
                &Mutation::ReplaceField {
                    line: 2,
                    column: 2,
                    value: "NaN".into()
                }
            ),
            b"a,b,c\nd,NaN,f\ng,h,i\n"
        );
        // Out-of-range targets are no-ops.
        assert_eq!(mutate(fixture, &Mutation::DeleteLine(99)), fixture);
    }
}
