//! JSON-lines interchange for per-test records.
//!
//! One JSON object per line — the shape M-Lab's raw exports and most
//! measurement pipelines stream. Unlike CSV, JSONL round-trips the full
//! [`TestRecord`] serde representation (including custom dataset ids)
//! without a token layer.

use std::io::{BufRead, BufReader, Read, Write};

use crate::error::DataError;
use crate::record::TestRecord;
use crate::store::MeasurementStore;

/// Writes records as JSON lines.
pub fn write_jsonl<'a, W: Write, I: IntoIterator<Item = &'a TestRecord>>(
    mut writer: W,
    records: I,
) -> Result<usize, DataError> {
    let mut written = 0;
    for record in records {
        serde_json::to_writer(&mut writer, record)?;
        writer.write_all(b"\n")?;
        written += 1;
    }
    writer.flush()?;
    Ok(written)
}

/// Reads JSON-lines records, validating each. Blank lines are skipped.
pub fn read_jsonl<R: Read>(reader: R) -> Result<Vec<TestRecord>, DataError> {
    let buffered = BufReader::new(reader);
    let mut out = Vec::new();
    for (line_no, line) in buffered.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let record: TestRecord = serde_json::from_str(&line).map_err(|e| {
            DataError::InvalidRecord(format!("line {}: {e}", line_no + 1))
        })?;
        record.validate()?;
        out.push(record);
    }
    Ok(out)
}

/// Reads JSON lines straight into a store.
pub fn read_jsonl_into_store<R: Read>(reader: R) -> Result<MeasurementStore, DataError> {
    let mut store = MeasurementStore::new();
    store.extend(read_jsonl(reader)?)?;
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RegionId;
    use iqb_core::dataset::DatasetId;

    fn records() -> Vec<TestRecord> {
        vec![
            TestRecord {
                timestamp: 1,
                region: RegionId::new("a").unwrap(),
                dataset: DatasetId::Cloudflare,
                download_mbps: 55.0,
                upload_mbps: 11.0,
                latency_ms: 40.0,
                loss_pct: Some(0.3),
                tech: None,
            },
            TestRecord {
                timestamp: 2,
                region: RegionId::new("b").unwrap(),
                dataset: DatasetId::Custom("campus-probes".into()),
                download_mbps: 940.0,
                upload_mbps: 930.0,
                latency_ms: 2.0,
                loss_pct: None,
                tech: Some("fiber".into()),
            },
        ]
    }

    #[test]
    fn round_trip() {
        let original = records();
        let mut buf = Vec::new();
        assert_eq!(write_jsonl(&mut buf, &original).unwrap(), 2);
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn one_object_per_line() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.trim_end().lines().count(), 2);
        for line in text.trim_end().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn blank_lines_skipped() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records()).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.insert(0, '\n');
        text.push_str("\n\n");
        assert_eq!(read_jsonl(text.as_bytes()).unwrap().len(), 2);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let text = "{\"not\": \"a record\"}\n";
        let err = read_jsonl(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn invalid_values_rejected_after_parse() {
        let mut record = records().remove(0);
        record.download_mbps = -1.0;
        // Serialize manually (validation only happens on read).
        let line = serde_json::to_string(&record).unwrap();
        assert!(read_jsonl(line.as_bytes()).is_err());
    }

    #[test]
    fn into_store() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records()).unwrap();
        let store = read_jsonl_into_store(buf.as_slice()).unwrap();
        assert_eq!(store.len(), 2);
    }
}
