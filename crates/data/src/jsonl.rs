//! JSON-lines interchange for per-test records.
//!
//! One JSON object per line — the shape M-Lab's raw exports and most
//! measurement pipelines stream. Unlike CSV, JSONL round-trips the full
//! [`TestRecord`] serde representation (including custom dataset ids)
//! without a token layer.

use std::io::{BufRead, BufReader, Read, Write};

use crate::error::DataError;
use crate::quarantine::{FaultKind, IngestMode, QuarantineReport, Quarantined};
use crate::record::TestRecord;
use crate::store::MeasurementStore;

/// Writes records as JSON lines.
pub fn write_jsonl<'a, W: Write, I: IntoIterator<Item = &'a TestRecord>>(
    mut writer: W,
    records: I,
) -> Result<usize, DataError> {
    let mut written = 0;
    for record in records {
        serde_json::to_writer(&mut writer, record)?;
        writer.write_all(b"\n")?;
        written += 1;
    }
    writer.flush()?;
    Ok(written)
}

/// Reads JSON-lines records, validating each. Blank lines are skipped.
/// Aborts on the first faulty line (strict mode).
pub fn read_jsonl<R: Read>(reader: R) -> Result<Vec<TestRecord>, DataError> {
    read_jsonl_mode(reader, IngestMode::Strict).map(|(records, _)| records)
}

/// Reads JSON-lines records under an explicit [`IngestMode`].
///
/// Strict mode aborts with the first line's error, exactly like
/// [`read_jsonl`]. Lenient mode quarantines faulty lines — including
/// lines that are not valid UTF-8, which a `lines()`-based reader would
/// abort the whole stream on — and keeps reading.
pub fn read_jsonl_mode<R: Read>(
    reader: R,
    mode: IngestMode,
) -> Result<(Vec<TestRecord>, QuarantineReport), DataError> {
    let mut buffered = BufReader::new(reader);
    let mut out = Vec::new();
    let mut report = QuarantineReport::new();
    let mut raw = Vec::new();
    let mut line_no = 0;
    loop {
        raw.clear();
        // Read raw bytes per line so an invalid-UTF-8 line is one
        // quarantinable fault, not the end of the stream.
        if buffered.read_until(b'\n', &mut raw)? == 0 {
            break;
        }
        line_no += 1;
        // Classify at the point of failure: encoding vs parse vs
        // domain-validation faults are distinguishable only here.
        let parsed: Result<TestRecord, (FaultKind, DataError)> = match std::str::from_utf8(&raw) {
            Err(e) => Err((
                FaultKind::Encoding,
                DataError::InvalidRecord(format!("line {line_no}: invalid UTF-8: {e}")),
            )),
            Ok(text) if text.trim().is_empty() => continue,
            Ok(text) => classify_json_line(text, line_no),
        };
        report.scanned += 1;
        match parsed {
            Ok(record) => {
                report.kept += 1;
                out.push(record);
            }
            Err((_, e)) if mode == IngestMode::Strict => return Err(e),
            Err((kind, e)) => report.record(Quarantined {
                source: "jsonl".into(),
                line: Some(line_no),
                kind,
                detail: e.to_string(),
            }),
        }
    }
    report.mirror_to(iqb_obs::global(), "jsonl");
    Ok((out, report))
}

/// The shared per-line classifier: parse-vs-validation faults for one
/// JSONL text line. `line_no` is 1-based and feeds only the error
/// detail. Both the batch file reader and the daemon wire path route
/// through here, so the two ingest surfaces classify — and therefore
/// quarantine — identically.
fn classify_json_line(text: &str, line_no: usize) -> Result<TestRecord, (FaultKind, DataError)> {
    match serde_json::from_str::<TestRecord>(text.trim_end_matches(['\n', '\r'])) {
        Err(e) => Err((
            FaultKind::Parse,
            DataError::InvalidRecord(format!("line {line_no}: {e}")),
        )),
        Ok(record) => match record.validate() {
            Ok(()) => Ok(record),
            Err(e) => Err((FaultKind::classify(&e), e)),
        },
    }
}

/// Decodes already-parsed JSON values — the daemon's `submit` payload —
/// through the same per-line classifier as [`read_jsonl_mode`].
///
/// Each value is re-serialized to a single canonical JSON line before
/// classification, so wire ingest quarantines byte-for-byte like batch
/// ingest of the equivalent JSONL file. `label` names the source in
/// quarantine entries and obs mirroring (the daemon passes `"serve"`).
pub fn decode_json_values(
    values: &[serde_json::Value],
    mode: IngestMode,
    label: &str,
) -> Result<(Vec<TestRecord>, QuarantineReport), DataError> {
    let mut out = Vec::new();
    let mut report = QuarantineReport::new();
    for (index, value) in values.iter().enumerate() {
        let line_no = index + 1;
        let text = serde_json::to_string(value)?;
        report.scanned += 1;
        match classify_json_line(&text, line_no) {
            Ok(record) => {
                report.kept += 1;
                out.push(record);
            }
            Err((_, e)) if mode == IngestMode::Strict => return Err(e),
            Err((kind, e)) => report.record(Quarantined {
                source: label.to_string(),
                line: Some(line_no),
                kind,
                detail: e.to_string(),
            }),
        }
    }
    report.mirror_to(iqb_obs::global(), label);
    Ok((out, report))
}

/// Reads JSON lines straight into a store.
pub fn read_jsonl_into_store<R: Read>(reader: R) -> Result<MeasurementStore, DataError> {
    let mut store = MeasurementStore::new();
    store.extend(read_jsonl(reader)?)?;
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RegionId;
    use iqb_core::dataset::DatasetId;

    fn records() -> Vec<TestRecord> {
        vec![
            TestRecord {
                timestamp: 1,
                region: RegionId::new("a").unwrap(),
                dataset: DatasetId::Cloudflare,
                download_mbps: 55.0,
                upload_mbps: 11.0,
                latency_ms: 40.0,
                loss_pct: Some(0.3),
                tech: None,
            },
            TestRecord {
                timestamp: 2,
                region: RegionId::new("b").unwrap(),
                dataset: DatasetId::Custom("campus-probes".into()),
                download_mbps: 940.0,
                upload_mbps: 930.0,
                latency_ms: 2.0,
                loss_pct: None,
                tech: Some("fiber".into()),
            },
        ]
    }

    #[test]
    fn round_trip() {
        let original = records();
        let mut buf = Vec::new();
        assert_eq!(write_jsonl(&mut buf, &original).unwrap(), 2);
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn one_object_per_line() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.trim_end().lines().count(), 2);
        for line in text.trim_end().lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn blank_lines_skipped() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records()).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.insert(0, '\n');
        text.push_str("\n\n");
        assert_eq!(read_jsonl(text.as_bytes()).unwrap().len(), 2);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let text = "{\"not\": \"a record\"}\n";
        let err = read_jsonl(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn invalid_values_rejected_after_parse() {
        let mut record = records().remove(0);
        record.download_mbps = -1.0;
        // Serialize manually (validation only happens on read).
        let line = serde_json::to_string(&record).unwrap();
        assert!(read_jsonl(line.as_bytes()).is_err());
    }

    #[test]
    fn into_store() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records()).unwrap();
        let store = read_jsonl_into_store(buf.as_slice()).unwrap();
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn lenient_read_quarantines_bad_lines() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records()).unwrap();
        buf.extend_from_slice(b"{ not json\n");
        buf.extend_from_slice(&[0xFF, 0xFE, 0x80, b'\n']);
        let mut poisoned = records().remove(0);
        poisoned.loss_pct = Some(150.0);
        buf.extend_from_slice(serde_json::to_string(&poisoned).unwrap().as_bytes());
        buf.extend_from_slice(b"\n");
        let (kept, report) = read_jsonl_mode(buf.as_slice(), IngestMode::Lenient).unwrap();
        assert_eq!(kept, records());
        assert_eq!(report.scanned, 5);
        assert_eq!(report.kept, 2);
        assert_eq!(report.quarantined(), 3);
        assert_eq!(report.count(FaultKind::Parse), 1);
        assert_eq!(report.count(FaultKind::Encoding), 1);
        assert_eq!(report.count(FaultKind::InvalidValue), 1);
        // The garbage JSON line is line 3 and the detail says so.
        let parse = report
            .exemplars
            .iter()
            .find(|q| q.kind == FaultKind::Parse)
            .unwrap();
        assert_eq!(parse.line, Some(3));
        assert!(parse.detail.contains("line 3"), "{}", parse.detail);
    }

    #[test]
    fn strict_mode_aborts_on_invalid_utf8() {
        let bytes = [0xFF, 0xFE, 0x80, b'\n'];
        assert!(read_jsonl_mode(&bytes[..], IngestMode::Strict).is_err());
    }

    /// The daemon wire path and the batch file path must account
    /// identically for the same payload: same kept records, same fault
    /// kinds, same per-line details — only the source label differs.
    #[test]
    fn wire_decode_matches_jsonl_accounting() {
        let mut values: Vec<serde_json::Value> = records()
            .iter()
            .map(|r| serde_json::to_value(r).unwrap())
            .collect();
        values.push(serde_json::json!({"unexpected": true}));
        let mut poisoned = serde_json::to_value(&records()[0]).unwrap();
        poisoned["latency_ms"] = serde_json::json!(-1.0);
        values.push(poisoned);

        // The equivalent JSONL file: one canonical line per value.
        let text: String = values.iter().map(|v| format!("{v}\n")).collect();
        let (file_records, file_report) =
            read_jsonl_mode(text.as_bytes(), IngestMode::Lenient).unwrap();
        let (wire_records, wire_report) =
            decode_json_values(&values, IngestMode::Lenient, "serve").unwrap();

        assert_eq!(wire_records, file_records);
        assert_eq!(wire_report.scanned, file_report.scanned);
        assert_eq!(wire_report.kept, file_report.kept);
        assert_eq!(wire_report.counts, file_report.counts);
        let faults = |report: &QuarantineReport| {
            report
                .exemplars
                .iter()
                .map(|q| (q.line, q.kind, q.detail.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(faults(&wire_report), faults(&file_report));
        assert!(wire_report.per_source.contains_key("serve"));
        assert!(decode_json_values(&values, IngestMode::Strict, "serve").is_err());
    }
}
