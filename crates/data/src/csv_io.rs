//! CSV interchange for per-test records.
//!
//! Published measurement datasets ship as flat files; this module reads
//! and writes [`TestRecord`]s in a stable CSV schema:
//!
//! ```text
//! timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech
//! 120,metro-1,ndt,94.2,18.7,23.5,0.12,cable
//! 180,metro-1,ookla,612.0,41.3,9.1,,fiber
//! ```
//!
//! `loss_pct` and `tech` are optional (empty cells). The `dataset` column
//! uses compact tokens (`ndt`, `cloudflare`, `ookla`, anything else is a
//! custom dataset name).

use std::io::{Read, Write};

use iqb_core::dataset::DatasetId;
use serde::Serialize;

use crate::error::DataError;
use crate::ingest::{
    is_blank_record, next_record_end, parse_csv_record, split_csv_header, HeaderMap,
};
use crate::quarantine::{FaultKind, IngestMode, QuarantineReport, Quarantined};
use crate::record::{RegionId, TestRecord};
use crate::store::MeasurementStore;

/// Compact dataset token used in flat files.
///
/// Builtin datasets yield `'static` tokens; custom datasets borrow
/// their name — no call allocates.
pub fn dataset_token(dataset: &DatasetId) -> &str {
    match dataset {
        DatasetId::Ndt => "ndt",
        DatasetId::Cloudflare => "cloudflare",
        DatasetId::Ookla => "ookla",
        DatasetId::Custom(name) => name,
    }
}

/// Parses a dataset token back to a [`DatasetId`].
pub fn parse_dataset_token(token: &str) -> Result<DatasetId, DataError> {
    match token {
        "ndt" => Ok(DatasetId::Ndt),
        "cloudflare" => Ok(DatasetId::Cloudflare),
        "ookla" => Ok(DatasetId::Ookla),
        other if !other.trim().is_empty() => Ok(DatasetId::Custom(other.to_string())),
        _ => Err(DataError::InvalidRecord("empty dataset token".into())),
    }
}

/// The flat-file row shape for the write path (private: the public
/// type is [`TestRecord`]). The read path shares the hand parser in
/// [`crate::ingest`] instead of deserializing through this struct.
#[derive(Debug, Serialize)]
struct CsvRow {
    timestamp: u64,
    region: String,
    dataset: String,
    download_mbps: f64,
    upload_mbps: f64,
    latency_ms: f64,
    loss_pct: Option<f64>,
    tech: Option<String>,
}

impl CsvRow {
    fn from_record(r: &TestRecord) -> Self {
        CsvRow {
            timestamp: r.timestamp,
            region: r.region.as_str().to_string(),
            dataset: dataset_token(&r.dataset).to_string(),
            download_mbps: r.download_mbps,
            upload_mbps: r.upload_mbps,
            latency_ms: r.latency_ms,
            loss_pct: r.loss_pct,
            tech: r.tech.clone(),
        }
    }
}

/// Writes records as CSV (with header) to any writer.
pub fn write_csv<'a, W: Write, I: IntoIterator<Item = &'a TestRecord>>(
    writer: W,
    records: I,
) -> Result<usize, DataError> {
    let mut csv_writer = csv::Writer::from_writer(writer);
    let mut written = 0;
    for record in records {
        csv_writer.serialize(CsvRow::from_record(record))?;
        written += 1;
    }
    csv_writer.flush()?;
    Ok(written)
}

/// Reads records from CSV (with header), validating each row. Aborts on
/// the first faulty row (strict mode).
pub fn read_csv<R: Read>(reader: R) -> Result<Vec<TestRecord>, DataError> {
    read_csv_mode(reader, IngestMode::Strict).map(|(records, _)| records)
}

/// Reads records from CSV under an explicit [`IngestMode`].
///
/// Strict mode aborts with the first row's error, exactly like
/// [`read_csv`]. Lenient mode quarantines faulty rows (classified by
/// [`FaultKind`], with their 1-based file line) and keeps reading; the
/// returned [`QuarantineReport`] accounts for every drop.
///
/// Records go through the same parser as the chunked reader
/// ([`crate::ingest::read_csv_store`]), so the two paths quarantine
/// identically — same kinds, lines, counts and detail strings.
pub fn read_csv_mode<R: Read>(
    mut reader: R,
    mode: IngestMode,
) -> Result<(Vec<TestRecord>, QuarantineReport), DataError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    let (header_text, body) = split_csv_header(&data)?;
    let header = HeaderMap::parse(header_text);
    let mut out = Vec::new();
    let mut report = QuarantineReport::new();
    let mut raw_fields = Vec::with_capacity(header.field_count);
    let mut fields = Vec::with_capacity(header.field_count);
    let mut records = 0usize;
    let mut pos = 0usize;
    while pos < body.len() {
        let end = next_record_end(body, pos);
        let record = &body[pos..end];
        pos = (end + 1).min(body.len());
        if is_blank_record(record) {
            continue;
        }
        records += 1;
        report.scanned += 1;
        // Line 1 is the header, so data record `k` (1-based, blank
        // lines excluded) sits on file line `k + 1`.
        let line = records + 1;
        let parsed = parse_csv_record(record, &header, line, &mut raw_fields, &mut fields, |p| {
            out.push(TestRecord {
                timestamp: p.timestamp,
                region: RegionId::new(p.region).map_err(|e| (FaultKind::classify(&e), e))?,
                dataset: parse_dataset_token(p.dataset)
                    .map_err(|e| (FaultKind::classify(&e), e))?,
                download_mbps: p.download_mbps,
                upload_mbps: p.upload_mbps,
                latency_ms: p.latency_ms,
                loss_pct: p.loss_pct,
                tech: p.tech.map(str::to_string),
            });
            Ok(())
        });
        match parsed {
            Ok(()) => report.kept += 1,
            Err((_, e)) if mode == IngestMode::Strict => return Err(e),
            Err((kind, e)) => report.record(Quarantined {
                source: "csv".into(),
                line: Some(line),
                kind,
                detail: e.to_string(),
            }),
        }
    }
    report.mirror_to(iqb_obs::global(), "csv");
    Ok((out, report))
}

/// Reads a CSV file straight into a [`MeasurementStore`].
pub fn read_csv_into_store<R: Read>(reader: R) -> Result<MeasurementStore, DataError> {
    let mut store = MeasurementStore::new();
    store.extend(read_csv(reader)?)?;
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<TestRecord> {
        vec![
            TestRecord {
                timestamp: 120,
                region: RegionId::new("metro-1").unwrap(),
                dataset: DatasetId::Ndt,
                download_mbps: 94.2,
                upload_mbps: 18.7,
                latency_ms: 23.5,
                loss_pct: Some(0.12),
                tech: Some("cable".into()),
            },
            TestRecord {
                timestamp: 180,
                region: RegionId::new("metro-1").unwrap(),
                dataset: DatasetId::Ookla,
                download_mbps: 612.0,
                upload_mbps: 41.3,
                latency_ms: 9.1,
                loss_pct: None,
                tech: None,
            },
            TestRecord {
                timestamp: 240,
                region: RegionId::new("rural-2").unwrap(),
                dataset: DatasetId::Custom("ripe-atlas".into()),
                download_mbps: 12.0,
                upload_mbps: 2.0,
                latency_ms: 80.0,
                loss_pct: Some(1.2),
                tech: Some("dsl".into()),
            },
        ]
    }

    #[test]
    fn round_trip_preserves_records() {
        let original = records();
        let mut buf = Vec::new();
        let written = write_csv(&mut buf, &original).unwrap();
        assert_eq!(written, 3);
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn header_and_tokens_are_stable() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &records()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let header = text.lines().next().unwrap();
        assert_eq!(
            header,
            "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech"
        );
        assert!(text.contains(",ndt,"));
        assert!(text.contains(",ookla,"));
        assert!(text.contains(",ripe-atlas,"));
    }

    #[test]
    fn read_rejects_invalid_rows() {
        let csv = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n\
                   10,metro,ndt,-5.0,1.0,10.0,,\n";
        assert!(read_csv(csv.as_bytes()).is_err());
        let csv = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n\
                   10,,ndt,5.0,1.0,10.0,,\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn read_into_store_builds_index() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &records()).unwrap();
        let store = read_csv_into_store(buf.as_slice()).unwrap();
        assert_eq!(store.len(), 3);
        assert_eq!(store.regions().len(), 2);
    }

    #[test]
    fn dataset_token_round_trip() {
        for d in [
            DatasetId::Ndt,
            DatasetId::Cloudflare,
            DatasetId::Ookla,
            DatasetId::Custom("x".into()),
        ] {
            assert_eq!(parse_dataset_token(&dataset_token(&d)).unwrap(), d);
        }
        assert!(parse_dataset_token("").is_err());
    }

    #[test]
    fn empty_csv_is_empty_vec() {
        let csv = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n";
        assert!(read_csv(csv.as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn lenient_read_quarantines_bad_rows_and_keeps_good_ones() {
        let csv = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n\
                   10,metro,ndt,5.0,1.0,10.0,,\n\
                   20,metro,ndt,-5.0,1.0,10.0,,\n\
                   30,,ndt,5.0,1.0,10.0,,\n\
                   40,metro,ndt,not-a-number,1.0,10.0,,\n\
                   50,metro,ookla,9.0,2.0,12.0,,\n";
        let (records, report) = read_csv_mode(csv.as_bytes(), IngestMode::Lenient).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(report.scanned, 5);
        assert_eq!(report.kept, 2);
        assert_eq!(report.quarantined(), 3);
        assert_eq!(report.count(FaultKind::InvalidValue), 1);
        assert_eq!(report.count(FaultKind::InvalidRegion), 1);
        assert_eq!(report.count(FaultKind::Parse), 1);
        // Bad rows sit on file lines 3, 4 and 5 (line 1 is the header).
        let lines: Vec<Option<usize>> = report.exemplars.iter().map(|q| q.line).collect();
        assert_eq!(lines, vec![Some(3), Some(4), Some(5)]);
    }

    #[test]
    fn strict_mode_matches_read_csv_on_faults() {
        let csv = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n\
                   10,metro,ndt,-5.0,1.0,10.0,,\n";
        assert!(read_csv_mode(csv.as_bytes(), IngestMode::Strict).is_err());
    }
}
