//! Quarantine: typed accounting of everything the ingest→score path drops.
//!
//! IQB's p95 comparison makes a score exquisitely sensitive to a handful
//! of broken records, and production feeds *will* deliver them: truncated
//! files, garbage encodings, NaN metrics, impossible loss percentages.
//! The historical behavior — abort the whole multi-region run on the
//! first bad byte — is the right default for reproducing the paper
//! ([`IngestMode::Strict`]), but a serving system needs the other mode:
//! capture the fault, keep the run alive, and account for every dropped
//! record ([`IngestMode::Lenient`]).
//!
//! This module is the accounting half of that story:
//!
//! * [`FaultKind`] — the error taxonomy every quarantined record is
//!   classified under;
//! * [`Quarantined`] — one captured exemplar (source, line, kind, detail);
//! * [`QuarantineReport`] — per-kind and per-source counts plus the
//!   first-N exemplars, mergeable across ingest calls;
//! * [`RetryPolicy`] — a bounded retry-with-backoff wrapper for flaky
//!   source loading.
//!
//! The enforcement half lives in the mode-aware readers
//! ([`crate::csv_io::read_csv_mode`], [`crate::jsonl::read_jsonl_mode`])
//! and in the pipeline's fault-isolating source runner.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::DataError;

/// How the ingest→score path reacts to faulty input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IngestMode {
    /// Abort on the first fault. Byte-identical to the historical
    /// behavior — the committed `results/` exhibits are produced under
    /// this mode. The default.
    #[default]
    Strict,
    /// Quarantine faulty records and degrade failing sources instead of
    /// aborting; every drop is accounted for in a [`QuarantineReport`].
    Lenient,
}

impl IngestMode {
    /// Stable lowercase tag used on the CLI.
    pub fn tag(&self) -> &'static str {
        match self {
            IngestMode::Strict => "strict",
            IngestMode::Lenient => "lenient",
        }
    }
}

impl fmt::Display for IngestMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

impl std::str::FromStr for IngestMode {
    type Err = DataError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "strict" => Ok(IngestMode::Strict),
            "lenient" => Ok(IngestMode::Lenient),
            other => Err(DataError::InvalidAggregation(format!(
                "unknown ingest mode `{other}` (expected strict|lenient)"
            ))),
        }
    }
}

/// The error taxonomy: why a record or source contribution was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A row or line could not be parsed at all (malformed CSV/JSON,
    /// truncated record, wrong column count).
    Parse,
    /// Bytes that are not valid UTF-8 where text was required.
    Encoding,
    /// Parsed, but a metric value is outside its physical domain
    /// (NaN, infinite, negative, loss above 100 %).
    InvalidValue,
    /// An empty or malformed region identifier.
    InvalidRegion,
    /// An empty or malformed dataset token.
    UnknownDataset,
    /// An I/O failure while reading the byte stream.
    Io,
    /// A `DataSource` returned a structural error while contributing.
    SourceError,
    /// A `DataSource` panicked (caught at an isolation boundary).
    SourcePanic,
    /// A valid record that arrived behind the watermark, after every
    /// window covering its timestamp had already closed. Late data is
    /// quarantined rather than reopening windows so closed-window scores
    /// stay immutable once published.
    Late,
}

impl FaultKind {
    /// Every kind, in severity-agnostic display order.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::Parse,
        FaultKind::Encoding,
        FaultKind::InvalidValue,
        FaultKind::InvalidRegion,
        FaultKind::UnknownDataset,
        FaultKind::Io,
        FaultKind::SourceError,
        FaultKind::SourcePanic,
        FaultKind::Late,
    ];

    /// Stable lowercase tag used in rendered reports.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::Parse => "parse",
            FaultKind::Encoding => "encoding",
            FaultKind::InvalidValue => "invalid-value",
            FaultKind::InvalidRegion => "invalid-region",
            FaultKind::UnknownDataset => "unknown-dataset",
            FaultKind::Io => "io",
            FaultKind::SourceError => "source-error",
            FaultKind::SourcePanic => "source-panic",
            FaultKind::Late => "late",
        }
    }

    /// Classifies a [`DataError`] into the taxonomy.
    ///
    /// The `dataset token` message probe exists because the CSV token
    /// layer reports unknown datasets through [`DataError::InvalidRecord`];
    /// it is covered by tests so the coupling cannot drift silently.
    pub fn classify(error: &DataError) -> FaultKind {
        match error {
            DataError::InvalidRecord(why) if why.contains("dataset token") => {
                FaultKind::UnknownDataset
            }
            DataError::InvalidRecord(_) => FaultKind::InvalidValue,
            DataError::InvalidRegion(_) => FaultKind::InvalidRegion,
            DataError::Io(_) => FaultKind::Io,
            DataError::Csv(e) => match e.kind() {
                csv::ErrorKind::Utf8 { .. } => FaultKind::Encoding,
                csv::ErrorKind::Io(_) => FaultKind::Io,
                _ => FaultKind::Parse,
            },
            DataError::Json(_) => FaultKind::Parse,
            DataError::SourcePanic(_) => FaultKind::SourcePanic,
            DataError::InvalidAggregation(_)
            | DataError::NoData { .. }
            | DataError::Stats(_)
            | DataError::Core(_) => FaultKind::SourceError,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One captured exemplar of a quarantined record or contribution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quarantined {
    /// Where the fault came from (a file label, `csv`/`jsonl`, or a
    /// dataset tag for source-level faults).
    pub source: String,
    /// 1-based line number in the originating stream, when known.
    pub line: Option<usize>,
    /// Taxonomy classification.
    pub kind: FaultKind,
    /// Human-readable detail (the underlying error message).
    pub detail: String,
}

/// Default cap on retained exemplars: enough to diagnose, bounded so a
/// wholly corrupt feed cannot balloon the report.
pub const DEFAULT_MAX_EXEMPLARS: usize = 8;

/// Full accounting of what ingest dropped: per-kind counts, per-source
/// counts, and the first-N exemplars.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineReport {
    /// Records examined (faulty or not).
    pub scanned: u64,
    /// Records that passed validation and were kept.
    pub kept: u64,
    /// Quarantined count per fault kind.
    pub counts: BTreeMap<FaultKind, u64>,
    /// Quarantined count per source label.
    pub per_source: BTreeMap<String, u64>,
    /// First-N captured exemplars (N = [`Self::max_exemplars`]).
    pub exemplars: Vec<Quarantined>,
    /// Exemplar retention cap.
    pub max_exemplars: usize,
}

impl Default for QuarantineReport {
    fn default() -> Self {
        QuarantineReport {
            scanned: 0,
            kept: 0,
            counts: BTreeMap::new(),
            per_source: BTreeMap::new(),
            exemplars: Vec::new(),
            max_exemplars: DEFAULT_MAX_EXEMPLARS,
        }
    }
}

impl QuarantineReport {
    /// Creates an empty report with the default exemplar cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one quarantined exemplar, updating every counter.
    pub fn record(&mut self, exemplar: Quarantined) {
        *self.counts.entry(exemplar.kind).or_insert(0) += 1;
        *self.per_source.entry(exemplar.source.clone()).or_insert(0) += 1;
        if self.exemplars.len() < self.max_exemplars {
            self.exemplars.push(exemplar);
        }
    }

    /// Total quarantined records across all kinds.
    pub fn quarantined(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Quarantined count for one kind.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Whether nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.counts.is_empty()
    }

    /// Merges another report into this one (exemplars still capped at
    /// this report's `max_exemplars`).
    pub fn merge(&mut self, other: &QuarantineReport) {
        self.scanned += other.scanned;
        self.kept += other.kept;
        for (kind, n) in &other.counts {
            *self.counts.entry(*kind).or_insert(0) += n;
        }
        for (source, n) in &other.per_source {
            *self.per_source.entry(source.clone()).or_insert(0) += n;
        }
        for exemplar in &other.exemplars {
            if self.exemplars.len() >= self.max_exemplars {
                break;
            }
            self.exemplars.push(exemplar.clone());
        }
    }

    /// Mirrors this report's totals into a metrics registry under the
    /// canonical `ingest.*` names (see [`iqb_obs::names`]).
    ///
    /// This is the single choke point tying quarantine accounting to
    /// telemetry: readers call it exactly once per completed ingest, so
    /// `ingest.scanned.<label> == ingest.kept.<label> +
    /// ingest.quarantined.<label>` holds by construction and a
    /// `RunTelemetry` built from the registry delta reports the same
    /// numbers as this report.
    pub fn mirror_to(&self, registry: &iqb_obs::MetricsRegistry, source_label: &str) {
        use iqb_obs::names;
        registry
            .counter(&names::per_source(names::INGEST_SCANNED, source_label))
            .add(self.scanned);
        registry
            .counter(&names::per_source(names::INGEST_KEPT, source_label))
            .add(self.kept);
        registry
            .counter(&names::per_source(names::INGEST_QUARANTINED, source_label))
            .add(self.quarantined());
        for (kind, n) in &self.counts {
            registry
                .counter(&names::per_source(names::INGEST_FAULT, kind.tag()))
                .add(*n);
        }
    }

    /// Renders a compact human-readable summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "quarantine: {} scanned, {} kept, {} quarantined\n",
            self.scanned,
            self.kept,
            self.quarantined()
        );
        for (kind, n) in &self.counts {
            out.push_str(&format!("  {kind}: {n}\n"));
        }
        for exemplar in &self.exemplars {
            let line = exemplar.line.map(|n| format!(":{n}")).unwrap_or_default();
            out.push_str(&format!(
                "  e.g. [{}] {}{line}: {}\n",
                exemplar.kind, exemplar.source, exemplar.detail
            ));
        }
        out
    }
}

/// Bounded retry with exponential backoff for source loading.
///
/// `max_attempts` counts the first try: `max_attempts == 1` means no
/// retries. The backoff before retry *k* (1-based) is
/// `base_backoff_ms << (k - 1)` milliseconds, capped at one second so a
/// misconfigured policy cannot stall a worker thread for long.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts, including the first (must be ≥ 1).
    pub max_attempts: u32,
    /// Base backoff in milliseconds, doubled per retry. Zero disables
    /// sleeping (the choice for tests).
    pub base_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeping).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
        }
    }

    /// Validates the policy.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.max_attempts == 0 {
            return Err(DataError::InvalidAggregation(
                "retry policy must allow at least one attempt".into(),
            ));
        }
        Ok(())
    }

    /// Runs `op` up to `max_attempts` times, sleeping between attempts.
    ///
    /// `op` receives the 1-based attempt number. Returns the first `Ok`
    /// (or the last `Err`) together with the number of attempts used.
    pub fn run<T, F>(&self, mut op: F) -> (Result<T, DataError>, u32)
    where
        F: FnMut(u32) -> Result<T, DataError>,
    {
        let attempts = self.max_attempts.max(1);
        let mut last_err: Option<DataError> = None;
        for attempt in 1..=attempts {
            if attempt > 1 && self.base_backoff_ms > 0 {
                let shift = (attempt - 2).min(10);
                let backoff = (self.base_backoff_ms << shift).min(1_000);
                std::thread::sleep(std::time::Duration::from_millis(backoff));
            }
            match op(attempt) {
                Ok(value) => return (Ok(value), attempt),
                Err(e) => last_err = Some(e),
            }
        }
        (
            // lint: allow(panic) the retry loop above always runs at least one attempt
            Err(last_err.expect("at least one attempt ran")),
            attempts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplar(kind: FaultKind, source: &str) -> Quarantined {
        Quarantined {
            source: source.into(),
            line: Some(3),
            kind,
            detail: "boom".into(),
        }
    }

    #[test]
    fn ingest_mode_parses_and_defaults_to_strict() {
        assert_eq!(IngestMode::default(), IngestMode::Strict);
        assert_eq!("strict".parse::<IngestMode>().unwrap(), IngestMode::Strict);
        assert_eq!(
            "lenient".parse::<IngestMode>().unwrap(),
            IngestMode::Lenient
        );
        assert!("chaotic".parse::<IngestMode>().is_err());
        assert_eq!(IngestMode::Lenient.to_string(), "lenient");
    }

    #[test]
    fn classify_covers_the_taxonomy() {
        assert_eq!(
            FaultKind::classify(&DataError::InvalidRecord("latency: NaN".into())),
            FaultKind::InvalidValue
        );
        assert_eq!(
            FaultKind::classify(&DataError::InvalidRecord("empty dataset token".into())),
            FaultKind::UnknownDataset
        );
        assert_eq!(
            FaultKind::classify(&DataError::InvalidRegion("empty".into())),
            FaultKind::InvalidRegion
        );
        assert_eq!(
            FaultKind::classify(&DataError::Io(std::io::Error::other("disk"))),
            FaultKind::Io
        );
        assert_eq!(
            FaultKind::classify(&DataError::SourcePanic("help".into())),
            FaultKind::SourcePanic
        );
        assert_eq!(
            FaultKind::classify(&DataError::NoData {
                context: "x".into()
            }),
            FaultKind::SourceError
        );
        let json_err = serde_json::from_str::<serde_json::Value>("{").unwrap_err();
        assert_eq!(
            FaultKind::classify(&DataError::Json(json_err)),
            FaultKind::Parse
        );
    }

    #[test]
    fn report_counts_and_caps_exemplars() {
        let mut report = QuarantineReport {
            max_exemplars: 2,
            ..Default::default()
        };
        for _ in 0..5 {
            report.record(exemplar(FaultKind::Parse, "a.csv"));
        }
        report.record(exemplar(FaultKind::Io, "b.csv"));
        assert_eq!(report.quarantined(), 6);
        assert_eq!(report.count(FaultKind::Parse), 5);
        assert_eq!(report.count(FaultKind::Io), 1);
        assert_eq!(report.count(FaultKind::Encoding), 0);
        assert_eq!(report.per_source["a.csv"], 5);
        assert_eq!(report.exemplars.len(), 2, "capped");
        assert!(!report.is_clean());
        let text = report.render();
        assert!(text.contains("parse: 5"), "{text}");
        assert!(text.contains("a.csv"), "{text}");
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = QuarantineReport::new();
        a.scanned = 10;
        a.kept = 9;
        a.record(exemplar(FaultKind::Parse, "x"));
        let mut b = QuarantineReport::new();
        b.scanned = 5;
        b.kept = 3;
        b.record(exemplar(FaultKind::Parse, "y"));
        b.record(exemplar(FaultKind::Encoding, "y"));
        a.merge(&b);
        assert_eq!(a.scanned, 15);
        assert_eq!(a.kept, 12);
        assert_eq!(a.quarantined(), 3);
        assert_eq!(a.count(FaultKind::Parse), 2);
        assert_eq!(a.exemplars.len(), 3);
    }

    #[test]
    fn mirror_to_preserves_the_accounting_identity() {
        let mut report = QuarantineReport::new();
        report.scanned = 10;
        report.kept = 8;
        report.record(exemplar(FaultKind::Parse, "feed"));
        report.record(exemplar(FaultKind::Io, "feed"));
        let registry = iqb_obs::MetricsRegistry::new();
        report.mirror_to(&registry, "csv");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ingest.scanned.csv"), 10);
        assert_eq!(snap.counter("ingest.kept.csv"), 8);
        assert_eq!(snap.counter("ingest.quarantined.csv"), 2);
        assert_eq!(snap.counter("ingest.fault.parse"), 1);
        assert_eq!(snap.counter("ingest.fault.io"), 1);
        assert_eq!(
            snap.counter("ingest.scanned.csv"),
            snap.counter("ingest.kept.csv") + snap.counter("ingest.quarantined.csv")
        );
    }

    #[test]
    fn report_serde_round_trip() {
        let mut report = QuarantineReport::new();
        report.scanned = 4;
        report.kept = 3;
        report.record(exemplar(FaultKind::InvalidValue, "feed"));
        let json = serde_json::to_string(&report).unwrap();
        let back: QuarantineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn retry_policy_succeeds_after_transient_failures() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 0,
        };
        policy.validate().unwrap();
        let mut calls = 0;
        let (result, attempts) = policy.run(|attempt| {
            calls += 1;
            if attempt < 3 {
                Err(DataError::NoData {
                    context: "transient".into(),
                })
            } else {
                Ok(42)
            }
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(attempts, 3);
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_policy_is_bounded() {
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff_ms: 0,
        };
        let mut calls = 0;
        let (result, attempts) = policy.run(|_| -> Result<(), DataError> {
            calls += 1;
            Err(DataError::NoData {
                context: "permanent".into(),
            })
        });
        assert!(result.is_err());
        assert_eq!(attempts, 2);
        assert_eq!(calls, 2, "no unbounded retrying");
    }

    #[test]
    fn retry_policy_none_tries_once() {
        let (result, attempts) = RetryPolicy::none().run(|_| Ok(7));
        assert_eq!(result.unwrap(), 7);
        assert_eq!(attempts, 1);
        assert!(RetryPolicy {
            max_attempts: 0,
            base_backoff_ms: 0
        }
        .validate()
        .is_err());
    }
}
