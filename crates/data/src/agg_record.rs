//! Pre-aggregated dataset rows — the Ookla open-data shape.
//!
//! Ookla publishes quarterly tile aggregates (average speeds, average
//! latency, test counts), not raw tests. [`AggregateRow`] models one such
//! row; [`reduce_rows`] turns a set of rows for a region into
//! per-metric values via test-count-weighted quantiles, so aggregate-only
//! datasets plug into the same scoring input as per-test ones.
//!
//! Note the epistemic downgrade this models faithfully: a weighted
//! quantile *of row averages* is not the quantile of the underlying tests.
//! That is a real limitation of scoring from published aggregates, and the
//! corroboration tier is how IQB compensates.

use iqb_core::dataset::DatasetId;
use iqb_core::input::{AggregateInput, CellProvenance};
use iqb_core::metric::Metric;
use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::record::RegionId;

/// One pre-aggregated row (e.g. an Ookla tile-quarter).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateRow {
    /// Region the row summarises (tile, city, county …).
    pub region: RegionId,
    /// Dataset that published the row.
    pub dataset: DatasetId,
    /// Start of the aggregation period, seconds since the campaign epoch.
    pub period_start: u64,
    /// Mean download throughput over the period, Mb/s.
    pub avg_download_mbps: f64,
    /// Mean upload throughput over the period, Mb/s.
    pub avg_upload_mbps: f64,
    /// Mean latency over the period, ms.
    pub avg_latency_ms: f64,
    /// Mean packet loss, percent — usually `None` for Ookla open data.
    pub avg_loss_pct: Option<f64>,
    /// Number of tests behind the row (the weighting mass).
    pub tests: u64,
}

impl AggregateRow {
    /// Validates metric domains and weighting mass.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.tests == 0 {
            return Err(DataError::InvalidRecord(
                "aggregate row must summarise at least one test".into(),
            ));
        }
        let checks = [
            (Metric::DownloadThroughput, Some(self.avg_download_mbps)),
            (Metric::UploadThroughput, Some(self.avg_upload_mbps)),
            (Metric::Latency, Some(self.avg_latency_ms)),
            (Metric::PacketLoss, self.avg_loss_pct),
        ];
        for (metric, value) in checks {
            if let Some(v) = value {
                metric
                    .validate(v)
                    .map_err(|why| DataError::InvalidRecord(format!("{metric}: {why}")))?;
            }
        }
        Ok(())
    }

    /// The row's value for one metric.
    pub fn metric_value(&self, metric: Metric) -> Option<f64> {
        match metric {
            Metric::DownloadThroughput => Some(self.avg_download_mbps),
            Metric::UploadThroughput => Some(self.avg_upload_mbps),
            Metric::Latency => Some(self.avg_latency_ms),
            Metric::PacketLoss => self.avg_loss_pct,
        }
    }
}

/// Reduces a region's aggregate rows to per-metric values at quantile `q`,
/// weighting each row by its test count, and merges them into `input`.
///
/// Rows for other regions/datasets must be filtered out by the caller
/// (see [`crate::source::AggregateSource`]).
pub fn reduce_rows(
    rows: &[AggregateRow],
    dataset: &DatasetId,
    q: f64,
    input: &mut AggregateInput,
) -> Result<(), DataError> {
    if rows.is_empty() {
        return Err(DataError::NoData {
            context: format!("no aggregate rows for {dataset}"),
        });
    }
    for row in rows {
        row.validate()?;
    }
    for metric in Metric::ALL {
        let mut values = Vec::new();
        let mut weights = Vec::new();
        for row in rows {
            if let Some(v) = row.metric_value(metric) {
                values.push(v);
                weights.push(row.tests as f64);
            }
        }
        if values.is_empty() {
            continue;
        }
        let value = iqb_stats::exact::weighted_quantile(&values, &weights, q)?;
        let total_tests: u64 = rows
            .iter()
            .filter(|r| r.metric_value(metric).is_some())
            .map(|r| r.tests)
            .sum();
        input.set_with_provenance(
            dataset.clone(),
            metric,
            value,
            CellProvenance {
                sample_count: total_tests,
                quantile: q,
                // Weighted quantiles over pre-aggregated rows are always
                // computed exactly; streaming backends apply to per-test
                // record streams only.
                backend: iqb_core::input::AggregationBackend::Exact,
            },
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(region: &str, tests: u64, down: f64) -> AggregateRow {
        AggregateRow {
            region: RegionId::new(region).unwrap(),
            dataset: DatasetId::Ookla,
            period_start: 0,
            avg_download_mbps: down,
            avg_upload_mbps: 12.0,
            avg_latency_ms: 22.0,
            avg_loss_pct: None,
            tests,
        }
    }

    #[test]
    fn validation() {
        row("r", 10, 100.0).validate().unwrap();
        let mut bad = row("r", 0, 100.0);
        assert!(bad.validate().is_err());
        bad = row("r", 5, -1.0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn reduce_weights_by_test_count() {
        // 90 tests at 10 Mb/s, 10 tests at 1000 Mb/s → the median sits at
        // the slow mass; p95 reaches the fast row.
        let rows = vec![row("r", 90, 10.0), row("r", 10, 1000.0)];
        let mut input = AggregateInput::new();
        reduce_rows(&rows, &DatasetId::Ookla, 0.5, &mut input).unwrap();
        assert_eq!(
            input.get(&DatasetId::Ookla, Metric::DownloadThroughput),
            Some(10.0)
        );
        let mut input95 = AggregateInput::new();
        reduce_rows(&rows, &DatasetId::Ookla, 0.95, &mut input95).unwrap();
        assert_eq!(
            input95.get(&DatasetId::Ookla, Metric::DownloadThroughput),
            Some(1000.0)
        );
    }

    #[test]
    fn loss_omitted_when_absent_everywhere() {
        let rows = vec![row("r", 10, 100.0)];
        let mut input = AggregateInput::new();
        reduce_rows(&rows, &DatasetId::Ookla, 0.95, &mut input).unwrap();
        assert!(input.get(&DatasetId::Ookla, Metric::PacketLoss).is_none());
        assert!(input.get(&DatasetId::Ookla, Metric::Latency).is_some());
    }

    #[test]
    fn provenance_counts_total_tests() {
        let rows = vec![row("r", 30, 50.0), row("r", 70, 80.0)];
        let mut input = AggregateInput::new();
        reduce_rows(&rows, &DatasetId::Ookla, 0.95, &mut input).unwrap();
        let prov = input
            .get_cell(&DatasetId::Ookla, Metric::DownloadThroughput)
            .unwrap()
            .provenance
            .unwrap();
        assert_eq!(prov.sample_count, 100);
    }

    #[test]
    fn empty_rows_error() {
        let mut input = AggregateInput::new();
        assert!(matches!(
            reduce_rows(&[], &DatasetId::Ookla, 0.95, &mut input),
            Err(DataError::NoData { .. })
        ));
    }

    #[test]
    fn invalid_row_propagates() {
        let mut bad = row("r", 5, 100.0);
        bad.avg_latency_ms = f64::INFINITY;
        let mut input = AggregateInput::new();
        assert!(reduce_rows(&[bad], &DatasetId::Ookla, 0.95, &mut input).is_err());
    }
}
