//! Chunked, optionally parallel CSV/JSONL ingest straight into the
//! columnar [`MeasurementStore`].
//!
//! The serial readers ([`crate::csv_io::read_csv_mode`],
//! [`crate::jsonl::read_jsonl_mode`]) deserialize every row into an
//! owned record of `String`s before the store ever sees it. At
//! "millions of users" scale that allocation dominates the pipeline, so
//! this module takes the other path:
//!
//! 1. the calling thread reads the whole byte stream and splits it on
//!    row boundaries (quote-aware for CSV) into up to `threads` chunks;
//! 2. crossbeam-scoped parser workers parse their chunk borrowed in
//!    place — field slices, `u32` symbols from chunk-local interning
//!    tables, no per-row `String` — each emitting a
//!    [`RecordBatch`] plus a per-chunk [`QuarantineReport`];
//! 3. batches are appended to the store *in chunk order*, remapping
//!    chunk-local symbols onto the store's global tables, and the
//!    per-chunk reports merge in the same order.
//!
//! Because chunks are contiguous, ordered slices of the input and both
//! interning sides assign symbols in first-seen order, the resulting
//! store, quarantine counts and exemplars are identical whatever
//! `threads` is — 1, 2 and 8 threads produce byte-equal results, and
//! strict mode still surfaces the first faulty row's error.
//!
//! Accounting matches the serial readers row for row: the same rows are
//! scanned/kept/quarantined under the same [`FaultKind`]s with the same
//! line numbers, and JSONL fault details are byte-identical. The one
//! documented divergence: CSV `parse`/`encoding` fault *detail strings*
//! come from this module's field parser rather than the `csv` crate, so
//! their wording differs from the serial reader (kind, line and count
//! accounting do not).

use std::borrow::Cow;
use std::io::Read;
use std::ops::Range;
use std::str::FromStr;
use std::time::Instant;

use crate::error::DataError;
use crate::quarantine::{FaultKind, IngestMode, QuarantineReport, Quarantined};
use crate::record::{validate_metrics, TestRecord};
use crate::store::{BatchRow, MeasurementStore, RecordBatch};

/// Default parser-worker count: the machine's available parallelism.
pub fn default_ingest_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One contiguous slice of the input body handed to a parser worker.
struct Chunk {
    range: Range<usize>,
    /// Non-blank records (CSV) or physical lines (JSONL) before this
    /// chunk — the worker's offset for global line numbering.
    before: usize,
}

/// What one parser worker hands back.
#[derive(Default)]
struct ChunkOutput {
    batch: RecordBatch,
    report: QuarantineReport,
    /// Set only in strict mode: the chunk's first faulty row's error.
    first_error: Option<DataError>,
}

/// Reads CSV (with header) into a columnar store, parsing with up to
/// `threads` workers. Semantics per [`IngestMode`] match
/// [`crate::csv_io::read_csv_mode`] (see the module docs for the one
/// fault-detail-wording divergence).
pub fn read_csv_store<R: Read>(
    mut reader: R,
    mode: IngestMode,
    threads: usize,
) -> Result<(MeasurementStore, QuarantineReport), DataError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    let started = Instant::now();
    let header_end = data
        .iter()
        .position(|&b| b == b'\n')
        .map_or(data.len(), |i| i + 1);
    let header_text = std::str::from_utf8(&data[..header_end])
        .map_err(|e| DataError::InvalidRecord(format!("csv header: invalid UTF-8: {e}")))?;
    let header = HeaderMap::parse(header_text);
    let body = &data[header_end..];
    let chunks = split_csv_chunks(body, threads.max(1));
    let outputs = run_workers(&chunks, |chunk| {
        parse_csv_chunk(&body[chunk.range.clone()], chunk.before, &header, mode)
    })?;
    finish(outputs, mode, chunks.len(), started, "csv")
}

/// Reads JSON lines into a columnar store, parsing with up to `threads`
/// workers. Semantics per [`IngestMode`] match
/// [`crate::jsonl::read_jsonl_mode`], including fault detail strings.
pub fn read_jsonl_store<R: Read>(
    mut reader: R,
    mode: IngestMode,
    threads: usize,
) -> Result<(MeasurementStore, QuarantineReport), DataError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    let started = Instant::now();
    let chunks = split_line_chunks(&data, threads.max(1));
    let outputs = run_workers(&chunks, |chunk| {
        parse_jsonl_chunk(&data[chunk.range.clone()], chunk.before, mode)
    })?;
    finish(outputs, mode, chunks.len(), started, "jsonl")
}

/// Runs one parser per chunk on scoped threads (inline when there is at
/// most one chunk), returning outputs in chunk order.
fn run_workers<F>(chunks: &[Chunk], parse: F) -> Result<Vec<ChunkOutput>, DataError>
where
    F: Fn(&Chunk) -> ChunkOutput + Sync,
{
    if chunks.len() <= 1 {
        return Ok(chunks.iter().map(|c| parse(c)).collect());
    }
    crossbeam::scope(|s| {
        let parse = &parse;
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| s.spawn(move |_| parse(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| DataError::SourcePanic("ingest parser worker panicked".into()))
            })
            .collect()
    })
    .map_err(|_| DataError::SourcePanic("ingest worker pool panicked".into()))?
}

/// Merges worker outputs in chunk order: strict mode surfaces the
/// globally first faulty row's error; lenient mode merges reports (so
/// exemplars stay in input order) and appends every batch.
fn finish(
    outputs: Vec<ChunkOutput>,
    mode: IngestMode,
    chunk_count: usize,
    started: Instant,
    label: &str,
) -> Result<(MeasurementStore, QuarantineReport), DataError> {
    let mut store = MeasurementStore::new();
    let mut report = QuarantineReport::new();
    for out in outputs {
        if mode == IngestMode::Strict {
            if let Some(e) = out.first_error {
                return Err(e);
            }
        }
        store.append_batch(&out.batch);
        report.merge(&out.report);
    }
    let registry = iqb_obs::global();
    registry
        .counter(iqb_obs::names::INGEST_CHUNKS)
        .add(chunk_count as u64);
    registry
        .counter(iqb_obs::names::INGEST_PARSE_NS)
        .add(started.elapsed().as_nanos() as u64);
    report.mirror_to(registry, label);
    Ok((store, report))
}

/// Index of the `\n` terminating the CSV record starting at `start`
/// (`data.len()` when the record runs to the end). Quote-aware: a
/// newline inside a quoted field does not terminate the record, and a
/// `"` inside an unquoted field is literal, mirroring the `csv` crate.
fn next_record_end(data: &[u8], start: usize) -> usize {
    enum S {
        FieldStart,
        Unquoted,
        Quoted,
        QuoteEnd,
    }
    let mut state = S::FieldStart;
    let mut i = start;
    while i < data.len() {
        match state {
            S::FieldStart => match data[i] {
                b'"' => state = S::Quoted,
                b',' => {}
                b'\n' => return i,
                _ => state = S::Unquoted,
            },
            S::Unquoted => match data[i] {
                b',' => state = S::FieldStart,
                b'\n' => return i,
                _ => {}
            },
            S::Quoted => {
                if data[i] == b'"' {
                    state = S::QuoteEnd;
                }
            }
            S::QuoteEnd => match data[i] {
                b'"' => state = S::Quoted,
                b',' => state = S::FieldStart,
                b'\n' => return i,
                _ => state = S::Unquoted,
            },
        }
        i += 1;
    }
    data.len()
}

/// A record the `csv` crate would skip entirely (and never count).
fn is_blank_record(bytes: &[u8]) -> bool {
    bytes.is_empty() || bytes == b"\r"
}

/// Splits the CSV body (header already stripped) into up to `want`
/// chunks cut only at record boundaries, tracking how many non-blank
/// records precede each chunk.
fn split_csv_chunks(data: &[u8], want: usize) -> Vec<Chunk> {
    let mut chunks = Vec::new();
    if data.is_empty() {
        return chunks;
    }
    let mut pos = 0usize;
    let mut records = 0usize;
    let mut chunk_start = 0usize;
    let mut chunk_before = 0usize;
    while pos < data.len() {
        let end = next_record_end(data, pos);
        if !is_blank_record(&data[pos..end]) {
            records += 1;
        }
        let after = (end + 1).min(data.len());
        pos = after;
        let next_target = (chunks.len() + 1) * data.len() / want;
        if after < data.len() && after >= next_target && chunks.len() + 1 < want {
            chunks.push(Chunk {
                range: chunk_start..after,
                before: chunk_before,
            });
            chunk_start = after;
            chunk_before = records;
        }
    }
    chunks.push(Chunk {
        range: chunk_start..data.len(),
        before: chunk_before,
    });
    chunks
}

/// Splits JSONL input into up to `want` chunks cut at line boundaries,
/// tracking how many physical lines precede each chunk.
fn split_line_chunks(data: &[u8], want: usize) -> Vec<Chunk> {
    let mut chunks = Vec::new();
    if data.is_empty() {
        return chunks;
    }
    let mut lines = 0usize;
    let mut chunk_start = 0usize;
    let mut chunk_before = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        lines += 1;
        let after = i + 1;
        let next_target = (chunks.len() + 1) * data.len() / want;
        if after < data.len() && after >= next_target && chunks.len() + 1 < want {
            chunks.push(Chunk {
                range: chunk_start..after,
                before: chunk_before,
            });
            chunk_start = after;
            chunk_before = lines;
        }
    }
    chunks.push(Chunk {
        range: chunk_start..data.len(),
        before: chunk_before,
    });
    chunks
}

/// Column positions resolved from the CSV header, by name (so reordered
/// columns parse like the serde reader); unknown columns are ignored.
struct HeaderMap {
    timestamp: Option<usize>,
    region: Option<usize>,
    dataset: Option<usize>,
    download: Option<usize>,
    upload: Option<usize>,
    latency: Option<usize>,
    loss: Option<usize>,
    tech: Option<usize>,
    field_count: usize,
}

impl HeaderMap {
    fn parse(line: &str) -> Self {
        let line = line.strip_suffix('\n').unwrap_or(line);
        let line = line.strip_suffix('\r').unwrap_or(line);
        let mut map = HeaderMap {
            timestamp: None,
            region: None,
            dataset: None,
            download: None,
            upload: None,
            latency: None,
            loss: None,
            tech: None,
            field_count: 0,
        };
        if line.is_empty() {
            return map;
        }
        for (i, name) in line.split(',').enumerate() {
            map.field_count = i + 1;
            match name {
                "timestamp" => map.timestamp = Some(i),
                "region" => map.region = Some(i),
                "dataset" => map.dataset = Some(i),
                "download_mbps" => map.download = Some(i),
                "upload_mbps" => map.upload = Some(i),
                "latency_ms" => map.latency = Some(i),
                "loss_pct" => map.loss = Some(i),
                "tech" => map.tech = Some(i),
                _ => {}
            }
        }
        map
    }
}

fn parse_csv_chunk(
    data: &[u8],
    records_before: usize,
    header: &HeaderMap,
    mode: IngestMode,
) -> ChunkOutput {
    let mut out = ChunkOutput::default();
    let mut fields: Vec<Cow<'_, str>> = Vec::with_capacity(header.field_count);
    let mut records = records_before;
    let mut pos = 0usize;
    while pos < data.len() {
        let end = next_record_end(data, pos);
        let record = &data[pos..end];
        pos = (end + 1).min(data.len());
        if is_blank_record(record) {
            continue;
        }
        records += 1;
        out.report.scanned += 1;
        // Line 1 is the header, so data record `k` (1-based, blank
        // lines excluded) sits on "line" `k + 1` — the same numbering
        // the serial reader derives from its record index.
        let line = records + 1;
        match parse_csv_record(record, header, line, &mut fields, &mut out.batch) {
            Ok(()) => out.report.kept += 1,
            Err((_, e)) if mode == IngestMode::Strict => {
                out.first_error = Some(e);
                return out;
            }
            Err((kind, e)) => out.report.record(Quarantined {
                source: "csv".into(),
                line: Some(line),
                kind,
                detail: e.to_string(),
            }),
        }
    }
    out
}

/// Parses one CSV record into the batch, reproducing the serial path's
/// fault precedence: malformed fields (`Parse`/`Encoding`) before
/// region (`InvalidRegion`) before dataset (`UnknownDataset`) before
/// metric domains (`InvalidValue`). Nothing is interned until every
/// check has passed, so quarantined rows never plant symbols in the
/// batch tables.
fn parse_csv_record<'a>(
    record: &'a [u8],
    header: &HeaderMap,
    line: usize,
    fields: &mut Vec<Cow<'a, str>>,
    batch: &mut RecordBatch,
) -> Result<(), (FaultKind, DataError)> {
    let text = std::str::from_utf8(record).map_err(|e| {
        (
            FaultKind::Encoding,
            DataError::InvalidRecord(format!("row {line}: invalid UTF-8: {e}")),
        )
    })?;
    let text = text.strip_suffix('\r').unwrap_or(text);
    split_csv_fields(text, fields);
    if fields.len() != header.field_count {
        return Err((
            FaultKind::Parse,
            DataError::InvalidRecord(format!(
                "row {line}: expected {} fields, found {}",
                header.field_count,
                fields.len()
            )),
        ));
    }
    let timestamp: u64 = parse_field(fields, header.timestamp, "timestamp", line)?;
    let download_mbps: f64 = parse_field(fields, header.download, "download_mbps", line)?;
    let upload_mbps: f64 = parse_field(fields, header.upload, "upload_mbps", line)?;
    let latency_ms: f64 = parse_field(fields, header.latency, "latency_ms", line)?;
    let loss_pct: Option<f64> = match optional_field(fields, header.loss) {
        Some(raw) if !raw.is_empty() => Some(parse_value(raw, "loss_pct", line)?),
        _ => None,
    };
    let region = required_field(fields, header.region, "region", line)?;
    if region.trim().is_empty() {
        // The only failure mode of `RegionId::new`, reproduced here so
        // a rejected region is never interned.
        return Err((
            FaultKind::InvalidRegion,
            DataError::InvalidRegion("region id must be non-empty".into()),
        ));
    }
    let dataset = required_field(fields, header.dataset, "dataset", line)?;
    if dataset.trim().is_empty() {
        // The only failure mode of `parse_dataset_token`, likewise.
        return Err((
            FaultKind::UnknownDataset,
            DataError::InvalidRecord("empty dataset token".into()),
        ));
    }
    validate_metrics(download_mbps, upload_mbps, latency_ms, loss_pct)
        .map_err(|e| (FaultKind::classify(&e), e))?;
    let region = batch
        .intern_region(region)
        .map_err(|e| (FaultKind::classify(&e), e))?;
    let dataset = batch
        .intern_dataset_token(dataset)
        .map_err(|e| (FaultKind::classify(&e), e))?;
    let tech = match optional_field(fields, header.tech) {
        Some(t) if !t.is_empty() => Some(batch.intern_tech(t)),
        _ => None,
    };
    batch.push_row(BatchRow {
        timestamp,
        region,
        dataset,
        download_mbps,
        upload_mbps,
        latency_ms,
        loss_pct,
        tech,
    });
    Ok(())
}

/// Splits one CSV record into fields in place. Unquoted fields and
/// quoted fields without escapes borrow the record; only a field with
/// doubled-quote escapes allocates.
fn split_csv_fields<'a>(text: &'a str, out: &mut Vec<Cow<'a, str>>) {
    out.clear();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    loop {
        if i < bytes.len() && bytes[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            let mut escaped = false;
            while j < bytes.len() {
                if bytes[j] == b'"' {
                    if j + 1 < bytes.len() && bytes[j + 1] == b'"' {
                        escaped = true;
                        j += 2;
                        continue;
                    }
                    break;
                }
                j += 1;
            }
            let inner = &text[start..j.min(bytes.len())];
            out.push(if escaped {
                Cow::Owned(inner.replace("\"\"", "\""))
            } else {
                Cow::Borrowed(inner)
            });
            i = j + 1;
            while i < bytes.len() && bytes[i] != b',' {
                i += 1;
            }
        } else {
            let start = i;
            while i < bytes.len() && bytes[i] != b',' {
                i += 1;
            }
            out.push(Cow::Borrowed(&text[start..i]));
        }
        if i >= bytes.len() {
            break;
        }
        i += 1;
    }
}

fn required_field<'f>(
    fields: &'f [Cow<'f, str>],
    idx: Option<usize>,
    col: &str,
    line: usize,
) -> Result<&'f str, (FaultKind, DataError)> {
    match idx {
        Some(i) => Ok(fields[i].as_ref()),
        None => Err((
            FaultKind::Parse,
            DataError::InvalidRecord(format!("row {line}: missing column `{col}`")),
        )),
    }
}

/// Optional columns (`loss_pct`, `tech`) may be absent from the header
/// entirely; that reads as "no value", like the serde reader.
fn optional_field<'f>(fields: &'f [Cow<'f, str>], idx: Option<usize>) -> Option<&'f str> {
    idx.map(|i| fields[i].as_ref())
}

fn parse_value<T: FromStr>(raw: &str, col: &str, line: usize) -> Result<T, (FaultKind, DataError)>
where
    T::Err: std::fmt::Display,
{
    raw.parse::<T>().map_err(|e| {
        (
            FaultKind::Parse,
            DataError::InvalidRecord(format!("row {line}: column `{col}`: {e} (value `{raw}`)")),
        )
    })
}

fn parse_field<T: FromStr>(
    fields: &[Cow<'_, str>],
    idx: Option<usize>,
    col: &str,
    line: usize,
) -> Result<T, (FaultKind, DataError)>
where
    T::Err: std::fmt::Display,
{
    parse_value(required_field(fields, idx, col, line)?, col, line)
}

/// Parses one JSONL chunk, mirroring the serial reader line for line:
/// same UTF-8/parse/validation classification, same global line
/// numbers, same detail strings, blank lines skipped without counting.
fn parse_jsonl_chunk(data: &[u8], lines_before: usize, mode: IngestMode) -> ChunkOutput {
    let mut out = ChunkOutput::default();
    let mut line_no = lines_before;
    let mut pos = 0usize;
    while pos < data.len() {
        // Keep the trailing newline in the checked slice, exactly like
        // the serial reader's `read_until`, so UTF-8 error details match
        // byte for byte.
        let (raw, next) = match data[pos..].iter().position(|&b| b == b'\n') {
            Some(off) => (&data[pos..pos + off + 1], pos + off + 1),
            None => (&data[pos..], data.len()),
        };
        pos = next;
        line_no += 1;
        let parsed: Result<TestRecord, (FaultKind, DataError)> = match std::str::from_utf8(raw) {
            Err(e) => Err((
                FaultKind::Encoding,
                DataError::InvalidRecord(format!("line {line_no}: invalid UTF-8: {e}")),
            )),
            Ok(text) if text.trim().is_empty() => continue,
            Ok(text) => {
                match serde_json::from_str::<TestRecord>(text.trim_end_matches(['\n', '\r'])) {
                    Err(e) => Err((
                        FaultKind::Parse,
                        DataError::InvalidRecord(format!("line {line_no}: {e}")),
                    )),
                    Ok(record) => match record.validate() {
                        Ok(()) => Ok(record),
                        Err(e) => Err((FaultKind::classify(&e), e)),
                    },
                }
            }
        };
        out.report.scanned += 1;
        match parsed {
            Ok(record) => {
                out.report.kept += 1;
                out.batch.push_record(&record);
            }
            Err((_, e)) if mode == IngestMode::Strict => {
                out.first_error = Some(e);
                return out;
            }
            Err((kind, e)) => out.report.record(Quarantined {
                source: "jsonl".into(),
                line: Some(line_no),
                kind,
                detail: e.to_string(),
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv_io::{read_csv_mode, write_csv};
    use crate::jsonl::{read_jsonl_mode, write_jsonl};
    use crate::record::RegionId;
    use crate::store::QueryFilter;
    use iqb_core::dataset::DatasetId;

    fn records() -> Vec<TestRecord> {
        let mut out = Vec::new();
        for i in 0..40u64 {
            let region = ["east", "west", "north"][(i % 3) as usize];
            let dataset = match i % 4 {
                0 => DatasetId::Ndt,
                1 => DatasetId::Ookla,
                2 => DatasetId::Cloudflare,
                _ => DatasetId::Custom("ripe-atlas".into()),
            };
            out.push(TestRecord {
                timestamp: 100 + i,
                region: RegionId::new(region).unwrap(),
                dataset,
                download_mbps: 50.0 + i as f64,
                upload_mbps: 10.0 + i as f64,
                latency_ms: 20.0,
                loss_pct: if i % 5 == 0 { None } else { Some(0.2) },
                tech: if i % 2 == 0 {
                    Some("cable".into())
                } else {
                    None
                },
            });
        }
        out
    }

    fn store_rows(store: &MeasurementStore) -> Vec<TestRecord> {
        store
            .query(&QueryFilter::all())
            .map(|r| r.to_record())
            .collect()
    }

    #[test]
    fn csv_clean_corpus_matches_serial_reader() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &records()).unwrap();
        let (serial, serial_report) = read_csv_mode(buf.as_slice(), IngestMode::Lenient).unwrap();
        for threads in [1, 3, 8] {
            let (store, report) =
                read_csv_store(buf.as_slice(), IngestMode::Lenient, threads).unwrap();
            assert_eq!(store_rows(&store), serial, "threads={threads}");
            assert_eq!(report, serial_report, "threads={threads}");
        }
    }

    #[test]
    fn csv_lenient_faults_match_serial_accounting() {
        let csv = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n\
                   10,metro,ndt,5.0,1.0,10.0,,\n\
                   20,metro,ndt,-5.0,1.0,10.0,,\n\
                   30,,ndt,5.0,1.0,10.0,,\n\
                   40,metro,ndt,not-a-number,1.0,10.0,,\n\
                   50,metro,ookla,9.0,2.0,12.0,,\n";
        let (_, serial_report) = read_csv_mode(csv.as_bytes(), IngestMode::Lenient).unwrap();
        for threads in [1, 2, 8] {
            let (store, report) =
                read_csv_store(csv.as_bytes(), IngestMode::Lenient, threads).unwrap();
            assert_eq!(store.len(), 2, "threads={threads}");
            assert_eq!(report.scanned, serial_report.scanned);
            assert_eq!(report.kept, serial_report.kept);
            assert_eq!(report.counts, serial_report.counts);
            let kinds_lines: Vec<(FaultKind, Option<usize>)> =
                report.exemplars.iter().map(|q| (q.kind, q.line)).collect();
            let serial_kinds_lines: Vec<(FaultKind, Option<usize>)> = serial_report
                .exemplars
                .iter()
                .map(|q| (q.kind, q.line))
                .collect();
            assert_eq!(kinds_lines, serial_kinds_lines);
            // The invalid-region detail comes from the same constructor
            // as the serial path, so it matches byte for byte.
            let region_fault = report
                .exemplars
                .iter()
                .find(|q| q.kind == FaultKind::InvalidRegion)
                .unwrap();
            let serial_region_fault = serial_report
                .exemplars
                .iter()
                .find(|q| q.kind == FaultKind::InvalidRegion)
                .unwrap();
            assert_eq!(region_fault.detail, serial_region_fault.detail);
        }
    }

    #[test]
    fn csv_thread_counts_are_deterministic() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &records()).unwrap();
        // Poison a few rows so quarantine merging is exercised too.
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("9000,,ndt,1.0,1.0,1.0,,\n");
        text.push_str("9001,late,ndt,-3.0,1.0,1.0,,\n");
        let (store1, report1) = read_csv_store(text.as_bytes(), IngestMode::Lenient, 1).unwrap();
        for threads in [2, 8] {
            let (store, report) =
                read_csv_store(text.as_bytes(), IngestMode::Lenient, threads).unwrap();
            assert_eq!(store, store1, "threads={threads}");
            assert_eq!(store.regions(), store1.regions());
            assert_eq!(store.datasets(), store1.datasets());
            assert_eq!(report, report1, "threads={threads}");
        }
    }

    #[test]
    fn csv_strict_mode_surfaces_first_error() {
        let csv = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n\
                   10,metro,ndt,5.0,1.0,10.0,,\n\
                   20,metro,ndt,-5.0,1.0,10.0,,\n";
        for threads in [1, 4] {
            assert!(read_csv_store(csv.as_bytes(), IngestMode::Strict, threads).is_err());
        }
        let clean = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n\
                     10,metro,ndt,5.0,1.0,10.0,,\n";
        let (store, report) = read_csv_store(clean.as_bytes(), IngestMode::Strict, 4).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(report.scanned, 1);
        assert_eq!(report.kept, 1);
    }

    #[test]
    fn csv_quoted_fields_and_embedded_newlines() {
        let original = vec![TestRecord {
            timestamp: 1,
            region: RegionId::new("metro, central\nannex").unwrap(),
            dataset: DatasetId::Custom("probes \"beta\"".into()),
            download_mbps: 10.0,
            upload_mbps: 5.0,
            latency_ms: 30.0,
            loss_pct: None,
            tech: Some("fiber".into()),
        }];
        let mut buf = Vec::new();
        write_csv(&mut buf, &original).unwrap();
        for threads in [1, 4] {
            let (store, report) =
                read_csv_store(buf.as_slice(), IngestMode::Strict, threads).unwrap();
            assert_eq!(store_rows(&store), original, "threads={threads}");
            assert_eq!(report.kept, 1);
        }
    }

    #[test]
    fn csv_quarantined_rows_never_plant_symbols() {
        let csv = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n\
                   10,ghost,ndt,-5.0,1.0,10.0,,phantom\n\
                   20,real,ookla,5.0,1.0,10.0,,\n";
        let (store, report) = read_csv_store(csv.as_bytes(), IngestMode::Lenient, 1).unwrap();
        assert_eq!(report.quarantined(), 1);
        assert_eq!(store.regions(), vec![RegionId::new("real").unwrap()]);
        assert_eq!(store.datasets(), vec![DatasetId::Ookla]);
        assert_eq!(store.count(&QueryFilter::all().tech("phantom")), 0);
    }

    #[test]
    fn csv_empty_and_header_only_inputs() {
        let (store, report) = read_csv_store(&b""[..], IngestMode::Strict, 4).unwrap();
        assert!(store.is_empty());
        assert_eq!(report.scanned, 0);
        let header =
            "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n";
        let (store, report) = read_csv_store(header.as_bytes(), IngestMode::Strict, 4).unwrap();
        assert!(store.is_empty());
        assert_eq!(report.scanned, 0);
    }

    #[test]
    fn jsonl_matches_serial_reader_including_details() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records()).unwrap();
        buf.extend_from_slice(b"{ not json\n");
        buf.extend_from_slice(&[0xFF, 0xFE, 0x80, b'\n']);
        buf.extend_from_slice(b"\n");
        let mut poisoned = records().remove(0);
        poisoned.loss_pct = Some(150.0);
        buf.extend_from_slice(serde_json::to_string(&poisoned).unwrap().as_bytes());
        buf.extend_from_slice(b"\n");
        let (serial, serial_report) = read_jsonl_mode(buf.as_slice(), IngestMode::Lenient).unwrap();
        for threads in [1, 2, 8] {
            let (store, report) =
                read_jsonl_store(buf.as_slice(), IngestMode::Lenient, threads).unwrap();
            assert_eq!(store_rows(&store), serial, "threads={threads}");
            // JSONL fault details are byte-identical to the serial
            // reader, so whole-report equality holds.
            assert_eq!(report, serial_report, "threads={threads}");
        }
    }

    #[test]
    fn jsonl_strict_mode_matches_serial() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records()).unwrap();
        buf.extend_from_slice(b"{ not json\n");
        for threads in [1, 4] {
            assert!(read_jsonl_store(buf.as_slice(), IngestMode::Strict, threads).is_err());
        }
    }

    #[test]
    fn default_ingest_threads_is_positive() {
        assert!(default_ingest_threads() >= 1);
    }
}
