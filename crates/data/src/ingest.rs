//! Chunked, optionally parallel CSV/JSONL ingest straight into the
//! columnar [`MeasurementStore`].
//!
//! The serial readers ([`crate::csv_io::read_csv_mode`],
//! [`crate::jsonl::read_jsonl_mode`]) deserialize every row into an
//! owned record of `String`s before the store ever sees it. At
//! "millions of users" scale that allocation dominates the pipeline, so
//! this module takes the other path:
//!
//! 1. the calling thread reads the whole byte stream and splits it on
//!    row boundaries (quote-aware for CSV) into up to `threads` chunks;
//! 2. crossbeam-scoped parser workers parse their chunk borrowed in
//!    place — field slices, `u32` symbols from chunk-local interning
//!    tables, no per-row `String` — each emitting a
//!    [`RecordBatch`] plus a per-chunk [`QuarantineReport`];
//! 3. batches are appended to the store *in chunk order*, remapping
//!    chunk-local symbols onto the store's global tables, and the
//!    per-chunk reports merge in the same order.
//!
//! Because chunks are contiguous, ordered slices of the input and both
//! interning sides assign symbols in first-seen order, the resulting
//! store, quarantine counts and exemplars are identical whatever
//! `threads` is — 1, 2 and 8 threads produce byte-equal results, and
//! strict mode still surfaces the first faulty row's error.
//!
//! Accounting matches the serial readers row for row — by construction:
//! [`crate::csv_io::read_csv_mode`] parses every record through this
//! module's [`parse_csv_record`], so CSV fault kinds, line numbers,
//! counts *and detail strings* are byte-identical between the serial
//! and parallel paths, and the JSONL paths mirror each other the same
//! way. Tests assert whole-[`QuarantineReport`] equality for both
//! formats.

use std::borrow::Cow;
use std::io::Read;
use std::ops::Range;
use std::str::FromStr;
use std::time::Instant;

use crate::error::DataError;
use crate::memscan;
use crate::quarantine::{FaultKind, IngestMode, QuarantineReport, Quarantined};
use crate::record::{validate_metrics, TestRecord};
use crate::store::{BatchRow, MeasurementStore, RecordBatch};

/// Default parser-worker count: the machine's available parallelism.
pub fn default_ingest_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// One contiguous slice of the input body handed to a parser worker.
pub(crate) struct Chunk {
    pub(crate) range: Range<usize>,
    /// Non-blank records (CSV) or physical lines (JSONL) before this
    /// chunk — the worker's offset for global line numbering.
    pub(crate) before: usize,
}

/// What one parser worker hands back.
#[derive(Default)]
pub(crate) struct ChunkOutput {
    pub(crate) batch: RecordBatch,
    pub(crate) report: QuarantineReport,
    /// Set only in strict mode: the chunk's first faulty row's error.
    pub(crate) first_error: Option<DataError>,
}

/// Reads CSV (with header) into a columnar store, parsing with up to
/// `threads` workers. Semantics per [`IngestMode`] match
/// [`crate::csv_io::read_csv_mode`] byte for byte: both paths run every
/// record through the same [`parse_csv_record`].
pub fn read_csv_store<R: Read>(
    mut reader: R,
    mode: IngestMode,
    threads: usize,
) -> Result<(MeasurementStore, QuarantineReport), DataError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    // lint: allow(nondet) wall-clock feeds the INGEST_PARSE_NS telemetry counter only
    let started = Instant::now();
    let (header_text, body) = split_csv_header(&data)?;
    let header = HeaderMap::parse(header_text);
    let chunks = split_csv_chunks(body, threads.max(1));
    let outputs = run_workers(&chunks, |chunk| {
        parse_csv_chunk(&body[chunk.range.clone()], chunk.before, &header, mode)
    })?;
    finish(outputs, mode, chunks.len(), started, "csv")
}

/// Reads JSON lines into a columnar store, parsing with up to `threads`
/// workers. Semantics per [`IngestMode`] match
/// [`crate::jsonl::read_jsonl_mode`], including fault detail strings.
pub fn read_jsonl_store<R: Read>(
    mut reader: R,
    mode: IngestMode,
    threads: usize,
) -> Result<(MeasurementStore, QuarantineReport), DataError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    // lint: allow(nondet) wall-clock feeds the INGEST_PARSE_NS telemetry counter only
    let started = Instant::now();
    let chunks = split_line_chunks(&data, threads.max(1));
    let outputs = run_workers(&chunks, |chunk| {
        parse_jsonl_chunk(&data[chunk.range.clone()], chunk.before, mode)
    })?;
    finish(outputs, mode, chunks.len(), started, "jsonl")
}

/// Runs one parser per chunk on scoped threads (inline when there is at
/// most one chunk), returning outputs in chunk order.
pub(crate) fn run_workers<F>(chunks: &[Chunk], parse: F) -> Result<Vec<ChunkOutput>, DataError>
where
    F: Fn(&Chunk) -> ChunkOutput + Sync,
{
    if chunks.len() <= 1 {
        return Ok(chunks.iter().map(|c| parse(c)).collect());
    }
    crossbeam::scope(|s| {
        let parse = &parse;
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| s.spawn(move |_| parse(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .map_err(|_| DataError::SourcePanic("ingest parser worker panicked".into()))
            })
            .collect()
    })
    .map_err(|_| DataError::SourcePanic("ingest worker pool panicked".into()))?
}

/// Merges worker outputs in chunk order: strict mode surfaces the
/// globally first faulty row's error; lenient mode merges reports (so
/// exemplars stay in input order) and appends every batch.
fn finish(
    outputs: Vec<ChunkOutput>,
    mode: IngestMode,
    chunk_count: usize,
    started: Instant,
    label: &str,
) -> Result<(MeasurementStore, QuarantineReport), DataError> {
    let mut store = MeasurementStore::new();
    let mut report = QuarantineReport::new();
    for out in outputs {
        if mode == IngestMode::Strict {
            if let Some(e) = out.first_error {
                return Err(e);
            }
        }
        store.append_batch(&out.batch);
        report.merge(&out.report);
    }
    let registry = iqb_obs::global();
    registry
        .counter(iqb_obs::names::INGEST_CHUNKS)
        .add(chunk_count as u64);
    registry
        .counter(iqb_obs::names::INGEST_PARSE_NS)
        .add(started.elapsed().as_nanos() as u64);
    report.mirror_to(registry, label);
    Ok((store, report))
}

/// Splits raw CSV input into the header line (validated UTF-8) and the
/// body bytes that follow it. Shared by the serial and parallel
/// readers so malformed headers fail identically on both paths.
pub(crate) fn split_csv_header(data: &[u8]) -> Result<(&str, &[u8]), DataError> {
    let header_end = data
        .iter()
        .position(|&b| b == b'\n')
        .map_or(data.len(), |i| i + 1);
    let header_text = std::str::from_utf8(&data[..header_end])
        .map_err(|e| DataError::InvalidRecord(format!("csv header: invalid UTF-8: {e}")))?;
    Ok((header_text, &data[header_end..]))
}

/// Index of the `\n` terminating the CSV record starting at `start`
/// (`data.len()` when the record runs to the end). Quote-aware: a
/// newline inside a quoted field does not terminate the record, and a
/// `"` inside an unquoted field is literal, mirroring the `csv` crate.
///
/// The two states a scan actually dwells in — mid-field (`Unquoted`)
/// and inside quotes (`Quoted`) — advance by [`memscan`] word scans
/// rather than a byte at a time; the single-byte state machine only
/// runs at field boundaries.
pub(crate) fn next_record_end(data: &[u8], start: usize) -> usize {
    enum S {
        FieldStart,
        Unquoted,
        Quoted,
        QuoteEnd,
    }
    let mut state = S::FieldStart;
    let mut i = start;
    while i < data.len() {
        match state {
            S::FieldStart => {
                match data[i] {
                    b'"' => state = S::Quoted,
                    b',' => {}
                    b'\n' => return i,
                    _ => state = S::Unquoted,
                }
                i += 1;
            }
            S::Unquoted => match memscan::find_byte2(&data[i..], b',', b'\n') {
                Some(off) => {
                    i += off;
                    if data[i] == b'\n' {
                        return i;
                    }
                    state = S::FieldStart;
                    i += 1;
                }
                None => return data.len(),
            },
            S::Quoted => match memscan::find_byte(&data[i..], b'"') {
                Some(off) => {
                    state = S::QuoteEnd;
                    i += off + 1;
                }
                None => return data.len(),
            },
            S::QuoteEnd => {
                match data[i] {
                    b'"' => state = S::Quoted,
                    b',' => state = S::FieldStart,
                    b'\n' => return i,
                    _ => state = S::Unquoted,
                }
                i += 1;
            }
        }
    }
    data.len()
}

/// A record the `csv` crate would skip entirely (and never count).
pub(crate) fn is_blank_record(bytes: &[u8]) -> bool {
    bytes.is_empty() || bytes == b"\r"
}

/// Splits the CSV body (header already stripped) into up to `want`
/// chunks cut only at record boundaries, tracking how many non-blank
/// records precede each chunk.
pub(crate) fn split_csv_chunks(data: &[u8], want: usize) -> Vec<Chunk> {
    let mut chunks = Vec::new();
    if data.is_empty() {
        return chunks;
    }
    let mut pos = 0usize;
    let mut records = 0usize;
    let mut chunk_start = 0usize;
    let mut chunk_before = 0usize;
    while pos < data.len() {
        let end = next_record_end(data, pos);
        if !is_blank_record(&data[pos..end]) {
            records += 1;
        }
        let after = (end + 1).min(data.len());
        pos = after;
        let next_target = (chunks.len() + 1) * data.len() / want;
        if after < data.len() && after >= next_target && chunks.len() + 1 < want {
            chunks.push(Chunk {
                range: chunk_start..after,
                before: chunk_before,
            });
            chunk_start = after;
            chunk_before = records;
        }
    }
    chunks.push(Chunk {
        range: chunk_start..data.len(),
        before: chunk_before,
    });
    chunks
}

/// Splits JSONL input into up to `want` chunks cut at line boundaries,
/// tracking how many physical lines precede each chunk.
fn split_line_chunks(data: &[u8], want: usize) -> Vec<Chunk> {
    let mut chunks = Vec::new();
    if data.is_empty() {
        return chunks;
    }
    let mut lines = 0usize;
    let mut chunk_start = 0usize;
    let mut chunk_before = 0usize;
    let mut pos = 0usize;
    while let Some(off) = memscan::find_byte(&data[pos..], b'\n') {
        let i = pos + off;
        pos = i + 1;
        lines += 1;
        let after = i + 1;
        let next_target = (chunks.len() + 1) * data.len() / want;
        if after < data.len() && after >= next_target && chunks.len() + 1 < want {
            chunks.push(Chunk {
                range: chunk_start..after,
                before: chunk_before,
            });
            chunk_start = after;
            chunk_before = lines;
        }
    }
    chunks.push(Chunk {
        range: chunk_start..data.len(),
        before: chunk_before,
    });
    chunks
}

/// Column positions resolved from the CSV header, by name (so reordered
/// columns parse in any order); unknown columns are ignored.
pub(crate) struct HeaderMap {
    timestamp: Option<usize>,
    region: Option<usize>,
    dataset: Option<usize>,
    download: Option<usize>,
    upload: Option<usize>,
    latency: Option<usize>,
    loss: Option<usize>,
    tech: Option<usize>,
    pub(crate) field_count: usize,
}

impl HeaderMap {
    pub(crate) fn parse(line: &str) -> Self {
        let line = line.strip_suffix('\n').unwrap_or(line);
        let line = line.strip_suffix('\r').unwrap_or(line);
        let mut map = HeaderMap {
            timestamp: None,
            region: None,
            dataset: None,
            download: None,
            upload: None,
            latency: None,
            loss: None,
            tech: None,
            field_count: 0,
        };
        if line.is_empty() {
            return map;
        }
        for (i, name) in line.split(',').enumerate() {
            map.field_count = i + 1;
            match name {
                "timestamp" => map.timestamp = Some(i),
                "region" => map.region = Some(i),
                "dataset" => map.dataset = Some(i),
                "download_mbps" => map.download = Some(i),
                "upload_mbps" => map.upload = Some(i),
                "latency_ms" => map.latency = Some(i),
                "loss_pct" => map.loss = Some(i),
                "tech" => map.tech = Some(i),
                _ => {}
            }
        }
        map
    }
}

pub(crate) fn parse_csv_chunk(
    data: &[u8],
    records_before: usize,
    header: &HeaderMap,
    mode: IngestMode,
) -> ChunkOutput {
    let mut out = ChunkOutput::default();
    let mut raw_fields: Vec<Cow<'_, [u8]>> = Vec::with_capacity(header.field_count);
    let mut fields: Vec<Cow<'_, str>> = Vec::with_capacity(header.field_count);
    let mut records = records_before;
    let mut pos = 0usize;
    while pos < data.len() {
        let end = next_record_end(data, pos);
        let record = &data[pos..end];
        pos = (end + 1).min(data.len());
        if is_blank_record(record) {
            continue;
        }
        records += 1;
        out.report.scanned += 1;
        // Line 1 is the header, so data record `k` (1-based, blank
        // lines excluded) sits on "line" `k + 1` — the same numbering
        // the serial reader uses.
        let line = records + 1;
        let parsed = parse_csv_record(
            record,
            header,
            line,
            &mut raw_fields,
            &mut fields,
            |parts| push_batch_row(&mut out.batch, parts),
        );
        match parsed {
            Ok(()) => out.report.kept += 1,
            Err((_, e)) if mode == IngestMode::Strict => {
                out.first_error = Some(e);
                return out;
            }
            Err((kind, e)) => out.report.record(Quarantined {
                source: "csv".into(),
                line: Some(line),
                kind,
                // lint: allow(hot_alloc) quarantine error path, not the kept-record path
                detail: e.to_string(),
            }),
        }
    }
    out
}

/// One fully validated CSV row, borrowed from the record's fields, as
/// handed to a reader's sink. The parallel path interns these into a
/// [`RecordBatch`]; the serial path builds an owned [`TestRecord`].
pub(crate) struct CsvRowParts<'r> {
    pub(crate) timestamp: u64,
    pub(crate) region: &'r str,
    pub(crate) dataset: &'r str,
    pub(crate) download_mbps: f64,
    pub(crate) upload_mbps: f64,
    pub(crate) latency_ms: f64,
    pub(crate) loss_pct: Option<f64>,
    pub(crate) tech: Option<&'r str>,
}

/// Parses and validates one CSV record, handing the borrowed row to
/// `sink` only once every check has passed. Both the serial and the
/// chunked reader run on this routine, which pins the shared fault
/// precedence: field count (`Parse`) before per-field UTF-8
/// (`Encoding`) before numeric parses (`Parse`) before region
/// (`InvalidRegion`) before dataset (`UnknownDataset`) before metric
/// domains (`InvalidValue`).
pub(crate) fn parse_csv_record<'a>(
    record: &'a [u8],
    header: &HeaderMap,
    line: usize,
    raw_fields: &mut Vec<Cow<'a, [u8]>>,
    fields: &mut Vec<Cow<'a, str>>,
    sink: impl FnOnce(CsvRowParts<'_>) -> Result<(), (FaultKind, DataError)>,
) -> Result<(), (FaultKind, DataError)> {
    let record = record.strip_suffix(b"\r").unwrap_or(record);
    split_csv_fields(record, raw_fields);
    if raw_fields.len() != header.field_count {
        return Err((
            FaultKind::Parse,
            DataError::InvalidRecord(format!(
                "row {line}: expected {} fields, found {}",
                header.field_count,
                raw_fields.len()
            )),
        ));
    }
    fields.clear();
    for (i, raw) in raw_fields.drain(..).enumerate() {
        fields.push(match raw {
            Cow::Borrowed(bytes) => {
                Cow::Borrowed(std::str::from_utf8(bytes).map_err(|e| utf8_fault(line, i, e))?)
            }
            Cow::Owned(bytes) => Cow::Owned(
                String::from_utf8(bytes).map_err(|e| utf8_fault(line, i, e.utf8_error()))?,
            ),
        });
    }
    let timestamp: u64 = parse_field(fields, header.timestamp, "timestamp", line)?;
    let download_mbps: f64 = parse_field(fields, header.download, "download_mbps", line)?;
    let upload_mbps: f64 = parse_field(fields, header.upload, "upload_mbps", line)?;
    let latency_ms: f64 = parse_field(fields, header.latency, "latency_ms", line)?;
    let loss_pct: Option<f64> = match optional_field(fields, header.loss) {
        Some(raw) if !raw.is_empty() => Some(parse_value(raw, "loss_pct", line)?),
        _ => None,
    };
    let region = required_field(fields, header.region, "region", line)?;
    if region.trim().is_empty() {
        // The only failure mode of `RegionId::new`, reproduced here so
        // a rejected region is never interned.
        return Err((
            FaultKind::InvalidRegion,
            DataError::InvalidRegion("region id must be non-empty".into()),
        ));
    }
    let dataset = required_field(fields, header.dataset, "dataset", line)?;
    if dataset.trim().is_empty() {
        // The only failure mode of `parse_dataset_token`, likewise.
        return Err((
            FaultKind::UnknownDataset,
            DataError::InvalidRecord("empty dataset token".into()),
        ));
    }
    validate_metrics(download_mbps, upload_mbps, latency_ms, loss_pct)
        .map_err(|e| (FaultKind::classify(&e), e))?;
    let tech = match optional_field(fields, header.tech) {
        Some(t) if !t.is_empty() => Some(t),
        _ => None,
    };
    sink(CsvRowParts {
        timestamp,
        region,
        dataset,
        download_mbps,
        upload_mbps,
        latency_ms,
        loss_pct,
        tech,
    })
}

fn utf8_fault(line: usize, idx: usize, e: std::str::Utf8Error) -> (FaultKind, DataError) {
    (
        FaultKind::Encoding,
        DataError::InvalidRecord(format!("row {line}: field {}: invalid UTF-8: {e}", idx + 1)),
    )
}

/// The chunked reader's sink: interns symbols and appends the row to
/// the chunk batch. Interning happens only after every check in
/// [`parse_csv_record`] has passed, so quarantined rows never plant
/// symbols in the batch tables.
fn push_batch_row(
    batch: &mut RecordBatch,
    parts: CsvRowParts<'_>,
) -> Result<(), (FaultKind, DataError)> {
    let region = batch
        .intern_region(parts.region)
        .map_err(|e| (FaultKind::classify(&e), e))?;
    let dataset = batch
        .intern_dataset_token(parts.dataset)
        .map_err(|e| (FaultKind::classify(&e), e))?;
    let tech = parts.tech.map(|t| batch.intern_tech(t));
    batch.push_row(BatchRow {
        timestamp: parts.timestamp,
        region,
        dataset,
        download_mbps: parts.download_mbps,
        upload_mbps: parts.upload_mbps,
        latency_ms: parts.latency_ms,
        loss_pct: parts.loss_pct,
        tech,
    });
    Ok(())
}

/// Splits one CSV record into raw byte fields in place. Unquoted fields
/// and quoted fields without escapes borrow the record; only a field
/// with doubled-quote escapes allocates. Splitting happens on bytes so
/// the field-count check can precede UTF-8 validation, matching the
/// byte-oriented `csv` crate's precedence.
fn split_csv_fields<'a>(record: &'a [u8], out: &mut Vec<Cow<'a, [u8]>>) {
    out.clear();
    let mut i = 0usize;
    loop {
        if i < record.len() && record[i] == b'"' {
            let start = i + 1;
            let mut j = start;
            let mut escaped = false;
            let mut closed = false;
            // Word-scan to each `"`, then resolve doubling byte-wise.
            while let Some(off) = memscan::find_byte(&record[j..], b'"') {
                j += off;
                if j + 1 < record.len() && record[j + 1] == b'"' {
                    escaped = true;
                    j += 2;
                    continue;
                }
                closed = true;
                break;
            }
            // An unterminated quote runs to the end of the record,
            // exactly like the byte-wise loop this replaced.
            let j = if closed { j } else { record.len() };
            let inner = &record[start..j];
            out.push(if escaped {
                Cow::Owned(unescape_quotes(inner))
            } else {
                Cow::Borrowed(inner)
            });
            i = j + 1;
            if i < record.len() {
                i += memscan::find_byte(&record[i..], b',').unwrap_or(record.len() - i);
            }
        } else {
            let start = i;
            i += memscan::find_byte(&record[i..], b',').unwrap_or(record.len() - i);
            out.push(Cow::Borrowed(&record[start..i]));
        }
        if i >= record.len() {
            break;
        }
        i += 1;
    }
}

/// Collapses doubled quotes (`""` -> `"`) in a quoted field's interior.
fn unescape_quotes(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    while i < bytes.len() {
        out.push(bytes[i]);
        i += if bytes[i] == b'"' && i + 1 < bytes.len() && bytes[i + 1] == b'"' {
            2
        } else {
            1
        };
    }
    out
}

fn required_field<'f>(
    fields: &'f [Cow<'f, str>],
    idx: Option<usize>,
    col: &str,
    line: usize,
) -> Result<&'f str, (FaultKind, DataError)> {
    match idx {
        Some(i) => Ok(fields[i].as_ref()),
        None => Err((
            FaultKind::Parse,
            DataError::InvalidRecord(format!("row {line}: missing column `{col}`")),
        )),
    }
}

/// Optional columns (`loss_pct`, `tech`) may be absent from the header
/// entirely; that reads as "no value", like the serde reader.
fn optional_field<'f>(fields: &'f [Cow<'f, str>], idx: Option<usize>) -> Option<&'f str> {
    idx.map(|i| fields[i].as_ref())
}

fn parse_value<T: FromStr>(raw: &str, col: &str, line: usize) -> Result<T, (FaultKind, DataError)>
where
    T::Err: std::fmt::Display,
{
    raw.parse::<T>().map_err(|e| {
        (
            FaultKind::Parse,
            DataError::InvalidRecord(format!("row {line}: column `{col}`: {e} (value `{raw}`)")),
        )
    })
}

fn parse_field<T: FromStr>(
    fields: &[Cow<'_, str>],
    idx: Option<usize>,
    col: &str,
    line: usize,
) -> Result<T, (FaultKind, DataError)>
where
    T::Err: std::fmt::Display,
{
    parse_value(required_field(fields, idx, col, line)?, col, line)
}

/// Parses one JSONL chunk, mirroring the serial reader line for line:
/// same UTF-8/parse/validation classification, same global line
/// numbers, same detail strings, blank lines skipped without counting.
fn parse_jsonl_chunk(data: &[u8], lines_before: usize, mode: IngestMode) -> ChunkOutput {
    let mut out = ChunkOutput::default();
    let mut line_no = lines_before;
    let mut pos = 0usize;
    while pos < data.len() {
        // Keep the trailing newline in the checked slice, exactly like
        // the serial reader's `read_until`, so UTF-8 error details match
        // byte for byte.
        let (raw, next) = match data[pos..].iter().position(|&b| b == b'\n') {
            Some(off) => (&data[pos..pos + off + 1], pos + off + 1),
            None => (&data[pos..], data.len()),
        };
        pos = next;
        line_no += 1;
        let parsed: Result<TestRecord, (FaultKind, DataError)> = match std::str::from_utf8(raw) {
            Err(e) => Err((
                FaultKind::Encoding,
                // lint: allow(hot_alloc) encoding error path, not the kept-record path
                DataError::InvalidRecord(format!("line {line_no}: invalid UTF-8: {e}")),
            )),
            Ok(text) if text.trim().is_empty() => continue,
            Ok(text) => {
                match serde_json::from_str::<TestRecord>(text.trim_end_matches(['\n', '\r'])) {
                    Err(e) => Err((
                        FaultKind::Parse,
                        // lint: allow(hot_alloc) parse error path, not the kept-record path
                        DataError::InvalidRecord(format!("line {line_no}: {e}")),
                    )),
                    Ok(record) => match record.validate() {
                        Ok(()) => Ok(record),
                        Err(e) => Err((FaultKind::classify(&e), e)),
                    },
                }
            }
        };
        out.report.scanned += 1;
        match parsed {
            Ok(record) => {
                out.report.kept += 1;
                out.batch.push_record(&record);
            }
            Err((_, e)) if mode == IngestMode::Strict => {
                out.first_error = Some(e);
                return out;
            }
            Err((kind, e)) => out.report.record(Quarantined {
                source: "jsonl".into(),
                line: Some(line_no),
                kind,
                // lint: allow(hot_alloc) quarantine error path, not the kept-record path
                detail: e.to_string(),
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv_io::{read_csv_mode, write_csv};
    use crate::jsonl::{read_jsonl_mode, write_jsonl};
    use crate::record::RegionId;
    use crate::store::QueryFilter;
    use iqb_core::dataset::DatasetId;

    fn records() -> Vec<TestRecord> {
        let mut out = Vec::new();
        for i in 0..40u64 {
            let region = ["east", "west", "north"][(i % 3) as usize];
            let dataset = match i % 4 {
                0 => DatasetId::Ndt,
                1 => DatasetId::Ookla,
                2 => DatasetId::Cloudflare,
                _ => DatasetId::Custom("ripe-atlas".into()),
            };
            out.push(TestRecord {
                timestamp: 100 + i,
                region: RegionId::new(region).unwrap(),
                dataset,
                download_mbps: 50.0 + i as f64,
                upload_mbps: 10.0 + i as f64,
                latency_ms: 20.0,
                loss_pct: if i % 5 == 0 { None } else { Some(0.2) },
                tech: if i % 2 == 0 {
                    Some("cable".into())
                } else {
                    None
                },
            });
        }
        out
    }

    fn store_rows(store: &MeasurementStore) -> Vec<TestRecord> {
        store
            .query(&QueryFilter::all())
            .map(|r| r.to_record())
            .collect()
    }

    #[test]
    fn csv_clean_corpus_matches_serial_reader() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &records()).unwrap();
        let (serial, serial_report) = read_csv_mode(buf.as_slice(), IngestMode::Lenient).unwrap();
        for threads in [1, 3, 8] {
            let (store, report) =
                read_csv_store(buf.as_slice(), IngestMode::Lenient, threads).unwrap();
            assert_eq!(store_rows(&store), serial, "threads={threads}");
            assert_eq!(report, serial_report, "threads={threads}");
        }
    }

    #[test]
    fn csv_lenient_faults_match_serial_reader_exactly() {
        // One row per fault family: negative metric (`InvalidValue`),
        // empty region (`InvalidRegion`), unparsable numeric (`Parse`),
        // empty dataset (`UnknownDataset`), wrong field count
        // (`Parse`), invalid UTF-8 inside one field (`Encoding`) and a
        // whole line of garbage bytes (`Parse`: the field-count check
        // trips before any UTF-8 decoding, like the `csv` crate).
        let mut csv: Vec<u8> = Vec::new();
        csv.extend_from_slice(
            b"timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n",
        );
        csv.extend_from_slice(b"10,metro,ndt,5.0,1.0,10.0,,\n");
        csv.extend_from_slice(b"20,metro,ndt,-5.0,1.0,10.0,,\n");
        csv.extend_from_slice(b"30,,ndt,5.0,1.0,10.0,,\n");
        csv.extend_from_slice(b"40,metro,ndt,not-a-number,1.0,10.0,,\n");
        csv.extend_from_slice(b"50,metro,,5.0,1.0,10.0,,\n");
        csv.extend_from_slice(b"60,metro,ndt,5.0,1.0\n");
        csv.extend_from_slice(b"70,metro,ndt,5.0,1.0,10.0,,\xFF\xFE\n");
        csv.extend_from_slice(b"\xFF\xFE\x80garbage\n");
        csv.extend_from_slice(b"80,metro,ookla,9.0,2.0,12.0,,\n");
        let (serial, serial_report) = read_csv_mode(csv.as_slice(), IngestMode::Lenient).unwrap();
        assert_eq!(serial.len(), 2);
        assert_eq!(serial_report.scanned, 9);
        assert_eq!(serial_report.count(FaultKind::Parse), 3);
        assert_eq!(serial_report.count(FaultKind::Encoding), 1);
        for threads in [1, 2, 8] {
            let (store, report) =
                read_csv_store(csv.as_slice(), IngestMode::Lenient, threads).unwrap();
            assert_eq!(store.len(), 2, "threads={threads}");
            // Serial and parallel share one record parser, so the
            // whole report — counts, exemplar order, fault kinds, line
            // numbers and detail strings — matches byte for byte.
            assert_eq!(report, serial_report, "threads={threads}");
        }
    }

    #[test]
    fn csv_thread_counts_are_deterministic() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &records()).unwrap();
        // Poison a few rows so quarantine merging is exercised too.
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("9000,,ndt,1.0,1.0,1.0,,\n");
        text.push_str("9001,late,ndt,-3.0,1.0,1.0,,\n");
        let (store1, report1) = read_csv_store(text.as_bytes(), IngestMode::Lenient, 1).unwrap();
        for threads in [2, 8] {
            let (store, report) =
                read_csv_store(text.as_bytes(), IngestMode::Lenient, threads).unwrap();
            assert_eq!(store, store1, "threads={threads}");
            assert_eq!(store.regions(), store1.regions());
            assert_eq!(store.datasets(), store1.datasets());
            assert_eq!(report, report1, "threads={threads}");
        }
    }

    #[test]
    fn csv_strict_mode_surfaces_first_error() {
        let csv = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n\
                   10,metro,ndt,5.0,1.0,10.0,,\n\
                   20,metro,ndt,-5.0,1.0,10.0,,\n";
        for threads in [1, 4] {
            assert!(read_csv_store(csv.as_bytes(), IngestMode::Strict, threads).is_err());
        }
        let clean = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n\
                     10,metro,ndt,5.0,1.0,10.0,,\n";
        let (store, report) = read_csv_store(clean.as_bytes(), IngestMode::Strict, 4).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(report.scanned, 1);
        assert_eq!(report.kept, 1);
    }

    #[test]
    fn csv_quoted_fields_and_embedded_newlines() {
        let original = vec![TestRecord {
            timestamp: 1,
            region: RegionId::new("metro, central\nannex").unwrap(),
            dataset: DatasetId::Custom("probes \"beta\"".into()),
            download_mbps: 10.0,
            upload_mbps: 5.0,
            latency_ms: 30.0,
            loss_pct: None,
            tech: Some("fiber".into()),
        }];
        let mut buf = Vec::new();
        write_csv(&mut buf, &original).unwrap();
        for threads in [1, 4] {
            let (store, report) =
                read_csv_store(buf.as_slice(), IngestMode::Strict, threads).unwrap();
            assert_eq!(store_rows(&store), original, "threads={threads}");
            assert_eq!(report.kept, 1);
        }
    }

    #[test]
    fn csv_quarantined_rows_never_plant_symbols() {
        let csv = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n\
                   10,ghost,ndt,-5.0,1.0,10.0,,phantom\n\
                   20,real,ookla,5.0,1.0,10.0,,\n";
        let (store, report) = read_csv_store(csv.as_bytes(), IngestMode::Lenient, 1).unwrap();
        assert_eq!(report.quarantined(), 1);
        assert_eq!(store.regions(), vec![RegionId::new("real").unwrap()]);
        assert_eq!(store.datasets(), vec![DatasetId::Ookla]);
        assert_eq!(store.count(&QueryFilter::all().tech("phantom")), 0);
    }

    #[test]
    fn csv_empty_and_header_only_inputs() {
        let (store, report) = read_csv_store(&b""[..], IngestMode::Strict, 4).unwrap();
        assert!(store.is_empty());
        assert_eq!(report.scanned, 0);
        let header =
            "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n";
        let (store, report) = read_csv_store(header.as_bytes(), IngestMode::Strict, 4).unwrap();
        assert!(store.is_empty());
        assert_eq!(report.scanned, 0);
    }

    #[test]
    fn jsonl_matches_serial_reader_including_details() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records()).unwrap();
        buf.extend_from_slice(b"{ not json\n");
        buf.extend_from_slice(&[0xFF, 0xFE, 0x80, b'\n']);
        buf.extend_from_slice(b"\n");
        let mut poisoned = records().remove(0);
        poisoned.loss_pct = Some(150.0);
        buf.extend_from_slice(serde_json::to_string(&poisoned).unwrap().as_bytes());
        buf.extend_from_slice(b"\n");
        let (serial, serial_report) = read_jsonl_mode(buf.as_slice(), IngestMode::Lenient).unwrap();
        for threads in [1, 2, 8] {
            let (store, report) =
                read_jsonl_store(buf.as_slice(), IngestMode::Lenient, threads).unwrap();
            assert_eq!(store_rows(&store), serial, "threads={threads}");
            // JSONL fault details are byte-identical to the serial
            // reader, so whole-report equality holds.
            assert_eq!(report, serial_report, "threads={threads}");
        }
    }

    #[test]
    fn jsonl_strict_mode_matches_serial() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &records()).unwrap();
        buf.extend_from_slice(b"{ not json\n");
        for threads in [1, 4] {
            assert!(read_jsonl_store(buf.as_slice(), IngestMode::Strict, threads).is_err());
        }
    }

    #[test]
    fn default_ingest_threads_is_positive() {
        assert!(default_ingest_threads() >= 1);
    }
}
