//! Streaming, memory-bounded CSV ingest.
//!
//! [`read_csv_store`](crate::ingest::read_csv_store) materializes the
//! whole input and the whole [`MeasurementStore`](crate::store::MeasurementStore)
//! — fine at bench scale, hopeless at the paper's "millions of users"
//! scale. This module keeps the same parser, chunk splitter and worker
//! pool but bounds memory by *segmenting*: it reads a fixed-size window
//! of the input, parses the complete-record prefix into
//! [`RecordBatch`]es exactly like the materializing reader, hands each
//! batch to a caller-supplied sink, and then **drops** it before the
//! next window is read. Peak memory is therefore
//! `O(segment_bytes + batch)` — independent of the record count —
//! provided the sink itself is bounded (the sketch aggregation backends
//! are; the exact backend is not, see DESIGN §10).
//!
//! The workspace forbids `unsafe` in every crate and bakes in no mmap
//! dependency, so "mmap'd input" is deliberately approximated by this
//! segmented `Read` loop: the kernel's readahead gives sequential file
//! I/O the same streaming behaviour an explicit map would, without a
//! page-cache-lifetime footgun or an unsafe block.
//!
//! Determinism contract: segment boundaries are cut only at record
//! boundaries (a record split by the window carries over to the next
//! segment), chunk splitting inside a segment reuses
//! [`split_csv_chunks`](crate::ingest), batches are delivered in input
//! order, and global line numbering threads through segments — so
//! quarantine reports, exemplars and (for order-insensitive sinks)
//! scores are byte-identical to the materialized path at any
//! `segment_bytes` and any thread count.

use std::io::Read;
use std::time::Instant;

use crate::error::DataError;
use crate::ingest::{
    is_blank_record, next_record_end, parse_csv_chunk, run_workers, split_csv_chunks,
    split_csv_header, HeaderMap,
};
use crate::quarantine::{IngestMode, QuarantineReport};
use crate::store::RecordBatch;

/// Default segment window: 8 MiB of input bytes per read cycle.
pub const DEFAULT_SEGMENT_BYTES: usize = 8 * 1024 * 1024;

/// Smallest segment the driver will honour. Below this the per-segment
/// bookkeeping dominates and a pathological `segment_bytes: 1` would
/// degrade to byte-at-a-time reads.
pub const MIN_SEGMENT_BYTES: usize = 4 * 1024;

/// Knobs for one streaming ingest run.
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Strict (first fault aborts) or lenient (faults quarantine).
    pub mode: IngestMode,
    /// Parser workers per segment, exactly like the materializing
    /// reader's `threads`.
    pub threads: usize,
    /// Input window size in bytes; clamped up to
    /// [`MIN_SEGMENT_BYTES`]. Peak ingest memory is proportional to
    /// this, not to the input size.
    pub segment_bytes: usize,
}

impl StreamOptions {
    /// Options with the default segment window.
    pub fn new(mode: IngestMode, threads: usize) -> Self {
        Self {
            mode,
            threads,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }

    /// Overrides the segment window.
    pub fn with_segment_bytes(mut self, segment_bytes: usize) -> Self {
        self.segment_bytes = segment_bytes;
        self
    }
}

impl Default for StreamOptions {
    fn default() -> Self {
        Self::new(IngestMode::Strict, 1)
    }
}

/// What a completed streaming run observed.
#[derive(Debug, Clone, Default)]
pub struct StreamSummary {
    /// Input windows read (including the final partial one).
    pub segments: usize,
    /// Non-empty [`RecordBatch`]es delivered to the sink.
    pub batches: usize,
    /// Quarantine accounting, merged across segments in input order —
    /// byte-identical to the materialized reader's report.
    pub report: QuarantineReport,
}

impl StreamSummary {
    /// Rows that passed validation and reached the sink.
    pub fn records(&self) -> u64 {
        self.report.kept
    }
}

/// Streams CSV (with header) through `on_batch` in fixed-size segments
/// without materializing a store.
///
/// Each parsed [`RecordBatch`] is borrowed by the sink and dropped when
/// the call returns; a sink that needs retention must copy (at which
/// point it has rebuilt the materialized path and should use
/// [`read_csv_store`](crate::ingest::read_csv_store) instead).
///
/// Strict mode surfaces the globally first faulty row's error, but —
/// unlike the materializing reader, which fails before any row is
/// visible — batches *preceding* the fault have already been delivered.
/// Sinks that must not observe partial strict input should stage into a
/// scratch accumulator and commit on `Ok` (the pipeline's streaming
/// scorer does exactly this).
pub fn stream_csv<R: Read, F>(
    mut reader: R,
    options: &StreamOptions,
    mut on_batch: F,
) -> Result<StreamSummary, DataError>
where
    F: FnMut(&RecordBatch) -> Result<(), DataError>,
{
    // lint: allow(nondet) wall-clock feeds the INGEST_PARSE_NS telemetry counter only
    let started = Instant::now();
    let segment = options.segment_bytes.max(MIN_SEGMENT_BYTES);
    let threads = options.threads.max(1);
    let mut buffer: Vec<u8> = Vec::with_capacity(segment);
    let mut eof = false;

    // Fill until the header's terminating newline is in view (or the
    // input ends), then strip it from the buffer.
    while memscan_header_missing(&buffer) && !eof {
        eof = read_segment(&mut reader, &mut buffer, segment)?;
    }
    let (header_text, _) = split_csv_header(&buffer)?;
    let header = HeaderMap::parse(header_text);
    let header_len = header_text.len();
    buffer.drain(..header_len);

    let mut summary = StreamSummary::default();
    let mut chunk_total = 0usize;
    // Non-blank records fully parsed in earlier segments: the offset
    // that keeps global line numbers identical to the one-shot reader.
    let mut records_before = 0usize;
    loop {
        while buffer.len() < segment && !eof {
            eof = read_segment(&mut reader, &mut buffer, segment)?;
        }
        if buffer.is_empty() {
            break;
        }
        let (prefix_end, prefix_records) = complete_prefix(&buffer, eof);
        if prefix_end == 0 {
            // One record larger than the window (a quoted field spanning
            // segments): widen by another segment and retry. Memory is
            // then bounded by the longest single record, the floor any
            // record-at-a-time reader has.
            eof = read_segment(&mut reader, &mut buffer, segment)?;
            continue;
        }
        summary.segments += 1;
        let body = &buffer[..prefix_end];
        let chunks = split_csv_chunks(body, threads);
        chunk_total += chunks.len();
        let outputs = run_workers(&chunks, |chunk| {
            parse_csv_chunk(
                // lint: allow(hot_alloc) Range<usize> clone is two word copies, no heap allocation
                &body[chunk.range.clone()],
                records_before + chunk.before,
                &header,
                options.mode,
            )
        })?;
        for out in outputs {
            if options.mode == IngestMode::Strict {
                if let Some(e) = out.first_error {
                    return Err(e);
                }
            }
            summary.report.merge(&out.report);
            if !out.batch.is_empty() {
                summary.batches += 1;
                on_batch(&out.batch)?;
            }
            // `out.batch` drops here — the whole point of streaming.
        }
        records_before += prefix_records;
        buffer.drain(..prefix_end);
        if eof && buffer.is_empty() {
            break;
        }
    }

    let registry = iqb_obs::global();
    registry
        .counter(iqb_obs::names::INGEST_STREAM_SEGMENTS)
        .add(summary.segments as u64);
    registry
        .counter(iqb_obs::names::INGEST_STREAM_BATCHES)
        .add(summary.batches as u64);
    registry
        .counter(iqb_obs::names::INGEST_CHUNKS)
        .add(chunk_total as u64);
    registry
        .counter(iqb_obs::names::INGEST_PARSE_NS)
        .add(started.elapsed().as_nanos() as u64);
    summary.report.mirror_to(registry, "csv");
    Ok(summary)
}

/// Streams a CSV file by path. This is the "mmap" entry point: a plain
/// sequential [`File`](std::fs::File) read through the segmented
/// driver, which under `#![forbid(unsafe_code)]` is the closest
/// bounded-memory equivalent (kernel readahead supplies the paging).
pub fn stream_csv_path<F>(
    path: &std::path::Path,
    options: &StreamOptions,
    on_batch: F,
) -> Result<StreamSummary, DataError>
where
    F: FnMut(&RecordBatch) -> Result<(), DataError>,
{
    let file = std::fs::File::open(path)?;
    stream_csv(std::io::BufReader::new(file), options, on_batch)
}

/// Whether the buffer still lacks the header's terminating newline.
fn memscan_header_missing(buffer: &[u8]) -> bool {
    crate::memscan::find_byte(buffer, b'\n').is_none()
}

/// Appends up to `want` bytes from the reader; returns `true` at end of
/// input. Short reads are retried so one call corresponds to one full
/// segment except at EOF.
fn read_segment<R: Read>(
    reader: &mut R,
    buffer: &mut Vec<u8>,
    want: usize,
) -> Result<bool, DataError> {
    let start = buffer.len();
    buffer.resize(start + want, 0);
    let mut filled = 0usize;
    while filled < want {
        let n = reader.read(&mut buffer[start + filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    buffer.truncate(start + filled);
    Ok(filled < want)
}

/// Length of the complete-record prefix of `data` and the number of
/// non-blank records inside it. A record whose terminator lies beyond
/// the buffer is *not* part of the prefix unless `eof` says the input
/// has no more bytes (final record without a trailing newline).
fn complete_prefix(data: &[u8], eof: bool) -> (usize, usize) {
    let mut pos = 0usize;
    let mut records = 0usize;
    while pos < data.len() {
        let end = next_record_end(data, pos);
        if end == data.len() && !eof {
            break;
        }
        if !is_blank_record(&data[pos..end]) {
            records += 1;
        }
        pos = (end + 1).min(data.len());
    }
    (pos, records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::read_csv_store;
    use crate::store::MeasurementStore;

    const HEADER: &str = "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech";

    fn corpus(rows: usize) -> Vec<u8> {
        let mut text = format!("{HEADER}\n");
        for i in 0..rows {
            let region = ["east", "west", "north"][i % 3];
            let dataset = ["ndt", "ookla"][i % 2];
            text.push_str(&format!(
                "{},{region},{dataset},{}.5,{}.25,{}.0,0.{},cable\n",
                1_000 + i,
                50 + i % 40,
                10 + i % 9,
                15 + i % 30,
                i % 10,
            ));
        }
        text.into_bytes()
    }

    /// Streams into a store via `append_batch` and compares against the
    /// one-shot reader — store and report must both match exactly.
    fn assert_stream_matches(data: &[u8], options: &StreamOptions) {
        let (expected_store, expected_report) =
            read_csv_store(data, options.mode, options.threads).expect("one-shot parse");
        let mut streamed = MeasurementStore::new();
        let summary = stream_csv(data, options, |batch| {
            streamed.append_batch(batch);
            Ok(())
        })
        .expect("streamed parse");
        assert_eq!(streamed, expected_store);
        assert_eq!(summary.report, expected_report);
        assert_eq!(summary.records(), expected_report.kept);
    }

    #[test]
    fn stream_equals_one_shot_across_segment_sizes_and_threads() {
        let data = corpus(300);
        for segment_bytes in [MIN_SEGMENT_BYTES, 5_000, DEFAULT_SEGMENT_BYTES] {
            for threads in [1usize, 2, 8] {
                let options = StreamOptions::new(IngestMode::Strict, threads)
                    .with_segment_bytes(segment_bytes);
                assert_stream_matches(&data, &options);
            }
        }
    }

    #[test]
    fn lenient_stream_reports_match_one_shot_with_faults() {
        let mut data = corpus(120);
        // Poison three rows spread across segments: bad field count,
        // bad number, bad region.
        let text = String::from_utf8(data.clone()).expect("corpus is ASCII");
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[10] = "only,three,fields".into();
        // Row 60 (i=59) carries the `ookla` token; prefixing its
        // download field breaks the numeric parse.
        lines[60] = lines[60].replace(",ookla,", ",ookla,NaNomatic-");
        // Row 100 (i=99) is an `east` row; a whitespace region trips the
        // InvalidRegion fault.
        lines[100] = lines[100].replacen("east", " ", 1);
        data = format!("{}\n", lines.join("\n")).into_bytes();
        for segment_bytes in [MIN_SEGMENT_BYTES, DEFAULT_SEGMENT_BYTES] {
            let options =
                StreamOptions::new(IngestMode::Lenient, 2).with_segment_bytes(segment_bytes);
            assert_stream_matches(&data, &options);
        }
    }

    #[test]
    fn strict_stream_surfaces_first_error() {
        let mut data = corpus(50);
        data.extend_from_slice(b"9,east,ndt,not-a-number,1.0,2.0,0.1,cable\n");
        let options = StreamOptions::new(IngestMode::Strict, 4).with_segment_bytes(MIN_SEGMENT_BYTES);
        let result = stream_csv(&data[..], &options, |_| Ok(()));
        assert!(result.is_err(), "poisoned strict stream must fail");
        let one_shot_err = read_csv_store(&data[..], IngestMode::Strict, 4)
            .err()
            .expect("one-shot strict fails too");
        assert_eq!(
            result.err().map(|e| e.to_string()),
            Some(one_shot_err.to_string()),
            "same first error as the materialized path"
        );
    }

    #[test]
    fn record_larger_than_segment_window_is_carried() {
        // A quoted tech field much larger than the minimum window forces
        // the widen-and-retry path.
        let big = "x".repeat(3 * MIN_SEGMENT_BYTES);
        let data = format!(
            "{HEADER}\n1,east,ndt,10.0,5.0,20.0,0.1,\"{big}\"\n2,west,ookla,11.0,6.0,21.0,,cable\n"
        )
        .into_bytes();
        let options = StreamOptions::new(IngestMode::Strict, 2).with_segment_bytes(1);
        assert_stream_matches(&data, &options);
    }

    #[test]
    fn batches_are_delivered_and_bounded() {
        let data = corpus(400);
        let options = StreamOptions::new(IngestMode::Strict, 2).with_segment_bytes(MIN_SEGMENT_BYTES);
        let mut max_batch = 0usize;
        let mut delivered = 0usize;
        let summary = stream_csv(&data[..], &options, |batch| {
            max_batch = max_batch.max(batch.len());
            delivered += batch.len();
            Ok(())
        })
        .expect("clean corpus streams");
        assert_eq!(delivered as u64, summary.records());
        assert!(summary.segments > 1, "corpus must span multiple segments");
        assert!(summary.batches >= summary.segments);
        assert!(
            max_batch < 400,
            "no batch may hold the whole corpus (got {max_batch})"
        );
    }

    #[test]
    fn empty_input_and_header_only_inputs_stream_cleanly() {
        for input in [&b""[..], b"timestamp,region\n", HEADER.as_bytes()] {
            let summary = stream_csv(input, &StreamOptions::default(), |_| {
                panic!("no batch expected")
            })
            .expect("degenerate inputs stream");
            assert_eq!(summary.records(), 0);
            assert_eq!(summary.batches, 0);
        }
    }

    #[test]
    fn sink_error_aborts_the_stream() {
        let data = corpus(100);
        let options = StreamOptions::new(IngestMode::Strict, 1).with_segment_bytes(MIN_SEGMENT_BYTES);
        let result = stream_csv(&data[..], &options, |_| {
            Err(DataError::InvalidRecord("sink full".into()))
        });
        assert!(matches!(result, Err(DataError::InvalidRecord(_))));
    }
}
