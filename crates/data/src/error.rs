//! Error type for the dataset layer.

use std::fmt;

use iqb_core::error::CoreError;
use iqb_stats::StatsError;

/// Errors produced by the dataset layer.
#[derive(Debug)]
pub enum DataError {
    /// A record failed validation.
    InvalidRecord(String),
    /// A region identifier was empty or malformed.
    InvalidRegion(String),
    /// An aggregation parameter was invalid.
    InvalidAggregation(String),
    /// A query matched no records where data was required.
    NoData {
        /// Human-readable description of what was queried.
        context: String,
    },
    /// Error bubbled up from the statistics substrate.
    Stats(StatsError),
    /// Error bubbled up from the core framework.
    Core(CoreError),
    /// I/O failure while reading or writing dataset files.
    Io(std::io::Error),
    /// CSV parse/serialize failure.
    Csv(csv::Error),
    /// JSON parse/serialize failure.
    Json(serde_json::Error),
    /// A data source panicked; the payload is the captured panic message.
    /// Produced at the pipeline's isolation boundary, where panics are
    /// caught and demoted to errors so one source cannot kill a run.
    SourcePanic(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidRecord(why) => write!(f, "invalid measurement record: {why}"),
            DataError::InvalidRegion(why) => write!(f, "invalid region id: {why}"),
            DataError::InvalidAggregation(why) => write!(f, "invalid aggregation spec: {why}"),
            DataError::NoData { context } => write!(f, "no data: {context}"),
            DataError::Stats(e) => write!(f, "statistics error: {e}"),
            DataError::Core(e) => write!(f, "core error: {e}"),
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::Csv(e) => write!(f, "CSV error: {e}"),
            DataError::Json(e) => write!(f, "JSON error: {e}"),
            DataError::SourcePanic(msg) => write!(f, "data source panicked: {msg}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Stats(e) => Some(e),
            DataError::Core(e) => Some(e),
            DataError::Io(e) => Some(e),
            DataError::Csv(e) => Some(e),
            DataError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for DataError {
    fn from(e: StatsError) -> Self {
        DataError::Stats(e)
    }
}

impl From<CoreError> for DataError {
    fn from(e: CoreError) -> Self {
        DataError::Core(e)
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<csv::Error> for DataError {
    fn from(e: csv::Error) -> Self {
        DataError::Csv(e)
    }
}

impl From<serde_json::Error> for DataError {
    fn from(e: serde_json::Error) -> Self {
        DataError::Json(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = DataError::from(StatsError::EmptySample);
        assert!(e.to_string().contains("statistics"));
        assert!(e.source().is_some());
        let e = DataError::NoData {
            context: "region x".into(),
        };
        assert!(e.to_string().contains("region x"));
        assert!(e.source().is_none());
    }
}
