//! Aggregation: measurement records → scoring input.
//!
//! The paper's rule — *"IQB uses the 95th percentile of a dataset to
//! evaluate a metric"* — is the default here, but the percentile is
//! configurable per metric so the E7 ablation (p50/p75/p90/p95/p99) and
//! downstream adaptations can deviate. The output is an
//! [`AggregateInput`] with provenance (sample counts, the quantile used
//! and the aggregation backend), ready for [`iqb_core::score::score_iqb`].
//!
//! Aggregation is a *single pass*: records stream out of the store's
//! (region, dataset) index and into one [`MetricSink`] per
//! (dataset, metric) cell. The sink is selected by
//! [`AggregationSpec::backend`]:
//!
//! * [`AggregatorBackend::Exact`] — keeps every value, answers with exact
//!   order statistics. Bit-identical to the historical
//!   materialize-column-then-sort path; the default.
//! * [`AggregatorBackend::TDigest`] — bounded-memory mergeable sketch;
//!   the serving-scale choice.
//! * [`AggregatorBackend::P2`] — O(1) memory per cell; the
//!   measurement-agent choice.

use std::collections::BTreeMap;

use iqb_core::dataset::DatasetId;
use iqb_core::input::{AggregateInput, AggregationBackend, CellProvenance};
use iqb_core::metric::Metric;
use iqb_stats::p2::P2Quantile;
use iqb_stats::sink::{ExactSink, QuantileSink};
use iqb_stats::tdigest::TDigest;
use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::record::RegionId;
use crate::store::{MeasurementStore, QueryFilter};

/// Which streaming engine reduces a metric stream to its quantile.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum AggregatorBackend {
    /// Exact order statistics over the full sample (paper-faithful
    /// reference; memory grows with the stream). The default.
    #[default]
    Exact,
    /// Mergeable t-digest sketch with compression δ.
    TDigest {
        /// Compression parameter δ (≥ 10); larger is more accurate.
        compression: f64,
    },
    /// P² marker estimator: O(1) memory, tracks the configured quantile.
    P2,
}

impl AggregatorBackend {
    /// The t-digest backend at its default compression.
    pub fn tdigest_default() -> Self {
        AggregatorBackend::TDigest {
            compression: iqb_stats::tdigest::DEFAULT_COMPRESSION,
        }
    }

    /// The provenance tag recorded on cells this backend produces.
    pub fn provenance(&self) -> AggregationBackend {
        match self {
            AggregatorBackend::Exact => AggregationBackend::Exact,
            AggregatorBackend::TDigest { .. } => AggregationBackend::TDigest,
            AggregatorBackend::P2 => AggregationBackend::P2,
        }
    }

    /// Whether sinks of this backend support [`QuantileSink::merge`].
    ///
    /// Exact and t-digest sinks merge losslessly (exact) or by the
    /// documented centroid-merge rule (t-digest); P² marker state has no
    /// merge rule. Pane-based windowing uses this to decide between
    /// ingest-once-merge-per-window and the per-window fallback.
    pub fn mergeable(&self) -> bool {
        !matches!(self, AggregatorBackend::P2)
    }

    /// Validates backend parameters (t-digest compression bounds).
    pub fn validate(&self) -> Result<(), DataError> {
        if let AggregatorBackend::TDigest { compression } = self {
            if !compression.is_finite() || *compression < 10.0 {
                return Err(DataError::InvalidAggregation(format!(
                    "t-digest compression {compression} must be finite and >= 10"
                )));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for AggregatorBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.provenance().tag())
    }
}

impl std::str::FromStr for AggregatorBackend {
    type Err = DataError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(AggregatorBackend::Exact),
            "tdigest" => Ok(AggregatorBackend::tdigest_default()),
            "p2" => Ok(AggregatorBackend::P2),
            other => Err(DataError::InvalidAggregation(format!(
                "unknown aggregation backend `{other}` (expected exact|tdigest|p2)"
            ))),
        }
    }
}

/// Resolves the aggregation backend from its two configuration surfaces
/// with a single, fixed precedence: the `--agg-backend` CLI flag wins,
/// the `IQB_AGG_BACKEND` environment variable is second, and the default
/// is [`AggregatorBackend::Exact`].
///
/// This is *the* one place the precedence lives — the CLI and the bench
/// harness both delegate here. Callers read the environment themselves
/// (this crate is determinism-linted and may not); the function stays
/// pure so both paths are unit-testable. Errors name the surface the bad
/// value came from and list the valid backends.
pub fn resolve_backend(
    flag: Option<&str>,
    env: Option<&str>,
) -> Result<AggregatorBackend, DataError> {
    let (source, raw) = match (flag, env) {
        (Some(raw), _) => ("--agg-backend", raw),
        (None, Some(raw)) => ("IQB_AGG_BACKEND", raw),
        (None, None) => return Ok(AggregatorBackend::Exact),
    };
    raw.parse().map_err(|_| {
        DataError::InvalidAggregation(format!(
            "{source}: unknown aggregation backend `{raw}` (expected exact|tdigest|p2)"
        ))
    })
}

/// One cell's streaming state: the backend-selected estimator behind the
/// [`QuantileSink`] contract.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MetricSink {
    /// Exact order statistics (keeps all values).
    Exact(ExactSink),
    /// Bounded-memory t-digest sketch.
    TDigest(TDigest),
    /// O(1)-memory P² estimator for one declared quantile.
    P2(P2Quantile),
}

impl MetricSink {
    /// Creates the sink a backend prescribes for a cell whose configured
    /// quantile is `q` (the P² estimator must know it up front).
    pub fn for_backend(backend: AggregatorBackend, q: f64) -> Result<Self, DataError> {
        match backend {
            AggregatorBackend::Exact => Ok(MetricSink::Exact(ExactSink::new())),
            AggregatorBackend::TDigest { compression } => {
                Ok(MetricSink::TDigest(TDigest::with_compression(compression)?))
            }
            AggregatorBackend::P2 => Ok(MetricSink::P2(P2Quantile::new(q)?)),
        }
    }

    /// The provenance tag of the engine behind this sink.
    pub fn provenance(&self) -> AggregationBackend {
        match self {
            MetricSink::Exact(_) => AggregationBackend::Exact,
            MetricSink::TDigest(_) => AggregationBackend::TDigest,
            MetricSink::P2(_) => AggregationBackend::P2,
        }
    }
}

impl QuantileSink for MetricSink {
    fn push(&mut self, value: f64) -> Result<(), iqb_stats::StatsError> {
        match self {
            MetricSink::Exact(s) => s.push(value),
            MetricSink::TDigest(s) => s.push(value),
            MetricSink::P2(s) => QuantileSink::push(s, value),
        }
    }

    fn quantile(&self, q: f64) -> Result<f64, iqb_stats::StatsError> {
        match self {
            MetricSink::Exact(s) => s.quantile(q),
            MetricSink::TDigest(s) => QuantileSink::quantile(s, q),
            MetricSink::P2(s) => QuantileSink::quantile(s, q),
        }
    }

    fn count(&self) -> u64 {
        match self {
            MetricSink::Exact(s) => s.count(),
            MetricSink::TDigest(s) => QuantileSink::count(s),
            MetricSink::P2(s) => QuantileSink::count(s),
        }
    }

    fn merge(&mut self, other: &Self) -> Result<(), iqb_stats::StatsError> {
        let result = match (&mut *self, other) {
            (MetricSink::Exact(a), MetricSink::Exact(b)) => a.merge(b),
            (MetricSink::TDigest(a), MetricSink::TDigest(b)) => QuantileSink::merge(a, b),
            (MetricSink::P2(a), MetricSink::P2(b)) => QuantileSink::merge(a, b),
            _ => Err(iqb_stats::StatsError::IncompatibleMerge(
                "cannot merge sinks of different backends".into(),
            )),
        };
        if result.is_ok() {
            iqb_obs::global()
                .counter(iqb_obs::names::AGG_SINK_MERGES)
                .inc();
        }
        result
    }

    fn mergeable(&self) -> bool {
        match self {
            MetricSink::Exact(s) => QuantileSink::mergeable(s),
            MetricSink::TDigest(s) => QuantileSink::mergeable(s),
            MetricSink::P2(s) => QuantileSink::mergeable(s),
        }
    }
}

/// How records are reduced to one value per (dataset, metric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationSpec {
    /// Quantile rank per metric, each in `(0, 1]`.
    pub quantiles: BTreeMap<Metric, f64>,
    /// Minimum number of samples required to emit a cell; sparser cells
    /// are dropped (the score normalization absorbs the gap).
    pub min_samples: usize,
    /// The streaming engine that reduces each cell's value stream.
    #[serde(default)]
    pub backend: AggregatorBackend,
}

impl AggregationSpec {
    /// The paper's default: 95th percentile for every metric, at least one
    /// sample, exact order statistics.
    pub fn paper_default() -> Self {
        // lint: allow(panic) 0.95 is a compile-time constant inside (0, 1)
        Self::uniform_quantile(0.95).expect("0.95 is a valid quantile")
    }

    /// Same quantile for every metric.
    pub fn uniform_quantile(q: f64) -> Result<Self, DataError> {
        if !(q > 0.0 && q <= 1.0) || q.is_nan() {
            return Err(DataError::InvalidAggregation(format!(
                "quantile {q} not in (0, 1]"
            )));
        }
        Ok(AggregationSpec {
            quantiles: Metric::ALL.into_iter().map(|m| (m, q)).collect(),
            min_samples: 1,
            backend: AggregatorBackend::Exact,
        })
    }

    /// Overrides the quantile for one metric.
    pub fn with_quantile(mut self, metric: Metric, q: f64) -> Result<Self, DataError> {
        if !(q > 0.0 && q <= 1.0) || q.is_nan() {
            return Err(DataError::InvalidAggregation(format!(
                "quantile {q} not in (0, 1]"
            )));
        }
        self.quantiles.insert(metric, q);
        Ok(self)
    }

    /// Sets the minimum sample count per cell.
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// Selects the aggregation backend.
    pub fn with_backend(mut self, backend: AggregatorBackend) -> Self {
        self.backend = backend;
        self
    }

    /// The quantile for a metric (panics only if the spec was built without
    /// the metric, which the constructors prevent).
    pub fn quantile_for(&self, metric: Metric) -> Result<f64, DataError> {
        self.quantiles.get(&metric).copied().ok_or_else(|| {
            DataError::InvalidAggregation(format!("no quantile configured for {metric}"))
        })
    }

    /// Validates the spec.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.quantiles.is_empty() {
            return Err(DataError::InvalidAggregation(
                "no quantiles configured".into(),
            ));
        }
        for (m, &q) in &self.quantiles {
            if !(q > 0.0 && q <= 1.0) || q.is_nan() {
                return Err(DataError::InvalidAggregation(format!(
                    "quantile {q} for {m} not in (0, 1]"
                )));
            }
            // The P² estimator cannot track the extreme rank q = 1.
            if matches!(self.backend, AggregatorBackend::P2) && q >= 1.0 {
                return Err(DataError::InvalidAggregation(format!(
                    "quantile {q} for {m}: the p2 backend requires q in (0, 1)"
                )));
            }
        }
        self.backend.validate()
    }

    /// Creates one fresh sink per metric, keyed with its configured
    /// quantile. Shared by the batch path below and the pipeline's
    /// incremental `ScoringSession`.
    pub fn new_sinks(&self) -> Result<Vec<(Metric, f64, MetricSink)>, DataError> {
        Metric::ALL
            .into_iter()
            .map(|metric| {
                let q = self.quantile_for(metric)?;
                Ok((metric, q, MetricSink::for_backend(self.backend, q)?))
            })
            .collect()
    }
}

/// Aggregates one region's records across the given datasets into a
/// scoring input.
///
/// For each (dataset, metric) the store's indexed records stream through
/// a backend-selected [`MetricSink`] in one pass and are reduced to
/// `quantile_for(metric)`. Cells with fewer than `min_samples`
/// observations are omitted. An input with zero cells is an error
/// ([`DataError::NoData`]).
pub fn aggregate_region(
    store: &MeasurementStore,
    region: &RegionId,
    datasets: &[DatasetId],
    spec: &AggregationSpec,
) -> Result<AggregateInput, DataError> {
    aggregate_region_filtered(store, region, datasets, spec, &QueryFilter::all())
}

/// Like [`aggregate_region`], further narrowed by `base_filter` (time
/// window, technology …). The filter's own region/dataset fields are
/// overridden per query.
pub fn aggregate_region_filtered(
    store: &MeasurementStore,
    region: &RegionId,
    datasets: &[DatasetId],
    spec: &AggregationSpec,
    base_filter: &QueryFilter,
) -> Result<AggregateInput, DataError> {
    spec.validate()?;
    let mut input = AggregateInput::new();
    let mut pushed: u64 = 0;
    for dataset in datasets {
        let mut sinks = spec.new_sinks()?;
        // One pass: each record feeds every metric sink that has a value.
        // `query_cell` pins (region, dataset) under the base filter's
        // time/tech constraints without cloning a QueryFilter per cell.
        for record in store.query_cell(region, dataset, base_filter) {
            for (metric, _, sink) in sinks.iter_mut() {
                if let Some(value) = record.metric_value(*metric) {
                    sink.push(value)?;
                    pushed += 1;
                }
            }
        }
        for (metric, q, sink) in sinks {
            if (sink.count() as usize) < spec.min_samples.max(1) {
                continue;
            }
            let value = sink.quantile(q)?;
            input.set_with_provenance(
                dataset.clone(),
                metric,
                value,
                CellProvenance {
                    sample_count: sink.count(),
                    quantile: q,
                    backend: sink.provenance(),
                },
            );
        }
    }
    // Batched once per call: one atomic add, not one per record.
    iqb_obs::global()
        .counter(iqb_obs::names::AGG_VALUES_PUSHED)
        .add(pushed);
    if input.is_empty() {
        return Err(DataError::NoData {
            context: format!("region {region} across {} datasets", datasets.len()),
        });
    }
    Ok(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TestRecord;

    /// Precedence contract: flag > env > default, with errors that name
    /// the offending surface *and* list the valid backends on both
    /// paths.
    #[test]
    fn resolve_backend_precedence_and_errors() {
        assert_eq!(resolve_backend(None, None).unwrap(), AggregatorBackend::Exact);
        assert_eq!(
            resolve_backend(None, Some("p2")).unwrap(),
            AggregatorBackend::P2
        );
        // The flag wins even when the environment is set (and even when
        // the environment value is garbage — it is never parsed).
        assert_eq!(
            resolve_backend(Some("tdigest"), Some("p2")).unwrap(),
            AggregatorBackend::tdigest_default()
        );
        assert_eq!(
            resolve_backend(Some("exact"), Some("not-a-backend")).unwrap(),
            AggregatorBackend::Exact
        );

        let flag_err = resolve_backend(Some("magic"), None).unwrap_err().to_string();
        assert!(flag_err.contains("--agg-backend"), "{flag_err}");
        assert!(flag_err.contains("exact|tdigest|p2"), "{flag_err}");

        let env_err = resolve_backend(None, Some("magic")).unwrap_err().to_string();
        assert!(env_err.contains("IQB_AGG_BACKEND"), "{env_err}");
        assert!(env_err.contains("exact|tdigest|p2"), "{env_err}");
    }

    fn push_tests(store: &mut MeasurementStore, region: &RegionId, dataset: DatasetId, n: usize) {
        for i in 0..n {
            store
                .push(TestRecord {
                    timestamp: i as u64,
                    region: region.clone(),
                    dataset: dataset.clone(),
                    // Downloads 1..=n so quantiles are easy to reason about.
                    download_mbps: (i + 1) as f64,
                    upload_mbps: 10.0,
                    latency_ms: 20.0 + i as f64,
                    loss_pct: if dataset == DatasetId::Ookla {
                        None
                    } else {
                        Some(0.1)
                    },
                    tech: None,
                })
                .unwrap();
        }
    }

    #[test]
    fn paper_default_is_p95_everywhere() {
        let spec = AggregationSpec::paper_default();
        for m in Metric::ALL {
            assert_eq!(spec.quantile_for(m).unwrap(), 0.95);
        }
        assert_eq!(spec.min_samples, 1);
        assert_eq!(spec.backend, AggregatorBackend::Exact);
    }

    #[test]
    fn uniform_quantile_validates() {
        assert!(AggregationSpec::uniform_quantile(0.0).is_err());
        assert!(AggregationSpec::uniform_quantile(1.01).is_err());
        assert!(AggregationSpec::uniform_quantile(f64::NAN).is_err());
        assert!(AggregationSpec::uniform_quantile(1.0).is_ok());
    }

    #[test]
    fn p2_backend_rejects_extreme_quantile() {
        let spec = AggregationSpec::uniform_quantile(1.0)
            .unwrap()
            .with_backend(AggregatorBackend::P2);
        assert!(spec.validate().is_err());
        let spec = AggregationSpec::paper_default().with_backend(AggregatorBackend::P2);
        spec.validate().unwrap();
    }

    #[test]
    fn tdigest_backend_validates_compression() {
        let spec = AggregationSpec::paper_default()
            .with_backend(AggregatorBackend::TDigest { compression: 2.0 });
        assert!(spec.validate().is_err());
        let spec =
            AggregationSpec::paper_default().with_backend(AggregatorBackend::tdigest_default());
        spec.validate().unwrap();
    }

    /// The backend-level flag and the per-sink trait answer must agree —
    /// temporal pane selection reads the backend, the sinks do the work.
    #[test]
    fn backend_mergeable_matches_sink_mergeable() {
        for backend in [
            AggregatorBackend::Exact,
            AggregatorBackend::tdigest_default(),
            AggregatorBackend::P2,
        ] {
            let sink = MetricSink::for_backend(backend, 0.95).unwrap();
            assert_eq!(backend.mergeable(), QuantileSink::mergeable(&sink));
        }
        assert!(AggregatorBackend::Exact.mergeable());
        assert!(AggregatorBackend::tdigest_default().mergeable());
        assert!(!AggregatorBackend::P2.mergeable());
    }

    #[test]
    fn backend_parses_from_str() {
        assert_eq!(
            "exact".parse::<AggregatorBackend>().unwrap(),
            AggregatorBackend::Exact
        );
        assert_eq!(
            "tdigest".parse::<AggregatorBackend>().unwrap(),
            AggregatorBackend::tdigest_default()
        );
        assert_eq!(
            "p2".parse::<AggregatorBackend>().unwrap(),
            AggregatorBackend::P2
        );
        assert!("median".parse::<AggregatorBackend>().is_err());
        assert_eq!(AggregatorBackend::tdigest_default().to_string(), "tdigest");
    }

    #[test]
    fn aggregates_p95_of_each_column() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ndt, 100);
        let input = aggregate_region(
            &store,
            &region,
            &[DatasetId::Ndt],
            &AggregationSpec::paper_default(),
        )
        .unwrap();
        // p95 (linear) of 1..=100 is 95.05.
        let v = input
            .get(&DatasetId::Ndt, Metric::DownloadThroughput)
            .unwrap();
        assert!((v - 95.05).abs() < 1e-9, "got {v}");
        let cell = input
            .get_cell(&DatasetId::Ndt, Metric::DownloadThroughput)
            .unwrap();
        let prov = cell.provenance.unwrap();
        assert_eq!(prov.sample_count, 100);
        assert_eq!(prov.quantile, 0.95);
        assert_eq!(prov.backend, iqb_core::input::AggregationBackend::Exact);
    }

    #[test]
    fn streaming_backends_approximate_exact() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ndt, 2_000);
        let exact = aggregate_region(
            &store,
            &region,
            &[DatasetId::Ndt],
            &AggregationSpec::paper_default(),
        )
        .unwrap();
        for backend in [AggregatorBackend::tdigest_default(), AggregatorBackend::P2] {
            let spec = AggregationSpec::paper_default().with_backend(backend);
            let approx = aggregate_region(&store, &region, &[DatasetId::Ndt], &spec).unwrap();
            let e = exact
                .get(&DatasetId::Ndt, Metric::DownloadThroughput)
                .unwrap();
            let a = approx
                .get(&DatasetId::Ndt, Metric::DownloadThroughput)
                .unwrap();
            // Downloads span 1..=2000; 1% of the spread is the contract.
            assert!(
                (a - e).abs() <= 0.01 * 2_000.0,
                "{backend}: {a} vs exact {e}"
            );
            let prov = approx
                .get_cell(&DatasetId::Ndt, Metric::DownloadThroughput)
                .unwrap()
                .provenance
                .unwrap();
            assert_eq!(prov.backend, backend.provenance());
        }
    }

    #[test]
    fn missing_loss_column_is_omitted() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ookla, 50);
        let input = aggregate_region(
            &store,
            &region,
            &[DatasetId::Ookla],
            &AggregationSpec::paper_default(),
        )
        .unwrap();
        assert!(input.get(&DatasetId::Ookla, Metric::PacketLoss).is_none());
        assert!(input.get(&DatasetId::Ookla, Metric::Latency).is_some());
    }

    #[test]
    fn min_samples_gate() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ndt, 5);
        let spec = AggregationSpec::paper_default().with_min_samples(10);
        assert!(matches!(
            aggregate_region(&store, &region, &[DatasetId::Ndt], &spec),
            Err(DataError::NoData { .. })
        ));
        let spec = AggregationSpec::paper_default().with_min_samples(5);
        assert!(aggregate_region(&store, &region, &[DatasetId::Ndt], &spec).is_ok());
    }

    #[test]
    fn unknown_region_is_no_data() {
        let store = MeasurementStore::new();
        let region = RegionId::new("ghost").unwrap();
        assert!(matches!(
            aggregate_region(
                &store,
                &region,
                &[DatasetId::Ndt],
                &AggregationSpec::paper_default()
            ),
            Err(DataError::NoData { .. })
        ));
    }

    #[test]
    fn per_metric_quantile_override() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ndt, 100);
        // Throughput at p5 (conservative), latency at p95.
        let spec = AggregationSpec::paper_default()
            .with_quantile(Metric::DownloadThroughput, 0.05)
            .unwrap();
        let input = aggregate_region(&store, &region, &[DatasetId::Ndt], &spec).unwrap();
        let down = input
            .get(&DatasetId::Ndt, Metric::DownloadThroughput)
            .unwrap();
        assert!(down < 10.0, "p5 of 1..=100 should be small, got {down}");
    }

    #[test]
    fn time_window_filter_narrows_aggregation() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ndt, 100);
        // Only timestamps 0..10 → downloads 1..=10.
        let window = QueryFilter::all().time_range(0, 10);
        let input = aggregate_region_filtered(
            &store,
            &region,
            &[DatasetId::Ndt],
            &AggregationSpec::paper_default(),
            &window,
        )
        .unwrap();
        let v = input
            .get(&DatasetId::Ndt, Metric::DownloadThroughput)
            .unwrap();
        assert!(v <= 10.0, "windowed p95 should be <= 10, got {v}");
        let prov = input
            .get_cell(&DatasetId::Ndt, Metric::DownloadThroughput)
            .unwrap()
            .provenance
            .unwrap();
        assert_eq!(prov.sample_count, 10);
    }

    #[test]
    fn multiple_datasets_fill_independent_cells() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ndt, 20);
        push_tests(&mut store, &region, DatasetId::Cloudflare, 20);
        let input = aggregate_region(
            &store,
            &region,
            &[DatasetId::Ndt, DatasetId::Cloudflare, DatasetId::Ookla],
            &AggregationSpec::paper_default(),
        )
        .unwrap();
        assert!(input.get(&DatasetId::Ndt, Metric::Latency).is_some());
        assert!(input.get(&DatasetId::Cloudflare, Metric::Latency).is_some());
        assert!(input.get(&DatasetId::Ookla, Metric::Latency).is_none());
    }

    #[test]
    fn spec_serde_defaults_backend_to_exact() {
        // A spec serialized before backends existed must still load.
        let legacy = r#"{"quantiles":{"DownloadThroughput":0.95,"UploadThroughput":0.95,"Latency":0.95,"PacketLoss":0.95},"min_samples":1}"#;
        let spec: AggregationSpec = serde_json::from_str(legacy).unwrap();
        assert_eq!(spec.backend, AggregatorBackend::Exact);
        let json = serde_json::to_string(
            &AggregationSpec::paper_default().with_backend(AggregatorBackend::tdigest_default()),
        )
        .unwrap();
        let back: AggregationSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.backend, AggregatorBackend::tdigest_default());
    }
}
