//! Aggregation: measurement records → scoring input.
//!
//! The paper's rule — *"IQB uses the 95th percentile of a dataset to
//! evaluate a metric"* — is the default here, but the percentile is
//! configurable per metric so the E7 ablation (p50/p75/p90/p95/p99) and
//! downstream adaptations can deviate. The output is an
//! [`AggregateInput`] with provenance (sample counts and the quantile
//! used), ready for [`iqb_core::score::score_iqb`].

use std::collections::BTreeMap;

use iqb_core::dataset::DatasetId;
use iqb_core::input::{AggregateInput, CellProvenance};
use iqb_core::metric::Metric;
use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::record::RegionId;
use crate::store::{MeasurementStore, QueryFilter};

/// How records are reduced to one value per (dataset, metric).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregationSpec {
    /// Quantile rank per metric, each in `(0, 1]`.
    pub quantiles: BTreeMap<Metric, f64>,
    /// Minimum number of samples required to emit a cell; sparser cells
    /// are dropped (the score normalization absorbs the gap).
    pub min_samples: usize,
}

impl AggregationSpec {
    /// The paper's default: 95th percentile for every metric, at least one
    /// sample.
    pub fn paper_default() -> Self {
        Self::uniform_quantile(0.95).expect("0.95 is a valid quantile")
    }

    /// Same quantile for every metric.
    pub fn uniform_quantile(q: f64) -> Result<Self, DataError> {
        if !(q > 0.0 && q <= 1.0) || q.is_nan() {
            return Err(DataError::InvalidAggregation(format!(
                "quantile {q} not in (0, 1]"
            )));
        }
        Ok(AggregationSpec {
            quantiles: Metric::ALL.into_iter().map(|m| (m, q)).collect(),
            min_samples: 1,
        })
    }

    /// Overrides the quantile for one metric.
    pub fn with_quantile(mut self, metric: Metric, q: f64) -> Result<Self, DataError> {
        if !(q > 0.0 && q <= 1.0) || q.is_nan() {
            return Err(DataError::InvalidAggregation(format!(
                "quantile {q} not in (0, 1]"
            )));
        }
        self.quantiles.insert(metric, q);
        Ok(self)
    }

    /// Sets the minimum sample count per cell.
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// The quantile for a metric (panics only if the spec was built without
    /// the metric, which the constructors prevent).
    pub fn quantile_for(&self, metric: Metric) -> Result<f64, DataError> {
        self.quantiles.get(&metric).copied().ok_or_else(|| {
            DataError::InvalidAggregation(format!("no quantile configured for {metric}"))
        })
    }

    /// Validates the spec.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.quantiles.is_empty() {
            return Err(DataError::InvalidAggregation(
                "no quantiles configured".into(),
            ));
        }
        for (m, &q) in &self.quantiles {
            if !(q > 0.0 && q <= 1.0) || q.is_nan() {
                return Err(DataError::InvalidAggregation(format!(
                    "quantile {q} for {m} not in (0, 1]"
                )));
            }
        }
        Ok(())
    }
}

/// Aggregates one region's records across the given datasets into a
/// scoring input.
///
/// For each (dataset, metric) the metric column is collected via the
/// store's index and reduced to `quantile_for(metric)` with exact
/// order statistics. Cells with fewer than `min_samples` observations are
/// omitted. An input with zero cells is an error ([`DataError::NoData`]).
pub fn aggregate_region(
    store: &MeasurementStore,
    region: &RegionId,
    datasets: &[DatasetId],
    spec: &AggregationSpec,
) -> Result<AggregateInput, DataError> {
    aggregate_region_filtered(store, region, datasets, spec, &QueryFilter::all())
}

/// Like [`aggregate_region`], further narrowed by `base_filter` (time
/// window, technology …). The filter's own region/dataset fields are
/// overridden per query.
pub fn aggregate_region_filtered(
    store: &MeasurementStore,
    region: &RegionId,
    datasets: &[DatasetId],
    spec: &AggregationSpec,
    base_filter: &QueryFilter,
) -> Result<AggregateInput, DataError> {
    spec.validate()?;
    let mut input = AggregateInput::new();
    for dataset in datasets {
        let filter = QueryFilter {
            region: Some(region.clone()),
            dataset: Some(dataset.clone()),
            ..base_filter.clone()
        };
        for metric in Metric::ALL {
            let column = store.metric_column(&filter, metric);
            if column.len() < spec.min_samples.max(1) {
                continue;
            }
            let q = spec.quantile_for(metric)?;
            let value = iqb_stats::quantile(&column, q)?;
            input.set_with_provenance(
                dataset.clone(),
                metric,
                value,
                CellProvenance {
                    sample_count: column.len() as u64,
                    quantile: q,
                },
            );
        }
    }
    if input.is_empty() {
        return Err(DataError::NoData {
            context: format!("region {region} across {} datasets", datasets.len()),
        });
    }
    Ok(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TestRecord;

    fn push_tests(store: &mut MeasurementStore, region: &RegionId, dataset: DatasetId, n: usize) {
        for i in 0..n {
            store
                .push(TestRecord {
                    timestamp: i as u64,
                    region: region.clone(),
                    dataset: dataset.clone(),
                    // Downloads 1..=n so quantiles are easy to reason about.
                    download_mbps: (i + 1) as f64,
                    upload_mbps: 10.0,
                    latency_ms: 20.0 + i as f64,
                    loss_pct: if dataset == DatasetId::Ookla {
                        None
                    } else {
                        Some(0.1)
                    },
                    tech: None,
                })
                .unwrap();
        }
    }

    #[test]
    fn paper_default_is_p95_everywhere() {
        let spec = AggregationSpec::paper_default();
        for m in Metric::ALL {
            assert_eq!(spec.quantile_for(m).unwrap(), 0.95);
        }
        assert_eq!(spec.min_samples, 1);
    }

    #[test]
    fn uniform_quantile_validates() {
        assert!(AggregationSpec::uniform_quantile(0.0).is_err());
        assert!(AggregationSpec::uniform_quantile(1.01).is_err());
        assert!(AggregationSpec::uniform_quantile(f64::NAN).is_err());
        assert!(AggregationSpec::uniform_quantile(1.0).is_ok());
    }

    #[test]
    fn aggregates_p95_of_each_column() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ndt, 100);
        let input = aggregate_region(
            &store,
            &region,
            &[DatasetId::Ndt],
            &AggregationSpec::paper_default(),
        )
        .unwrap();
        // p95 (linear) of 1..=100 is 95.05.
        let v = input
            .get(&DatasetId::Ndt, Metric::DownloadThroughput)
            .unwrap();
        assert!((v - 95.05).abs() < 1e-9, "got {v}");
        let cell = input
            .get_cell(&DatasetId::Ndt, Metric::DownloadThroughput)
            .unwrap();
        let prov = cell.provenance.unwrap();
        assert_eq!(prov.sample_count, 100);
        assert_eq!(prov.quantile, 0.95);
    }

    #[test]
    fn missing_loss_column_is_omitted() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ookla, 50);
        let input = aggregate_region(
            &store,
            &region,
            &[DatasetId::Ookla],
            &AggregationSpec::paper_default(),
        )
        .unwrap();
        assert!(input.get(&DatasetId::Ookla, Metric::PacketLoss).is_none());
        assert!(input.get(&DatasetId::Ookla, Metric::Latency).is_some());
    }

    #[test]
    fn min_samples_gate() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ndt, 5);
        let spec = AggregationSpec::paper_default().with_min_samples(10);
        assert!(matches!(
            aggregate_region(&store, &region, &[DatasetId::Ndt], &spec),
            Err(DataError::NoData { .. })
        ));
        let spec = AggregationSpec::paper_default().with_min_samples(5);
        assert!(aggregate_region(&store, &region, &[DatasetId::Ndt], &spec).is_ok());
    }

    #[test]
    fn unknown_region_is_no_data() {
        let store = MeasurementStore::new();
        let region = RegionId::new("ghost").unwrap();
        assert!(matches!(
            aggregate_region(
                &store,
                &region,
                &[DatasetId::Ndt],
                &AggregationSpec::paper_default()
            ),
            Err(DataError::NoData { .. })
        ));
    }

    #[test]
    fn per_metric_quantile_override() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ndt, 100);
        // Throughput at p5 (conservative), latency at p95.
        let spec = AggregationSpec::paper_default()
            .with_quantile(Metric::DownloadThroughput, 0.05)
            .unwrap();
        let input = aggregate_region(&store, &region, &[DatasetId::Ndt], &spec).unwrap();
        let down = input
            .get(&DatasetId::Ndt, Metric::DownloadThroughput)
            .unwrap();
        assert!(down < 10.0, "p5 of 1..=100 should be small, got {down}");
    }

    #[test]
    fn time_window_filter_narrows_aggregation() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ndt, 100);
        // Only timestamps 0..10 → downloads 1..=10.
        let window = QueryFilter::all().time_range(0, 10);
        let input = aggregate_region_filtered(
            &store,
            &region,
            &[DatasetId::Ndt],
            &AggregationSpec::paper_default(),
            &window,
        )
        .unwrap();
        let v = input
            .get(&DatasetId::Ndt, Metric::DownloadThroughput)
            .unwrap();
        assert!(v <= 10.0, "windowed p95 should be <= 10, got {v}");
        let prov = input
            .get_cell(&DatasetId::Ndt, Metric::DownloadThroughput)
            .unwrap()
            .provenance
            .unwrap();
        assert_eq!(prov.sample_count, 10);
    }

    #[test]
    fn multiple_datasets_fill_independent_cells() {
        let region = RegionId::new("r").unwrap();
        let mut store = MeasurementStore::new();
        push_tests(&mut store, &region, DatasetId::Ndt, 20);
        push_tests(&mut store, &region, DatasetId::Cloudflare, 20);
        let input = aggregate_region(
            &store,
            &region,
            &[DatasetId::Ndt, DatasetId::Cloudflare, DatasetId::Ookla],
            &AggregationSpec::paper_default(),
        )
        .unwrap();
        assert!(input.get(&DatasetId::Ndt, Metric::Latency).is_some());
        assert!(input.get(&DatasetId::Cloudflare, Metric::Latency).is_some());
        assert!(input.get(&DatasetId::Ookla, Metric::Latency).is_none());
    }
}
