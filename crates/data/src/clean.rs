//! Data cleaning: deduplication and outlier screening.
//!
//! Published measurement feeds are messy: clients retry and double-submit
//! tests, and a handful of broken measurements (a 10 s DHCP stall recorded
//! as latency, a throughput test against a LAN cache) can own the p95 a
//! region is scored on. This module provides the two standard scrubbers —
//! exact-duplicate removal and Tukey-fence (IQR) outlier screening per
//! (region, dataset, metric) — with full accounting of what was dropped,
//! because silently discarded data is worse than dirty data.
//!
//! Caveat: fences are computed per (region, dataset) cohort, so a region
//! mixing very different access technologies has a wide legitimate spread
//! and the fence will clip its fast tail. For heterogeneous regions either
//! raise the multiplier or fence per technology tag upstream.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use iqb_core::metric::Metric;

use crate::error::DataError;
use crate::record::TestRecord;

/// What the cleaner did, for the provenance trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CleaningReport {
    /// Records examined.
    pub input: usize,
    /// Exact duplicates removed.
    pub duplicates: usize,
    /// Records dropped by the outlier fence.
    pub outliers: usize,
    /// Records retained.
    pub retained: usize,
}

/// Cleaning configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cleaner {
    /// Remove exact duplicates (same timestamp, region, dataset and all
    /// metric values).
    pub dedup: bool,
    /// Tukey-fence multiplier `k`: a record is dropped when any of its
    /// metrics falls outside `[Q1 − k·IQR, Q3 + k·IQR]` of its
    /// (region, dataset) cohort. `None` disables outlier screening;
    /// `Some(3.0)` is the conventional "far out" fence.
    pub iqr_multiplier: Option<f64>,
    /// Cohorts smaller than this skip outlier screening (fences from a
    /// handful of samples are noise).
    pub min_cohort: usize,
}

impl Default for Cleaner {
    fn default() -> Self {
        Cleaner {
            dedup: true,
            iqr_multiplier: Some(3.0),
            min_cohort: 20,
        }
    }
}

impl Cleaner {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), DataError> {
        if let Some(k) = self.iqr_multiplier {
            if !(k.is_finite() && k > 0.0) {
                return Err(DataError::InvalidAggregation(format!(
                    "IQR multiplier {k} must be positive and finite"
                )));
            }
        }
        Ok(())
    }

    /// Cleans a record set, returning the retained records and a report.
    pub fn clean(
        &self,
        records: Vec<TestRecord>,
    ) -> Result<(Vec<TestRecord>, CleaningReport), DataError> {
        self.validate()?;
        let mut report = CleaningReport {
            input: records.len(),
            ..Default::default()
        };

        // Phase 1: exact-duplicate removal (order-preserving).
        let mut deduped = Vec::with_capacity(records.len());
        if self.dedup {
            let mut seen = std::collections::HashSet::new();
            for r in records {
                // f64 fields hashed by bit pattern: "exact duplicate" means
                // byte-identical measurements.
                let key = (
                    r.timestamp,
                    r.region.clone(),
                    r.dataset.clone(),
                    r.download_mbps.to_bits(),
                    r.upload_mbps.to_bits(),
                    r.latency_ms.to_bits(),
                    r.loss_pct.map(f64::to_bits),
                );
                if seen.insert(key) {
                    deduped.push(r);
                } else {
                    report.duplicates += 1;
                }
            }
        } else {
            deduped = records;
        }

        // Phase 2: Tukey fences per (region, dataset, metric).
        let retained = match self.iqr_multiplier {
            None => deduped,
            Some(k) => {
                type Cohort = (crate::record::RegionId, iqb_core::dataset::DatasetId);
                // Collect cohort columns.
                let mut columns: BTreeMap<(Cohort, Metric), Vec<f64>> = BTreeMap::new();
                for r in &deduped {
                    let cohort = (r.region.clone(), r.dataset.clone());
                    for m in Metric::ALL {
                        if let Some(v) = r.metric_value(m) {
                            columns.entry((cohort.clone(), m)).or_default().push(v);
                        }
                    }
                }
                // Compute fences where the cohort is large enough.
                let mut fences: BTreeMap<(Cohort, Metric), (f64, f64)> = BTreeMap::new();
                for (key, column) in &columns {
                    if column.len() < self.min_cohort {
                        continue;
                    }
                    let q1 = iqb_stats::quantile(column, 0.25)?;
                    let q3 = iqb_stats::quantile(column, 0.75)?;
                    let iqr = q3 - q1;
                    fences.insert(key.clone(), (q1 - k * iqr, q3 + k * iqr));
                }
                let mut kept = Vec::with_capacity(deduped.len());
                for r in deduped {
                    let cohort = (r.region.clone(), r.dataset.clone());
                    let is_outlier = Metric::ALL.into_iter().any(|m| {
                        match (r.metric_value(m), fences.get(&(cohort.clone(), m))) {
                            (Some(v), Some(&(lo, hi))) => v < lo || v > hi,
                            _ => false,
                        }
                    });
                    if is_outlier {
                        report.outliers += 1;
                    } else {
                        kept.push(r);
                    }
                }
                kept
            }
        };
        report.retained = retained.len();
        Ok((retained, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RegionId;
    use iqb_core::dataset::DatasetId;

    fn record(ts: u64, down: f64, rtt: f64) -> TestRecord {
        TestRecord {
            timestamp: ts,
            region: RegionId::new("r").unwrap(),
            dataset: DatasetId::Ndt,
            download_mbps: down,
            upload_mbps: 10.0,
            latency_ms: rtt,
            loss_pct: Some(0.1),
            tech: None,
        }
    }

    #[test]
    fn validates_multiplier() {
        let bad = Cleaner {
            iqr_multiplier: Some(0.0),
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = Cleaner {
            iqr_multiplier: Some(f64::NAN),
            ..Default::default()
        };
        assert!(bad.clean(vec![]).is_err());
    }

    #[test]
    fn removes_exact_duplicates_only() {
        let a = record(1, 100.0, 20.0);
        let near_dup = record(1, 100.0, 20.000001); // differs in one bit-level value
        let records = vec![a.clone(), a.clone(), a.clone(), near_dup.clone()];
        let cleaner = Cleaner {
            iqr_multiplier: None,
            ..Default::default()
        };
        let (kept, report) = cleaner.clean(records).unwrap();
        assert_eq!(kept, vec![a, near_dup]);
        assert_eq!(report.duplicates, 2);
        assert_eq!(report.retained, 2);
    }

    #[test]
    fn dedup_can_be_disabled() {
        let a = record(1, 100.0, 20.0);
        let cleaner = Cleaner {
            dedup: false,
            iqr_multiplier: None,
            ..Default::default()
        };
        let (kept, report) = cleaner.clean(vec![a.clone(), a]).unwrap();
        assert_eq!(kept.len(), 2);
        assert_eq!(report.duplicates, 0);
    }

    #[test]
    fn fences_drop_gross_outliers() {
        // 100 well-behaved records plus one 10-second "latency" stall.
        let mut records: Vec<TestRecord> = (0..100)
            .map(|i| record(i, 100.0 + (i % 7) as f64, 20.0 + (i % 5) as f64))
            .collect();
        records.push(record(200, 100.0, 10_000.0));
        let cleaner = Cleaner::default();
        let (kept, report) = cleaner.clean(records).unwrap();
        assert_eq!(report.outliers, 1);
        assert_eq!(kept.len(), 100);
        assert!(kept.iter().all(|r| r.latency_ms < 100.0));
    }

    #[test]
    fn small_cohorts_are_not_fenced() {
        let mut records: Vec<TestRecord> = (0..5).map(|i| record(i, 100.0, 20.0)).collect();
        records.push(record(9, 100.0, 10_000.0));
        let cleaner = Cleaner::default(); // min_cohort 20 > 6
        let (kept, report) = cleaner.clean(records).unwrap();
        assert_eq!(report.outliers, 0);
        assert_eq!(kept.len(), 6);
    }

    #[test]
    fn constant_columns_survive_fencing() {
        // IQR 0: the fence collapses to the constant — identical values
        // must not be flagged.
        let records: Vec<TestRecord> = (0..50).map(|i| record(i, 100.0, 20.0)).collect();
        let (kept, report) = Cleaner::default().clean(records).unwrap();
        assert_eq!(report.outliers, 0);
        assert_eq!(kept.len(), 50);
    }

    #[test]
    fn cleaning_shifts_the_p95() {
        // The practical point: a handful of broken tests own the p95
        // before cleaning and not after.
        let mut records: Vec<TestRecord> = (0..100)
            .map(|i| record(i, 100.0, 20.0 + (i % 10) as f64))
            .collect();
        for i in 0..8 {
            records.push(record(500 + i, 100.0, 5_000.0));
        }
        let dirty: Vec<f64> = records.iter().map(|r| r.latency_ms).collect();
        let p95_dirty = iqb_stats::quantile(&dirty, 0.95).unwrap();
        let (kept, _) = Cleaner::default().clean(records).unwrap();
        let clean: Vec<f64> = kept.iter().map(|r| r.latency_ms).collect();
        let p95_clean = iqb_stats::quantile(&clean, 0.95).unwrap();
        assert!(p95_dirty > 500.0, "dirty p95 {p95_dirty}");
        assert!(p95_clean < 40.0, "clean p95 {p95_clean}");
    }

    #[test]
    fn empty_input_is_fine() {
        let (kept, report) = Cleaner::default().clean(vec![]).unwrap();
        assert!(kept.is_empty());
        assert_eq!(report, CleaningReport::default());
    }
}
