//! String interning for the ingest hot path.
//!
//! Parsing millions of per-test rows must not allocate one `String` per
//! region/dataset/tech field. This module maps those strings to dense
//! `u32` [`Symbol`]s at parse time: a [`RegionTable`] and [`DatasetTable`]
//! own the canonical [`RegionId`]/[`DatasetId`] values (allocated once,
//! on first sight), and an [`Interner`] handles free-form tech tags. The
//! columnar [`crate::store::MeasurementStore`] stores only symbols per
//! row and resolves back to the string-typed public API at the boundary.
//!
//! Symbols are assigned in first-seen order, so two tables built from the
//! same value sequence are identical — the property the chunked parallel
//! reader relies on to make N-thread ingest byte-equivalent to serial.

use std::collections::HashMap;

use iqb_core::dataset::DatasetId;

use crate::csv_io::parse_dataset_token;
use crate::error::DataError;
use crate::record::RegionId;

/// A dense `u32` handle into one interning table.
///
/// A symbol is only meaningful relative to the table that issued it;
/// [`crate::store::MeasurementStore::append_batch`] remaps chunk-local
/// symbols onto the store's global tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index this symbol resolves through.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(index: usize) -> Symbol {
        debug_assert!(index <= u32::MAX as usize, "interner overflow");
        Symbol(index as u32)
    }
}

/// First-seen-order interner for free-form strings (tech tags).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Interner {
    by_name: HashMap<Box<str>, u32>,
    items: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a string, allocating only on first sight.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&id) = self.by_name.get(name) {
            return Symbol(id);
        }
        let id = self.items.len() as u32;
        let boxed: Box<str> = name.into();
        self.by_name.insert(boxed.clone(), id);
        self.items.push(boxed);
        Symbol(id)
    }

    /// Looks a string up without inserting it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).map(|&id| Symbol(id))
    }

    /// Resolves a symbol issued by this interner.
    pub fn resolve(&self, symbol: Symbol) -> &str {
        &self.items[symbol.index()]
    }

    /// The interned strings, in first-seen (symbol) order.
    pub fn items(&self) -> impl Iterator<Item = &str> {
        self.items.iter().map(|s| s.as_ref())
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Interning table for [`RegionId`]s, validating names on first sight.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionTable {
    by_name: HashMap<Box<str>, u32>,
    items: Vec<RegionId>,
}

impl RegionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an already-validated region id.
    pub fn intern(&mut self, region: &RegionId) -> Symbol {
        if let Some(&id) = self.by_name.get(region.as_str()) {
            return Symbol(id);
        }
        let id = self.items.len() as u32;
        self.by_name.insert(region.as_str().into(), id);
        self.items.push(region.clone());
        Symbol(id)
    }

    /// Interns a raw name, validating it exactly like [`RegionId::new`].
    ///
    /// The validation runs only on first sight; repeats are one hash
    /// lookup with no allocation.
    pub fn intern_str(&mut self, name: &str) -> Result<Symbol, DataError> {
        if let Some(&id) = self.by_name.get(name) {
            return Ok(Symbol(id));
        }
        let region = RegionId::new(name)?;
        let id = self.items.len() as u32;
        self.by_name.insert(name.into(), id);
        self.items.push(region);
        Ok(Symbol(id))
    }

    /// Looks a region up without inserting it.
    pub fn get(&self, region: &RegionId) -> Option<Symbol> {
        self.by_name.get(region.as_str()).map(|&id| Symbol(id))
    }

    /// Resolves a symbol issued by this table.
    pub fn resolve(&self, symbol: Symbol) -> &RegionId {
        &self.items[symbol.index()]
    }

    /// The interned regions, in first-seen (symbol) order.
    pub fn items(&self) -> &[RegionId] {
        &self.items
    }

    /// Number of distinct regions interned.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Interning table for [`DatasetId`]s.
///
/// Deduplication is by dataset *identity*, not token: `Custom("ndt")`
/// shares the token `"ndt"` with [`DatasetId::Ndt`] but is a distinct
/// dataset, so the token fast path only caches what
/// [`parse_dataset_token`] itself produced for that token.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DatasetTable {
    /// Token → symbol fast path, keyed by the raw flat-file token.
    by_token: HashMap<Box<str>, u32>,
    /// Identity dedup for [`intern`](Self::intern)ed ids.
    by_id: HashMap<DatasetId, u32>,
    items: Vec<DatasetId>,
}

impl DatasetTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a dataset id by identity.
    pub fn intern(&mut self, dataset: &DatasetId) -> Symbol {
        if let Some(&id) = self.by_id.get(dataset) {
            return Symbol(id);
        }
        let id = self.items.len() as u32;
        self.by_id.insert(dataset.clone(), id);
        self.items.push(dataset.clone());
        Symbol(id)
    }

    /// Interns a flat-file token, parsing it exactly like
    /// [`parse_dataset_token`]. Repeats of the same token are one hash
    /// lookup with no allocation.
    pub fn intern_token(&mut self, token: &str) -> Result<Symbol, DataError> {
        if let Some(&id) = self.by_token.get(token) {
            return Ok(Symbol(id));
        }
        let dataset = parse_dataset_token(token)?;
        let symbol = self.intern(&dataset);
        self.by_token.insert(token.into(), symbol.0);
        Ok(symbol)
    }

    /// Looks a dataset up without inserting it.
    pub fn get(&self, dataset: &DatasetId) -> Option<Symbol> {
        self.by_id.get(dataset).map(|&id| Symbol(id))
    }

    /// Resolves a symbol issued by this table.
    pub fn resolve(&self, symbol: Symbol) -> &DatasetId {
        &self.items[symbol.index()]
    }

    /// The interned datasets, in first-seen (symbol) order.
    pub fn items(&self) -> &[DatasetId] {
        &self.items
    }

    /// Number of distinct datasets interned.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_first_seen_ordered_and_idempotent() {
        let mut i = Interner::new();
        let cable = i.intern("cable");
        let fiber = i.intern("fiber");
        assert_eq!(i.intern("cable"), cable);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(cable), "cable");
        assert_eq!(i.resolve(fiber), "fiber");
        assert_eq!(cable.index(), 0);
        assert_eq!(fiber.index(), 1);
        assert_eq!(i.get("dsl"), None);
    }

    #[test]
    fn region_table_validates_on_first_sight() {
        let mut t = RegionTable::new();
        assert!(t.intern_str("").is_err());
        assert!(t.intern_str("   ").is_err());
        let east = t.intern_str("east").unwrap();
        assert_eq!(t.intern_str("east").unwrap(), east);
        assert_eq!(t.resolve(east).as_str(), "east");
        assert_eq!(t.len(), 1);
        let east_id = RegionId::new("east").unwrap();
        assert_eq!(t.get(&east_id), Some(east));
        assert_eq!(t.intern(&east_id), east);
    }

    #[test]
    fn dataset_table_dedups_by_identity_not_token() {
        let mut t = DatasetTable::new();
        let ndt = t.intern(&DatasetId::Ndt);
        // Custom("ndt") shares the token but is a different dataset.
        let custom = t.intern(&DatasetId::Custom("ndt".into()));
        assert_ne!(ndt, custom);
        assert_eq!(t.len(), 2);
        // The token fast path resolves to what parse_dataset_token
        // produces: the builtin.
        assert_eq!(t.intern_token("ndt").unwrap(), ndt);
        assert_eq!(t.resolve(ndt), &DatasetId::Ndt);
        assert_eq!(t.resolve(custom), &DatasetId::Custom("ndt".into()));
    }

    #[test]
    fn dataset_token_path_matches_parse() {
        let mut t = DatasetTable::new();
        let probes = t.intern_token("probes").unwrap();
        assert_eq!(t.resolve(probes), &DatasetId::Custom("probes".into()));
        assert_eq!(t.intern_token("probes").unwrap(), probes);
        assert!(t.intern_token("").is_err());
        assert!(t.intern_token("  ").is_err());
    }

    #[test]
    fn tables_built_from_same_sequence_are_equal() {
        let build = || {
            let mut t = RegionTable::new();
            for name in ["b", "a", "b", "c", "a"] {
                t.intern_str(name).unwrap();
            }
            t
        };
        assert_eq!(build(), build());
        let t = build();
        assert_eq!(
            t.items().iter().map(|r| r.as_str()).collect::<Vec<_>>(),
            vec!["b", "a", "c"],
            "symbol order is first-seen order, not sorted order"
        );
    }
}
