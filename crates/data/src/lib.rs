#![forbid(unsafe_code)]
//! # iqb-data — the dataset tier of the IQB reproduction
//!
//! The IQB paper's bottom tier maps network requirements onto *"openly
//! available datasets"* — per-test feeds (M-Lab NDT, Cloudflare) and
//! pre-aggregated open data (Ookla) — and reduces each to one number per
//! metric per region: the 95th percentile. This crate is that tier:
//!
//! * [`record`] — the per-test record schema shared by all datasets
//!   (timestamp, region, dataset, download/upload/latency/loss).
//! * [`intern`] — `u32` [`intern::Symbol`] interning for region /
//!   dataset / tech values, so the ingest hot path allocates only on
//!   first sight of each distinct string.
//! * [`store`] — an indexed in-memory measurement store with region /
//!   dataset / time-range queries; columnar (struct-of-arrays over
//!   symbols) since the ingest optimization pass.
//! * [`ingest`] — chunked, optionally parallel CSV/JSONL readers that
//!   parse straight into columnar [`store::RecordBatch`]es with
//!   quarantine accounting identical to the serial readers.
//! * [`memscan`] — safe SWAR word-at-a-time byte scanning backing the
//!   readers' delimiter hot loops.
//! * [`stream`] — the memory-bounded segmented driver: same parser and
//!   accounting as [`ingest`], but batches are handed to a sink and
//!   dropped instead of materializing a store, so peak RSS is
//!   independent of the record count.
//! * [`agg_record`] — Ookla-style pre-aggregated rows (tile summaries)
//!   for datasets published without per-test data.
//! * [`aggregate`] — the aggregation step: records stream once through
//!   per-(dataset, metric) [`aggregate::MetricSink`]s → an
//!   [`iqb_core::input::AggregateInput`] ready for scoring. The percentile
//!   is configurable per metric (paper default: p95 everywhere), which
//!   powers the E7 ablation, and the estimator is selected by
//!   [`aggregate::AggregatorBackend`] (exact | t-digest | P²).
//! * [`source`] — the [`source::DataSource`] abstraction unifying per-test
//!   and aggregate-only datasets.
//! * [`csv_io`] / [`jsonl`] — interchange formats for measurement data.
//! * [`quarantine`] — the fault taxonomy, strict/lenient
//!   [`quarantine::IngestMode`], [`quarantine::QuarantineReport`]
//!   accounting and bounded [`quarantine::RetryPolicy`] that let ingest
//!   survive malformed feeds without losing track of a single drop.
//! * [`fault`] — the fault-injection harness (corrupting
//!   [`fault::ChaosSource`] proxy + byte/field [`fault::Mutation`]s)
//!   that adversarial tests use to prove the above.
//!
//! ## Example
//!
//! ```
//! use iqb_core::dataset::DatasetId;
//! use iqb_data::aggregate::AggregationSpec;
//! use iqb_data::record::{RegionId, TestRecord};
//! use iqb_data::store::MeasurementStore;
//!
//! let region = RegionId::new("metro-1").unwrap();
//! let mut store = MeasurementStore::new();
//! for i in 0..100 {
//!     store.push(TestRecord {
//!         timestamp: 1_000 + i,
//!         region: region.clone(),
//!         dataset: DatasetId::Ndt,
//!         download_mbps: 80.0 + i as f64,
//!         upload_mbps: 20.0,
//!         latency_ms: 25.0,
//!         loss_pct: Some(0.1),
//!         tech: None,
//!     }).unwrap();
//! }
//! let spec = AggregationSpec::paper_default();
//! let input = iqb_data::aggregate::aggregate_region(
//!     &store, &region, &[DatasetId::Ndt], &spec,
//! ).unwrap();
//! assert!(input.get(&DatasetId::Ndt, iqb_core::metric::Metric::Latency).is_some());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod agg_record;
pub mod aggregate;
pub mod clean;
pub mod csv_io;
pub mod error;
pub mod fault;
pub mod ingest;
pub mod intern;
pub mod jsonl;
pub mod memscan;
pub mod quarantine;
pub mod record;
pub mod source;
pub mod store;
pub mod stream;

pub use aggregate::{AggregationSpec, AggregatorBackend, MetricSink};
pub use error::DataError;
pub use quarantine::{FaultKind, IngestMode, QuarantineReport, RetryPolicy};
pub use record::{RegionId, TestRecord};
pub use store::MeasurementStore;
pub use stream::{stream_csv, stream_csv_path, StreamOptions, StreamSummary};
