//! The `DataSource` abstraction: one interface over per-test and
//! aggregate-only datasets.
//!
//! IQB's dataset tier mixes granularities — NDT and Cloudflare arrive as
//! individual tests, Ookla as pre-aggregated rows. A [`DataSource`]
//! contributes its cells for one region into a shared
//! [`AggregateInput`]; the pipeline composes one source per configured
//! dataset and scores the merged input.

use iqb_core::dataset::DatasetId;
use iqb_core::input::AggregateInput;
use std::sync::Arc;

use crate::agg_record::{reduce_rows, AggregateRow};
use crate::aggregate::{aggregate_region_filtered, AggregationSpec};
use crate::error::DataError;
use crate::record::RegionId;
use crate::store::{MeasurementStore, QueryFilter};

/// A dataset that can contribute aggregated metric cells for a region.
pub trait DataSource: Send + Sync {
    /// The dataset this source represents.
    fn dataset(&self) -> DatasetId;

    /// Regions this source has data for.
    fn regions(&self) -> Vec<RegionId>;

    /// Aggregates this source's data for `region` (narrowed by `filter`)
    /// into `input`. Contributing nothing (no data for the region) is not
    /// an error — the scoring normalization handles absent datasets — but
    /// sources should return [`DataError`] for structural problems.
    fn contribute(
        &self,
        region: &RegionId,
        filter: &QueryFilter,
        spec: &AggregationSpec,
        input: &mut AggregateInput,
    ) -> Result<(), DataError>;
}

/// A per-test source backed by a (shared) measurement store, narrowed to
/// one dataset.
pub struct PerTestSource {
    store: Arc<MeasurementStore>,
    dataset: DatasetId,
}

impl PerTestSource {
    /// Creates a source exposing `dataset`'s records inside `store`.
    pub fn new(store: Arc<MeasurementStore>, dataset: DatasetId) -> Self {
        PerTestSource { store, dataset }
    }
}

impl DataSource for PerTestSource {
    fn dataset(&self) -> DatasetId {
        self.dataset.clone()
    }

    fn regions(&self) -> Vec<RegionId> {
        self.store.regions()
    }

    fn contribute(
        &self,
        region: &RegionId,
        filter: &QueryFilter,
        spec: &AggregationSpec,
        input: &mut AggregateInput,
    ) -> Result<(), DataError> {
        match aggregate_region_filtered(
            &self.store,
            region,
            std::slice::from_ref(&self.dataset),
            spec,
            filter,
        ) {
            Ok(partial) => {
                for ((dataset, metric), cell) in partial.iter() {
                    match cell.provenance {
                        Some(p) => {
                            input.set_with_provenance(dataset.clone(), *metric, cell.value, p)
                        }
                        None => input.set(dataset.clone(), *metric, cell.value),
                    }
                }
                Ok(())
            }
            // No data for this region: contribute nothing.
            Err(DataError::NoData { .. }) => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// An aggregate-only source (Ookla-style rows).
pub struct AggregateSource {
    rows: Vec<AggregateRow>,
    dataset: DatasetId,
}

impl AggregateSource {
    /// Creates a source from pre-aggregated rows; rows for other datasets
    /// are rejected to catch wiring mistakes early.
    pub fn new(dataset: DatasetId, rows: Vec<AggregateRow>) -> Result<Self, DataError> {
        for row in &rows {
            if row.dataset != dataset {
                return Err(DataError::InvalidRecord(format!(
                    "row for {} fed to an {} source",
                    row.dataset, dataset
                )));
            }
            row.validate()?;
        }
        Ok(AggregateSource { rows, dataset })
    }

    /// Number of rows held.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the source holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl DataSource for AggregateSource {
    fn dataset(&self) -> DatasetId {
        self.dataset.clone()
    }

    fn regions(&self) -> Vec<RegionId> {
        let mut out: Vec<RegionId> = self.rows.iter().map(|r| r.region.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    fn contribute(
        &self,
        region: &RegionId,
        filter: &QueryFilter,
        spec: &AggregationSpec,
        input: &mut AggregateInput,
    ) -> Result<(), DataError> {
        let rows: Vec<AggregateRow> = self
            .rows
            .iter()
            .filter(|r| {
                &r.region == region
                    && filter.from.map_or(true, |from| r.period_start >= from)
                    && filter.to.map_or(true, |to| r.period_start < to)
            })
            .cloned()
            .collect();
        if rows.is_empty() {
            return Ok(());
        }
        // Aggregate rows carry period averages per metric; reduce with the
        // download quantile as the representative rank (documented epistemic
        // downgrade — see module docs in `agg_record`).
        let q = spec.quantile_for(iqb_core::metric::Metric::DownloadThroughput)?;
        reduce_rows(&rows, &self.dataset, q, input)
    }
}

/// Merges the contributions of several sources for one region.
pub fn merge_sources(
    sources: &[Box<dyn DataSource>],
    region: &RegionId,
    filter: &QueryFilter,
    spec: &AggregationSpec,
) -> Result<AggregateInput, DataError> {
    let mut input = AggregateInput::new();
    for source in sources {
        source.contribute(region, filter, spec, &mut input)?;
    }
    if input.is_empty() {
        return Err(DataError::NoData {
            context: format!("region {region} has no data in any source"),
        });
    }
    Ok(input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TestRecord;
    use iqb_core::metric::Metric;

    fn store_with(region: &RegionId, dataset: DatasetId, n: usize) -> MeasurementStore {
        let mut store = MeasurementStore::new();
        for i in 0..n {
            store
                .push(TestRecord {
                    timestamp: i as u64,
                    region: region.clone(),
                    dataset: dataset.clone(),
                    download_mbps: 100.0,
                    upload_mbps: 20.0,
                    latency_ms: 30.0,
                    loss_pct: Some(0.2),
                    tech: None,
                })
                .unwrap();
        }
        store
    }

    fn ookla_rows(region: &RegionId) -> Vec<AggregateRow> {
        vec![AggregateRow {
            region: region.clone(),
            dataset: DatasetId::Ookla,
            period_start: 0,
            avg_download_mbps: 150.0,
            avg_upload_mbps: 25.0,
            avg_latency_ms: 18.0,
            avg_loss_pct: None,
            tests: 500,
        }]
    }

    #[test]
    fn per_test_source_contributes_cells() {
        let region = RegionId::new("r").unwrap();
        let store = Arc::new(store_with(&region, DatasetId::Ndt, 20));
        let source = PerTestSource::new(store, DatasetId::Ndt);
        assert_eq!(source.dataset(), DatasetId::Ndt);
        assert_eq!(source.regions(), vec![region.clone()]);
        let mut input = AggregateInput::new();
        source
            .contribute(
                &region,
                &QueryFilter::all(),
                &AggregationSpec::paper_default(),
                &mut input,
            )
            .unwrap();
        assert_eq!(input.get(&DatasetId::Ndt, Metric::Latency), Some(30.0));
    }

    #[test]
    fn per_test_source_is_silent_for_unknown_region() {
        let region = RegionId::new("r").unwrap();
        let ghost = RegionId::new("ghost").unwrap();
        let store = Arc::new(store_with(&region, DatasetId::Ndt, 5));
        let source = PerTestSource::new(store, DatasetId::Ndt);
        let mut input = AggregateInput::new();
        source
            .contribute(
                &ghost,
                &QueryFilter::all(),
                &AggregationSpec::paper_default(),
                &mut input,
            )
            .unwrap();
        assert!(input.is_empty());
    }

    #[test]
    fn aggregate_source_rejects_foreign_rows() {
        let region = RegionId::new("r").unwrap();
        let rows = ookla_rows(&region);
        assert!(AggregateSource::new(DatasetId::Ndt, rows).is_err());
    }

    #[test]
    fn aggregate_source_contributes() {
        let region = RegionId::new("r").unwrap();
        let source = AggregateSource::new(DatasetId::Ookla, ookla_rows(&region)).unwrap();
        assert_eq!(source.len(), 1);
        let mut input = AggregateInput::new();
        source
            .contribute(
                &region,
                &QueryFilter::all(),
                &AggregationSpec::paper_default(),
                &mut input,
            )
            .unwrap();
        assert_eq!(
            input.get(&DatasetId::Ookla, Metric::DownloadThroughput),
            Some(150.0)
        );
        assert!(input.get(&DatasetId::Ookla, Metric::PacketLoss).is_none());
    }

    #[test]
    fn aggregate_source_respects_time_filter() {
        let region = RegionId::new("r").unwrap();
        let source = AggregateSource::new(DatasetId::Ookla, ookla_rows(&region)).unwrap();
        let mut input = AggregateInput::new();
        let filter = QueryFilter::all().time_range(100, 200); // row is at 0
        source
            .contribute(
                &region,
                &filter,
                &AggregationSpec::paper_default(),
                &mut input,
            )
            .unwrap();
        assert!(input.is_empty());
    }

    #[test]
    fn merge_combines_per_test_and_aggregate() {
        let region = RegionId::new("r").unwrap();
        let store = Arc::new(store_with(&region, DatasetId::Ndt, 20));
        let sources: Vec<Box<dyn DataSource>> = vec![
            Box::new(PerTestSource::new(store, DatasetId::Ndt)),
            Box::new(AggregateSource::new(DatasetId::Ookla, ookla_rows(&region)).unwrap()),
        ];
        let input = merge_sources(
            &sources,
            &region,
            &QueryFilter::all(),
            &AggregationSpec::paper_default(),
        )
        .unwrap();
        assert!(input
            .get(&DatasetId::Ndt, Metric::DownloadThroughput)
            .is_some());
        assert!(input
            .get(&DatasetId::Ookla, Metric::DownloadThroughput)
            .is_some());
    }

    #[test]
    fn merge_with_no_data_errors() {
        let ghost = RegionId::new("ghost").unwrap();
        let region = RegionId::new("r").unwrap();
        let store = Arc::new(store_with(&region, DatasetId::Ndt, 5));
        let sources: Vec<Box<dyn DataSource>> =
            vec![Box::new(PerTestSource::new(store, DatasetId::Ndt))];
        assert!(matches!(
            merge_sources(
                &sources,
                &ghost,
                &QueryFilter::all(),
                &AggregationSpec::paper_default()
            ),
            Err(DataError::NoData { .. })
        ));
    }
}
