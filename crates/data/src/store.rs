//! Indexed in-memory measurement store.
//!
//! [`MeasurementStore`] holds validated [`TestRecord`]s with a
//! (region, dataset) index so regional aggregation never scans unrelated
//! rows. A [`QueryFilter`] narrows by region, dataset, time range and
//! technology tag. The store is the substrate the pipeline's parallel
//! region workers read from (shared immutably across threads).

use std::collections::BTreeMap;

use iqb_core::dataset::DatasetId;
use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::record::{RegionId, TestRecord};

/// Query predicate over stored records. All populated fields must match.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryFilter {
    /// Restrict to one region.
    pub region: Option<RegionId>,
    /// Restrict to one dataset.
    pub dataset: Option<DatasetId>,
    /// Inclusive lower timestamp bound.
    pub from: Option<u64>,
    /// Exclusive upper timestamp bound.
    pub to: Option<u64>,
    /// Restrict to one technology tag.
    pub tech: Option<String>,
}

impl QueryFilter {
    /// A filter that matches everything.
    pub fn all() -> Self {
        Self::default()
    }

    /// Restricts to one region.
    pub fn region(mut self, region: RegionId) -> Self {
        self.region = Some(region);
        self
    }

    /// Restricts to one dataset.
    pub fn dataset(mut self, dataset: DatasetId) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Restricts to timestamps in `[from, to)`.
    pub fn time_range(mut self, from: u64, to: u64) -> Self {
        self.from = Some(from);
        self.to = Some(to);
        self
    }

    /// Restricts to one technology tag.
    pub fn tech(mut self, tech: impl Into<String>) -> Self {
        self.tech = Some(tech.into());
        self
    }

    /// Whether a record satisfies the filter.
    pub fn matches(&self, record: &TestRecord) -> bool {
        if let Some(region) = &self.region {
            if &record.region != region {
                return false;
            }
        }
        if let Some(dataset) = &self.dataset {
            if &record.dataset != dataset {
                return false;
            }
        }
        if let Some(from) = self.from {
            if record.timestamp < from {
                return false;
            }
        }
        if let Some(to) = self.to {
            if record.timestamp >= to {
                return false;
            }
        }
        if let Some(tech) = &self.tech {
            if record.tech.as_deref() != Some(tech.as_str()) {
                return false;
            }
        }
        true
    }
}

/// In-memory measurement store with a (region, dataset) index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeasurementStore {
    records: Vec<TestRecord>,
    /// (region, dataset) → indices into `records`.
    #[serde(skip)]
    index: BTreeMap<(RegionId, DatasetId), Vec<usize>>,
}

impl MeasurementStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates and inserts one record.
    pub fn push(&mut self, record: TestRecord) -> Result<(), DataError> {
        record.validate()?;
        let key = (record.region.clone(), record.dataset.clone());
        self.index.entry(key).or_default().push(self.records.len());
        self.records.push(record);
        Ok(())
    }

    /// Inserts many records, stopping at the first invalid one.
    pub fn extend<I: IntoIterator<Item = TestRecord>>(
        &mut self,
        records: I,
    ) -> Result<usize, DataError> {
        let mut inserted = 0;
        for r in records {
            self.push(r)?;
            inserted += 1;
        }
        Ok(inserted)
    }

    /// Rebuilds the index (needed after deserialization, which skips it).
    pub fn rebuild_index(&mut self) {
        self.index.clear();
        for (i, r) in self.records.iter().enumerate() {
            self.index
                .entry((r.region.clone(), r.dataset.clone()))
                .or_default()
                .push(i);
        }
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All distinct regions, sorted.
    pub fn regions(&self) -> Vec<RegionId> {
        let mut out: Vec<RegionId> = self.index.keys().map(|(r, _)| r.clone()).collect();
        out.dedup();
        out
    }

    /// All distinct datasets present, sorted.
    pub fn datasets(&self) -> Vec<DatasetId> {
        let mut out: Vec<DatasetId> = self.index.keys().map(|(_, d)| d.clone()).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Iterates records matching a filter.
    ///
    /// Uses the (region, dataset) index when both are pinned; falls back to
    /// a filtered scan otherwise.
    pub fn query<'a>(
        &'a self,
        filter: &'a QueryFilter,
    ) -> Box<dyn Iterator<Item = &'a TestRecord> + 'a> {
        if let (Some(region), Some(dataset)) = (&filter.region, &filter.dataset) {
            let key = (region.clone(), dataset.clone());
            match self.index.get(&key) {
                Some(indices) => Box::new(
                    indices
                        .iter()
                        .map(move |&i| &self.records[i])
                        .filter(move |r| filter.matches(r)),
                ),
                None => Box::new(std::iter::empty()),
            }
        } else {
            Box::new(self.records.iter().filter(move |r| filter.matches(r)))
        }
    }

    /// Number of records matching a filter.
    pub fn count(&self, filter: &QueryFilter) -> usize {
        self.query(filter).count()
    }

    /// Collects one metric column for records matching a filter.
    pub fn metric_column(
        &self,
        filter: &QueryFilter,
        metric: iqb_core::metric::Metric,
    ) -> Vec<f64> {
        self.query(filter)
            .filter_map(|r| r.metric_value(metric))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(region: &str, dataset: DatasetId, ts: u64, down: f64) -> TestRecord {
        TestRecord {
            timestamp: ts,
            region: RegionId::new(region).unwrap(),
            dataset,
            download_mbps: down,
            upload_mbps: 10.0,
            latency_ms: 20.0,
            loss_pct: Some(0.1),
            tech: Some("cable".into()),
        }
    }

    fn sample_store() -> MeasurementStore {
        let mut store = MeasurementStore::new();
        store.push(record("east", DatasetId::Ndt, 10, 100.0)).unwrap();
        store.push(record("east", DatasetId::Ookla, 20, 110.0)).unwrap();
        store.push(record("west", DatasetId::Ndt, 30, 50.0)).unwrap();
        store.push(record("west", DatasetId::Ndt, 40, 55.0)).unwrap();
        store
    }

    #[test]
    fn push_validates() {
        let mut store = MeasurementStore::new();
        let mut bad = record("east", DatasetId::Ndt, 0, 100.0);
        bad.latency_ms = -1.0;
        assert!(store.push(bad).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn regions_and_datasets() {
        let store = sample_store();
        let regions = store.regions();
        assert_eq!(
            regions,
            vec![
                RegionId::new("east").unwrap(),
                RegionId::new("west").unwrap()
            ]
        );
        let datasets = store.datasets();
        assert!(datasets.contains(&DatasetId::Ndt));
        assert!(datasets.contains(&DatasetId::Ookla));
        assert_eq!(datasets.len(), 2);
    }

    #[test]
    fn indexed_query_matches_scan() {
        let store = sample_store();
        let filter = QueryFilter::all()
            .region(RegionId::new("west").unwrap())
            .dataset(DatasetId::Ndt);
        let indexed: Vec<_> = store.query(&filter).collect();
        let scanned: Vec<_> = store
            .records
            .iter()
            .filter(|r| filter.matches(r))
            .collect();
        assert_eq!(indexed, scanned);
        assert_eq!(indexed.len(), 2);
    }

    #[test]
    fn time_range_is_half_open() {
        let store = sample_store();
        let filter = QueryFilter::all().time_range(10, 30);
        let matched: Vec<u64> = store.query(&filter).map(|r| r.timestamp).collect();
        assert_eq!(matched, vec![10, 20]);
    }

    #[test]
    fn tech_filter() {
        let mut store = sample_store();
        let mut fiber = record("east", DatasetId::Ndt, 99, 900.0);
        fiber.tech = Some("fiber".into());
        store.push(fiber).unwrap();
        let filter = QueryFilter::all().tech("fiber");
        assert_eq!(store.count(&filter), 1);
        let none = QueryFilter::all().tech("dsl");
        assert_eq!(store.count(&none), 0);
    }

    #[test]
    fn metric_column_skips_missing_loss() {
        let mut store = MeasurementStore::new();
        let mut r = record("east", DatasetId::Ookla, 0, 100.0);
        r.loss_pct = None;
        store.push(r).unwrap();
        store.push(record("east", DatasetId::Ookla, 1, 100.0)).unwrap();
        let filter = QueryFilter::all();
        let loss = store.metric_column(&filter, iqb_core::metric::Metric::PacketLoss);
        assert_eq!(loss, vec![0.1]);
        let down = store.metric_column(&filter, iqb_core::metric::Metric::DownloadThroughput);
        assert_eq!(down.len(), 2);
    }

    #[test]
    fn empty_region_dataset_pair_yields_empty_iterator() {
        let store = sample_store();
        let filter = QueryFilter::all()
            .region(RegionId::new("north").unwrap())
            .dataset(DatasetId::Ndt);
        assert_eq!(store.count(&filter), 0);
    }

    #[test]
    fn serde_round_trip_with_index_rebuild() {
        let store = sample_store();
        let json = serde_json::to_string(&store).unwrap();
        let mut back: MeasurementStore = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.len(), store.len());
        let filter = QueryFilter::all()
            .region(RegionId::new("west").unwrap())
            .dataset(DatasetId::Ndt);
        assert_eq!(back.count(&filter), store.count(&filter));
    }
}
