//! Indexed in-memory measurement store, columnar since the ingest
//! optimization pass.
//!
//! [`MeasurementStore`] holds validated rows in struct-of-arrays form:
//! one `Vec` per field, with region/dataset/tech resolved to interned
//! [`Symbol`]s (see [`crate::intern`]) and a `(Symbol, Symbol)` index so
//! regional aggregation never scans unrelated rows. Query results come
//! back as cheap [`RowRef`] views; the string-typed API ([`RegionId`],
//! [`DatasetId`]) is preserved at the boundary by table lookup, and the
//! serde representation is still `{"records": [...]}` so serialized
//! stores from the row-of-structs era round-trip unchanged.
//!
//! [`RecordBatch`] is the unit the chunked parallel readers
//! ([`crate::ingest`]) emit: a chunk-local columnar buffer whose symbols
//! [`MeasurementStore::append_batch`] remaps onto the store's global
//! tables. Because both sides intern in first-seen order, appending the
//! batches in chunk order reproduces the exact store a serial pass over
//! the same rows would have built — regardless of how many threads
//! parsed them.

use std::collections::BTreeMap;

use iqb_core::dataset::DatasetId;
use iqb_core::metric::Metric;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

use crate::error::DataError;
use crate::intern::{DatasetTable, Interner, RegionTable, Symbol};
use crate::record::{RegionId, TestRecord};

/// Query predicate over stored records. All populated fields must match.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryFilter {
    /// Restrict to one region.
    pub region: Option<RegionId>,
    /// Restrict to one dataset.
    pub dataset: Option<DatasetId>,
    /// Inclusive lower timestamp bound.
    pub from: Option<u64>,
    /// Exclusive upper timestamp bound.
    pub to: Option<u64>,
    /// Restrict to one technology tag.
    pub tech: Option<String>,
}

impl QueryFilter {
    /// A filter that matches everything.
    pub fn all() -> Self {
        Self::default()
    }

    /// Restricts to one region.
    pub fn region(mut self, region: RegionId) -> Self {
        self.region = Some(region);
        self
    }

    /// Restricts to one dataset.
    pub fn dataset(mut self, dataset: DatasetId) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Restricts to timestamps in `[from, to)`.
    pub fn time_range(mut self, from: u64, to: u64) -> Self {
        self.from = Some(from);
        self.to = Some(to);
        self
    }

    /// Restricts to one technology tag.
    pub fn tech(mut self, tech: impl Into<String>) -> Self {
        self.tech = Some(tech.into());
        self
    }

    /// Whether a record satisfies the filter.
    pub fn matches(&self, record: &TestRecord) -> bool {
        if let Some(region) = &self.region {
            if &record.region != region {
                return false;
            }
        }
        if let Some(dataset) = &self.dataset {
            if &record.dataset != dataset {
                return false;
            }
        }
        if let Some(from) = self.from {
            if record.timestamp < from {
                return false;
            }
        }
        if let Some(to) = self.to {
            if record.timestamp >= to {
                return false;
            }
        }
        if let Some(tech) = &self.tech {
            if record.tech.as_deref() != Some(tech.as_str()) {
                return false;
            }
        }
        true
    }
}

/// Sentinel in the tech column for rows without a technology tag.
const NO_TECH: u32 = u32::MAX;

/// One validated row headed into columnar storage.
#[derive(Debug, Clone, Copy)]
struct RawRow {
    timestamp: u64,
    region: Symbol,
    dataset: Symbol,
    download: f64,
    upload: f64,
    latency: f64,
    loss: Option<f64>,
    tech: u32,
}

/// Struct-of-arrays storage. `loss` pairs with a validity bitmask
/// (absent slots store 0.0); `techs` stores [`NO_TECH`] for untagged
/// rows.
#[derive(Debug, Clone, Default)]
struct Columns {
    timestamps: Vec<u64>,
    regions: Vec<Symbol>,
    datasets: Vec<Symbol>,
    download: Vec<f64>,
    upload: Vec<f64>,
    latency: Vec<f64>,
    loss: Vec<f64>,
    loss_valid: Vec<u64>,
    techs: Vec<u32>,
}

impl Columns {
    fn len(&self) -> usize {
        self.timestamps.len()
    }

    fn push(&mut self, row: RawRow) {
        let at = self.timestamps.len();
        if at % 64 == 0 {
            self.loss_valid.push(0);
        }
        match row.loss {
            Some(loss) => {
                self.loss.push(loss);
                self.loss_valid[at / 64] |= 1u64 << (at % 64);
            }
            None => self.loss.push(0.0),
        }
        self.timestamps.push(row.timestamp);
        self.regions.push(row.region);
        self.datasets.push(row.dataset);
        self.download.push(row.download);
        self.upload.push(row.upload);
        self.latency.push(row.latency);
        self.techs.push(row.tech);
    }

    fn loss_at(&self, row: usize) -> Option<f64> {
        if (self.loss_valid[row / 64] >> (row % 64)) & 1 == 1 {
            Some(self.loss[row])
        } else {
            None
        }
    }
}

/// One validated row headed into a [`RecordBatch`].
///
/// Symbols must come from the batch's own interning methods; metric
/// values must already satisfy [`crate::record::validate_metrics`].
#[derive(Debug, Clone, Copy)]
pub struct BatchRow {
    /// Measurement time, seconds since the campaign epoch.
    pub timestamp: u64,
    /// Region symbol from [`RecordBatch::intern_region`].
    pub region: Symbol,
    /// Dataset symbol from [`RecordBatch::intern_dataset_token`].
    pub dataset: Symbol,
    /// Download throughput in Mb/s.
    pub download_mbps: f64,
    /// Upload throughput in Mb/s.
    pub upload_mbps: f64,
    /// Round-trip latency in ms.
    pub latency_ms: f64,
    /// Packet loss in percent, when reported.
    pub loss_pct: Option<f64>,
    /// Tech symbol from [`RecordBatch::intern_tech`], when tagged.
    pub tech: Option<Symbol>,
}

/// A chunk-local columnar buffer of validated rows, with its own
/// interning tables.
///
/// Parser workers fill one batch per input chunk without touching shared
/// state; [`MeasurementStore::append_batch`] then remaps the chunk-local
/// symbols onto the store's global tables in chunk order, which makes
/// the result independent of how the input was chunked.
#[derive(Debug, Clone, Default)]
pub struct RecordBatch {
    regions: RegionTable,
    datasets: DatasetTable,
    techs: Interner,
    cols: Columns,
}

impl RecordBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows buffered.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.cols.len() == 0
    }

    /// Interns a region name, validating it exactly like
    /// [`RegionId::new`].
    pub fn intern_region(&mut self, name: &str) -> Result<Symbol, DataError> {
        self.regions.intern_str(name)
    }

    /// Interns a dataset flat-file token, parsing it exactly like
    /// [`crate::csv_io::parse_dataset_token`].
    pub fn intern_dataset_token(&mut self, token: &str) -> Result<Symbol, DataError> {
        self.datasets.intern_token(token)
    }

    /// Interns a dataset id directly (the JSONL path, which deserializes
    /// full [`DatasetId`]s).
    pub fn intern_dataset(&mut self, dataset: &DatasetId) -> Symbol {
        self.datasets.intern(dataset)
    }

    /// Interns a technology tag.
    pub fn intern_tech(&mut self, tech: &str) -> Symbol {
        self.techs.intern(tech)
    }

    /// Appends one validated row.
    pub fn push_row(&mut self, row: BatchRow) {
        self.cols.push(RawRow {
            timestamp: row.timestamp,
            region: row.region,
            dataset: row.dataset,
            download: row.download_mbps,
            upload: row.upload_mbps,
            latency: row.latency_ms,
            loss: row.loss_pct,
            tech: row.tech.map_or(NO_TECH, |t| t.index() as u32),
        });
    }

    /// Distinct regions interned into this batch, in first-seen order —
    /// index with [`Symbol::index`] from [`region_column`](Self::region_column).
    pub fn interned_regions(&self) -> &[RegionId] {
        self.regions.items()
    }

    /// Distinct datasets interned into this batch, in first-seen order —
    /// index with [`Symbol::index`] from [`dataset_column`](Self::dataset_column).
    pub fn interned_datasets(&self) -> &[DatasetId] {
        self.datasets.items()
    }

    /// Per-row chunk-local region symbols, in input order.
    ///
    /// Streaming consumers (the pipeline session's batch ingest) group
    /// on runs of equal `(region, dataset)` symbol pairs so the per-row
    /// cost is a slice read, not a map lookup.
    pub fn region_column(&self) -> &[Symbol] {
        &self.cols.regions
    }

    /// Per-row chunk-local dataset symbols, in input order.
    pub fn dataset_column(&self) -> &[Symbol] {
        &self.cols.datasets
    }

    /// Measurement time of one row, seconds since the campaign epoch.
    pub fn timestamp_at(&self, row: usize) -> u64 {
        self.cols.timestamps[row]
    }

    /// The value of one metric on one row (`None` for unreported loss).
    pub fn metric_at(&self, row: usize, metric: Metric) -> Option<f64> {
        match metric {
            Metric::DownloadThroughput => Some(self.cols.download[row]),
            Metric::UploadThroughput => Some(self.cols.upload[row]),
            Metric::Latency => Some(self.cols.latency[row]),
            Metric::PacketLoss => self.cols.loss_at(row),
        }
    }

    /// Appends one already-validated [`TestRecord`].
    pub fn push_record(&mut self, record: &TestRecord) {
        let region = self.regions.intern(&record.region);
        let dataset = self.datasets.intern(&record.dataset);
        let tech = record.tech.as_deref().map(|t| self.techs.intern(t));
        self.push_row(BatchRow {
            timestamp: record.timestamp,
            region,
            dataset,
            download_mbps: record.download_mbps,
            upload_mbps: record.upload_mbps,
            latency_ms: record.latency_ms,
            loss_pct: record.loss_pct,
            tech,
        });
    }

    /// Copies one row from another batch, re-interning its symbols into
    /// this batch's tables. The registry's streaming submit path routes
    /// a parsed batch's rows to their owning shards this way — no
    /// [`TestRecord`] materialization, allocations only on first sight
    /// of each distinct region/dataset/tech.
    pub fn push_row_from(&mut self, source: &RecordBatch, row: usize) {
        let region = self
            .regions
            .intern(source.regions.resolve(source.cols.regions[row]));
        let dataset = self
            .datasets
            .intern(source.datasets.resolve(source.cols.datasets[row]));
        let tech = match source.cols.techs[row] {
            NO_TECH => None,
            t => Some(
                self.techs
                    .intern(source.techs.resolve(Symbol::from_index(t as usize))),
            ),
        };
        self.push_row(BatchRow {
            timestamp: source.cols.timestamps[row],
            region,
            dataset,
            download_mbps: source.cols.download[row],
            upload_mbps: source.cols.upload[row],
            latency_ms: source.cols.latency[row],
            loss_pct: source.cols.loss_at(row),
            tech,
        });
    }

    /// Materializes one row as an owned record — symbol lookups plus
    /// clones, for consumers that need the string-typed view (e.g. the
    /// registry's windowed-session twin).
    pub fn record_at(&self, row: usize) -> TestRecord {
        TestRecord {
            timestamp: self.cols.timestamps[row],
            region: self.regions.resolve(self.cols.regions[row]).clone(),
            dataset: self.datasets.resolve(self.cols.datasets[row]).clone(),
            download_mbps: self.cols.download[row],
            upload_mbps: self.cols.upload[row],
            latency_ms: self.cols.latency[row],
            loss_pct: self.cols.loss_at(row),
            tech: match self.cols.techs[row] {
                NO_TECH => None,
                t => Some(self.techs.resolve(Symbol::from_index(t as usize)).to_string()),
            },
        }
    }
}

/// A borrowed view of one stored row.
///
/// `Copy`-cheap: two machine words. Field accessors resolve symbols back
/// to the owning store's tables; [`to_record`](Self::to_record)
/// materializes an owned [`TestRecord`] for callers that need one.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    store: &'a MeasurementStore,
    row: u32,
}

impl<'a> RowRef<'a> {
    /// Measurement time, seconds since the campaign epoch.
    pub fn timestamp(self) -> u64 {
        self.store.cols.timestamps[self.row as usize]
    }

    /// Region the subscriber belongs to.
    pub fn region(self) -> &'a RegionId {
        self.store
            .regions
            .resolve(self.store.cols.regions[self.row as usize])
    }

    /// Which dataset (methodology) produced the test.
    pub fn dataset(self) -> &'a DatasetId {
        self.store
            .datasets
            .resolve(self.store.cols.datasets[self.row as usize])
    }

    /// Download throughput in Mb/s.
    pub fn download_mbps(self) -> f64 {
        self.store.cols.download[self.row as usize]
    }

    /// Upload throughput in Mb/s.
    pub fn upload_mbps(self) -> f64 {
        self.store.cols.upload[self.row as usize]
    }

    /// Round-trip latency in ms.
    pub fn latency_ms(self) -> f64 {
        self.store.cols.latency[self.row as usize]
    }

    /// Packet loss in percent; `None` when the methodology does not
    /// report it.
    pub fn loss_pct(self) -> Option<f64> {
        self.store.cols.loss_at(self.row as usize)
    }

    /// Access-technology tag, when present.
    pub fn tech(self) -> Option<&'a str> {
        match self.store.cols.techs[self.row as usize] {
            NO_TECH => None,
            t => Some(self.store.techs.resolve(Symbol::from_index(t as usize))),
        }
    }

    /// The value of one metric on this row (`None` for unreported loss).
    pub fn metric_value(self, metric: Metric) -> Option<f64> {
        match metric {
            Metric::DownloadThroughput => Some(self.download_mbps()),
            Metric::UploadThroughput => Some(self.upload_mbps()),
            Metric::Latency => Some(self.latency_ms()),
            Metric::PacketLoss => self.loss_pct(),
        }
    }

    /// Materializes an owned [`TestRecord`].
    pub fn to_record(self) -> TestRecord {
        TestRecord {
            timestamp: self.timestamp(),
            region: self.region().clone(),
            dataset: self.dataset().clone(),
            download_mbps: self.download_mbps(),
            upload_mbps: self.upload_mbps(),
            latency_ms: self.latency_ms(),
            loss_pct: self.loss_pct(),
            tech: self.tech().map(str::to_string),
        }
    }
}

impl std::fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowRef")
            .field("timestamp", &self.timestamp())
            .field("region", self.region())
            .field("dataset", self.dataset())
            .field("download_mbps", &self.download_mbps())
            .field("upload_mbps", &self.upload_mbps())
            .field("latency_ms", &self.latency_ms())
            .field("loss_pct", &self.loss_pct())
            .field("tech", &self.tech())
            .finish()
    }
}

/// A [`QueryFilter`] pre-resolved to symbols. `None` for a field means
/// unconstrained; a constrained field naming a value the store has never
/// interned resolves the whole query to the empty set before it starts.
#[derive(Debug, Clone, Copy)]
struct ResolvedFilter {
    region: Option<Symbol>,
    dataset: Option<Symbol>,
    from: Option<u64>,
    to: Option<u64>,
    tech: Option<u32>,
}

/// In-memory columnar measurement store with a (region, dataset) index.
#[derive(Debug, Clone, Default)]
pub struct MeasurementStore {
    regions: RegionTable,
    datasets: DatasetTable,
    techs: Interner,
    cols: Columns,
    /// (region, dataset) → row indices, in insertion order.
    index: BTreeMap<(Symbol, Symbol), Vec<u32>>,
}

impl MeasurementStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates and inserts one record.
    pub fn push(&mut self, record: TestRecord) -> Result<(), DataError> {
        self.push_ref(&record)
    }

    /// Validates and inserts one record from a borrow, allocating only
    /// for first-seen region/dataset/tech values.
    pub fn push_ref(&mut self, record: &TestRecord) -> Result<(), DataError> {
        record.validate()?;
        let region = self.regions.intern(&record.region);
        let dataset = self.datasets.intern(&record.dataset);
        let tech = match record.tech.as_deref() {
            Some(t) => self.techs.intern(t).index() as u32,
            None => NO_TECH,
        };
        let row = self.cols.len() as u32;
        self.cols.push(RawRow {
            timestamp: record.timestamp,
            region,
            dataset,
            download: record.download_mbps,
            upload: record.upload_mbps,
            latency: record.latency_ms,
            loss: record.loss_pct,
            tech,
        });
        self.index.entry((region, dataset)).or_default().push(row);
        Ok(())
    }

    /// Inserts many records, stopping at the first invalid one.
    pub fn extend<I: IntoIterator<Item = TestRecord>>(
        &mut self,
        records: I,
    ) -> Result<usize, DataError> {
        let mut inserted = 0;
        for r in records {
            self.push_ref(&r)?;
            inserted += 1;
        }
        Ok(inserted)
    }

    /// Appends a parsed [`RecordBatch`], remapping its chunk-local
    /// symbols onto this store's tables.
    ///
    /// Batches appended in chunk order reproduce the store a serial pass
    /// over the concatenated rows would build, because both sides intern
    /// in first-seen order. Rows are trusted as validated (the batch API
    /// only admits validated rows).
    pub fn append_batch(&mut self, batch: &RecordBatch) {
        let region_map: Vec<Symbol> = batch
            .regions
            .items()
            .iter()
            .map(|r| self.regions.intern(r))
            .collect();
        let dataset_map: Vec<Symbol> = batch
            .datasets
            .items()
            .iter()
            .map(|d| self.datasets.intern(d))
            .collect();
        let tech_map: Vec<u32> = batch
            .techs
            .items()
            .map(|t| self.techs.intern(t).index() as u32)
            .collect();
        for i in 0..batch.cols.len() {
            let region = region_map[batch.cols.regions[i].index()];
            let dataset = dataset_map[batch.cols.datasets[i].index()];
            let tech = match batch.cols.techs[i] {
                NO_TECH => NO_TECH,
                t => tech_map[t as usize],
            };
            let row = self.cols.len() as u32;
            self.cols.push(RawRow {
                timestamp: batch.cols.timestamps[i],
                region,
                dataset,
                download: batch.cols.download[i],
                upload: batch.cols.upload[i],
                latency: batch.cols.latency[i],
                loss: batch.cols.loss_at(i),
                tech,
            });
            self.index.entry((region, dataset)).or_default().push(row);
        }
    }

    /// Retained for API compatibility with the row-of-structs store,
    /// whose serde path skipped the index. The columnar store maintains
    /// its index on every insertion (including deserialization), so this
    /// is a no-op.
    pub fn rebuild_index(&mut self) {}

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.cols.len() == 0
    }

    /// All distinct regions, sorted.
    pub fn regions(&self) -> Vec<RegionId> {
        let mut out = self.regions.items().to_vec();
        out.sort();
        out
    }

    /// All distinct datasets present, sorted.
    pub fn datasets(&self) -> Vec<DatasetId> {
        let mut out = self.datasets.items().to_vec();
        out.sort();
        out
    }

    fn row(&self, row: u32) -> RowRef<'_> {
        RowRef { store: self, row }
    }

    /// Resolves a filter's string fields to symbols; `None` when some
    /// constrained field can never match.
    fn resolve_filter(&self, filter: &QueryFilter) -> Option<ResolvedFilter> {
        let region = match &filter.region {
            Some(r) => Some(self.regions.get(r)?),
            None => None,
        };
        let dataset = match &filter.dataset {
            Some(d) => Some(self.datasets.get(d)?),
            None => None,
        };
        let tech = match &filter.tech {
            Some(t) => Some(self.techs.get(t)?.index() as u32),
            None => None,
        };
        Some(ResolvedFilter {
            region,
            dataset,
            from: filter.from,
            to: filter.to,
            tech,
        })
    }

    fn row_matches(&self, row: usize, f: ResolvedFilter) -> bool {
        if let Some(region) = f.region {
            if self.cols.regions[row] != region {
                return false;
            }
        }
        if let Some(dataset) = f.dataset {
            if self.cols.datasets[row] != dataset {
                return false;
            }
        }
        let ts = self.cols.timestamps[row];
        if let Some(from) = f.from {
            if ts < from {
                return false;
            }
        }
        if let Some(to) = f.to {
            if ts >= to {
                return false;
            }
        }
        if let Some(tech) = f.tech {
            if self.cols.techs[row] != tech {
                return false;
            }
        }
        true
    }

    fn iter_resolved(&self, f: ResolvedFilter) -> Box<dyn Iterator<Item = RowRef<'_>> + '_> {
        if let (Some(region), Some(dataset)) = (f.region, f.dataset) {
            return match self.index.get(&(region, dataset)) {
                Some(rows) => Box::new(
                    rows.iter()
                        .filter(move |&&i| self.row_matches(i as usize, f))
                        .map(move |&i| self.row(i)),
                ),
                None => Box::new(std::iter::empty()),
            };
        }
        Box::new(
            (0..self.cols.len() as u32)
                .filter(move |&i| self.row_matches(i as usize, f))
                .map(move |i| self.row(i)),
        )
    }

    /// Iterates rows matching a filter.
    ///
    /// The filter is resolved to symbols up front — a filter naming a
    /// region/dataset/tech the store has never seen yields an empty
    /// iterator without scanning — and the (region, dataset) index is
    /// used when both are pinned.
    pub fn query<'a>(&'a self, filter: &QueryFilter) -> Box<dyn Iterator<Item = RowRef<'a>> + 'a> {
        match self.resolve_filter(filter) {
            Some(f) => self.iter_resolved(f),
            None => Box::new(std::iter::empty()),
        }
    }

    /// Iterates one (region, dataset) cell under `base`'s residual
    /// time/tech constraints, ignoring `base`'s own region/dataset
    /// fields.
    ///
    /// This is the aggregation hot path: the per-cell loop pins region
    /// and dataset directly instead of cloning a [`QueryFilter`] (and
    /// its heap-backed ids) per cell.
    pub fn query_cell<'a>(
        &'a self,
        region: &RegionId,
        dataset: &DatasetId,
        base: &QueryFilter,
    ) -> Box<dyn Iterator<Item = RowRef<'a>> + 'a> {
        let (Some(region), Some(dataset)) = (self.regions.get(region), self.datasets.get(dataset))
        else {
            return Box::new(std::iter::empty());
        };
        let tech = match &base.tech {
            Some(t) => match self.techs.get(t) {
                Some(sym) => Some(sym.index() as u32),
                None => return Box::new(std::iter::empty()),
            },
            None => None,
        };
        self.iter_resolved(ResolvedFilter {
            region: Some(region),
            dataset: Some(dataset),
            from: base.from,
            to: base.to,
            tech,
        })
    }

    /// Number of records matching a filter.
    pub fn count(&self, filter: &QueryFilter) -> usize {
        self.query(filter).count()
    }

    /// Collects one metric column for records matching a filter.
    pub fn metric_column(&self, filter: &QueryFilter, metric: Metric) -> Vec<f64> {
        self.query(filter)
            .filter_map(|r| r.metric_value(metric))
            .collect()
    }
}

impl PartialEq for MeasurementStore {
    /// Row-wise semantic equality: same records in the same order,
    /// independent of symbol numbering.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && (0..self.len() as u32).all(|i| {
                let (a, b) = (self.row(i), other.row(i));
                a.timestamp() == b.timestamp()
                    && a.region() == b.region()
                    && a.dataset() == b.dataset()
                    && a.download_mbps() == b.download_mbps()
                    && a.upload_mbps() == b.upload_mbps()
                    && a.latency_ms() == b.latency_ms()
                    && a.loss_pct() == b.loss_pct()
                    && a.tech() == b.tech()
            })
    }
}

impl Serialize for MeasurementStore {
    /// Serializes as `{"records": [...]}` — the same shape the
    /// row-of-structs store derived, so persisted stores stay
    /// interchangeable across the columnar migration.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::{SerializeSeq, SerializeStruct};

        struct Rows<'a>(&'a MeasurementStore);
        impl Serialize for Rows<'_> {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
                for i in 0..self.0.len() as u32 {
                    seq.serialize_element(&self.0.row(i).to_record())?;
                }
                seq.end()
            }
        }

        let mut s = serializer.serialize_struct("MeasurementStore", 1)?;
        s.serialize_field("records", &Rows(self))?;
        s.end()
    }
}

impl<'de> Deserialize<'de> for MeasurementStore {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Shim {
            records: Vec<TestRecord>,
        }
        let shim = Shim::deserialize(deserializer)?;
        let mut store = MeasurementStore::new();
        store
            .extend(shim.records)
            .map_err(serde::de::Error::custom)?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(region: &str, dataset: DatasetId, ts: u64, down: f64) -> TestRecord {
        TestRecord {
            timestamp: ts,
            region: RegionId::new(region).unwrap(),
            dataset,
            download_mbps: down,
            upload_mbps: 10.0,
            latency_ms: 20.0,
            loss_pct: Some(0.1),
            tech: Some("cable".into()),
        }
    }

    fn sample_store() -> MeasurementStore {
        let mut store = MeasurementStore::new();
        store
            .push(record("east", DatasetId::Ndt, 10, 100.0))
            .unwrap();
        store
            .push(record("east", DatasetId::Ookla, 20, 110.0))
            .unwrap();
        store
            .push(record("west", DatasetId::Ndt, 30, 50.0))
            .unwrap();
        store
            .push(record("west", DatasetId::Ndt, 40, 55.0))
            .unwrap();
        store
    }

    #[test]
    fn push_validates() {
        let mut store = MeasurementStore::new();
        let mut bad = record("east", DatasetId::Ndt, 0, 100.0);
        bad.latency_ms = -1.0;
        assert!(store.push(bad).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn regions_and_datasets() {
        let store = sample_store();
        let regions = store.regions();
        assert_eq!(
            regions,
            vec![
                RegionId::new("east").unwrap(),
                RegionId::new("west").unwrap()
            ]
        );
        let datasets = store.datasets();
        assert!(datasets.contains(&DatasetId::Ndt));
        assert!(datasets.contains(&DatasetId::Ookla));
        assert_eq!(datasets.len(), 2);
    }

    #[test]
    fn indexed_query_matches_scan() {
        let store = sample_store();
        let filter = QueryFilter::all()
            .region(RegionId::new("west").unwrap())
            .dataset(DatasetId::Ndt);
        let indexed: Vec<TestRecord> = store.query(&filter).map(|r| r.to_record()).collect();
        let scanned: Vec<TestRecord> = store
            .query(&QueryFilter::all())
            .map(|r| r.to_record())
            .filter(|r| filter.matches(r))
            .collect();
        assert_eq!(indexed, scanned);
        assert_eq!(indexed.len(), 2);
    }

    #[test]
    fn time_range_is_half_open() {
        let store = sample_store();
        let filter = QueryFilter::all().time_range(10, 30);
        let matched: Vec<u64> = store.query(&filter).map(|r| r.timestamp()).collect();
        assert_eq!(matched, vec![10, 20]);
    }

    #[test]
    fn tech_filter() {
        let mut store = sample_store();
        let mut fiber = record("east", DatasetId::Ndt, 99, 900.0);
        fiber.tech = Some("fiber".into());
        store.push(fiber).unwrap();
        let filter = QueryFilter::all().tech("fiber");
        assert_eq!(store.count(&filter), 1);
        let none = QueryFilter::all().tech("dsl");
        assert_eq!(store.count(&none), 0);
    }

    #[test]
    fn metric_column_skips_missing_loss() {
        let mut store = MeasurementStore::new();
        let mut r = record("east", DatasetId::Ookla, 0, 100.0);
        r.loss_pct = None;
        store.push(r).unwrap();
        store
            .push(record("east", DatasetId::Ookla, 1, 100.0))
            .unwrap();
        let filter = QueryFilter::all();
        let loss = store.metric_column(&filter, Metric::PacketLoss);
        assert_eq!(loss, vec![0.1]);
        let down = store.metric_column(&filter, Metric::DownloadThroughput);
        assert_eq!(down.len(), 2);
    }

    #[test]
    fn empty_region_dataset_pair_yields_empty_iterator() {
        let store = sample_store();
        let filter = QueryFilter::all()
            .region(RegionId::new("north").unwrap())
            .dataset(DatasetId::Ndt);
        assert_eq!(store.count(&filter), 0);
    }

    #[test]
    fn serde_round_trip_with_index_rebuild() {
        let store = sample_store();
        let json = serde_json::to_string(&store).unwrap();
        assert!(json.starts_with("{\"records\":["), "stable shape: {json}");
        let mut back: MeasurementStore = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.len(), store.len());
        let filter = QueryFilter::all()
            .region(RegionId::new("west").unwrap())
            .dataset(DatasetId::Ndt);
        assert_eq!(back.count(&filter), store.count(&filter));
        assert_eq!(back, store);
    }

    #[test]
    fn row_ref_round_trips_every_field() {
        let mut store = MeasurementStore::new();
        let mut original = record("east", DatasetId::Custom("probes".into()), 7, 12.5);
        original.loss_pct = None;
        original.tech = None;
        store.push_ref(&original).unwrap();
        store.push(record("west", DatasetId::Ndt, 8, 90.0)).unwrap();
        let rows: Vec<TestRecord> = store
            .query(&QueryFilter::all())
            .map(|r| r.to_record())
            .collect();
        assert_eq!(rows[0], original);
        assert_eq!(rows[1].tech.as_deref(), Some("cable"));
        assert_eq!(rows[1].loss_pct, Some(0.1));
    }

    #[test]
    fn loss_validity_mask_crosses_word_boundaries() {
        let mut store = MeasurementStore::new();
        // 130 rows straddle three 64-bit mask words; every odd row has
        // no loss value.
        for i in 0..130u64 {
            let mut r = record("east", DatasetId::Ndt, i, 10.0);
            r.loss_pct = if i % 2 == 0 {
                Some(i as f64 / 10.0)
            } else {
                None
            };
            store.push(r).unwrap();
        }
        let with_loss = store.metric_column(&QueryFilter::all(), Metric::PacketLoss);
        assert_eq!(with_loss.len(), 65);
        let rows: Vec<TestRecord> = store
            .query(&QueryFilter::all())
            .map(|r| r.to_record())
            .collect();
        assert_eq!(rows[64].loss_pct, Some(6.4));
        assert_eq!(rows[65].loss_pct, None);
    }

    #[test]
    fn append_batch_is_chunking_invariant() {
        let records: Vec<TestRecord> = vec![
            record("b", DatasetId::Ookla, 1, 10.0),
            record("a", DatasetId::Ndt, 2, 20.0),
            record("b", DatasetId::Ndt, 3, 30.0),
            record("c", DatasetId::Custom("probes".into()), 4, 40.0),
            record("a", DatasetId::Ookla, 5, 50.0),
        ];
        let serial = {
            let mut store = MeasurementStore::new();
            store.extend(records.iter().cloned()).unwrap();
            store
        };
        for split in 1..records.len() {
            let mut store = MeasurementStore::new();
            for chunk in [&records[..split], &records[split..]] {
                let mut batch = RecordBatch::new();
                for r in chunk {
                    batch.push_record(r);
                }
                store.append_batch(&batch);
            }
            assert_eq!(store, serial, "split at {split}");
            assert_eq!(store.regions(), serial.regions());
            assert_eq!(store.datasets(), serial.datasets());
            let filter = QueryFilter::all()
                .region(RegionId::new("b").unwrap())
                .dataset(DatasetId::Ndt);
            assert_eq!(store.count(&filter), 1);
        }
    }

    #[test]
    fn batch_row_accessors_expose_columns() {
        let mut batch = RecordBatch::new();
        let mut r = record("east", DatasetId::Ndt, 5, 42.0);
        r.loss_pct = None;
        batch.push_record(&r);
        batch.push_record(&record("west", DatasetId::Ookla, 6, 43.0));
        batch.push_record(&record("east", DatasetId::Ndt, 7, 44.0));
        assert_eq!(batch.interned_regions().len(), 2);
        assert_eq!(batch.interned_datasets().len(), 2);
        let regions = batch.region_column();
        let datasets = batch.dataset_column();
        assert_eq!(regions.len(), 3);
        // Rows 0 and 2 share symbols; row 1 differs.
        assert_eq!((regions[0], datasets[0]), (regions[2], datasets[2]));
        assert_ne!(regions[0], regions[1]);
        assert_eq!(
            batch.interned_regions()[regions[1].index()],
            RegionId::new("west").unwrap()
        );
        assert_eq!(batch.interned_datasets()[datasets[0].index()], DatasetId::Ndt);
        assert_eq!(batch.timestamp_at(1), 6);
        assert_eq!(batch.metric_at(2, Metric::DownloadThroughput), Some(44.0));
        assert_eq!(batch.metric_at(0, Metric::PacketLoss), None);
        assert_eq!(batch.metric_at(1, Metric::PacketLoss), Some(0.1));
        assert_eq!(batch.metric_at(0, Metric::Latency), Some(20.0));
    }

    #[test]
    fn push_row_from_and_record_at_round_trip() {
        let mut source = RecordBatch::new();
        let mut no_tech = record("east", DatasetId::Ndt, 1, 10.0);
        no_tech.tech = None;
        no_tech.loss_pct = None;
        let records = vec![
            record("west", DatasetId::Ookla, 2, 20.0),
            no_tech,
            record("east", DatasetId::Custom("probes".into()), 3, 30.0),
        ];
        for r in &records {
            source.push_record(r);
        }
        // Route odd rows into one batch, even rows into another; the
        // union must reproduce every record exactly.
        let mut odd = RecordBatch::new();
        let mut even = RecordBatch::new();
        for i in 0..source.len() {
            assert_eq!(source.record_at(i), records[i], "row {i}");
            if i % 2 == 0 {
                even.push_row_from(&source, i);
            } else {
                odd.push_row_from(&source, i);
            }
        }
        assert_eq!(even.len(), 2);
        assert_eq!(odd.len(), 1);
        assert_eq!(even.record_at(0), records[0]);
        assert_eq!(odd.record_at(0), records[1]);
        assert_eq!(even.record_at(1), records[2]);
    }

    #[test]
    fn query_cell_matches_filtered_query() {
        let store = sample_store();
        let region = RegionId::new("west").unwrap();
        let base = QueryFilter::all().time_range(0, 35);
        let via_cell: Vec<u64> = store
            .query_cell(&region, &DatasetId::Ndt, &base)
            .map(|r| r.timestamp())
            .collect();
        let via_filter: Vec<u64> = store
            .query(&base.clone().region(region.clone()).dataset(DatasetId::Ndt))
            .map(|r| r.timestamp())
            .collect();
        assert_eq!(via_cell, via_filter);
        assert_eq!(via_cell, vec![30]);
        // Unknown region resolves to the empty set without scanning.
        let unknown = RegionId::new("nowhere").unwrap();
        assert_eq!(
            store
                .query_cell(&unknown, &DatasetId::Ndt, &QueryFilter::all())
                .count(),
            0
        );
    }
}
