//! The per-test measurement record — the common schema of NDT-style and
//! Cloudflare-style feeds.
//!
//! Every dataset IQB consumes reduces to rows of this shape. `loss_pct` is
//! optional because not every methodology reports it (Ookla's open
//! aggregates famously do not); the scoring normalization redistributes
//! the missing weight.

use std::fmt;

use iqb_core::dataset::DatasetId;
use iqb_core::metric::Metric;
use serde::{Deserialize, Serialize};

use crate::error::DataError;

/// An opaque, non-empty region identifier (geography, ISP, ASN grouping —
/// whatever the analysis partitions by).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct RegionId(String);

impl RegionId {
    /// Creates a region id, rejecting empty/whitespace-only names.
    pub fn new(name: impl Into<String>) -> Result<Self, DataError> {
        let name = name.into();
        if name.trim().is_empty() {
            return Err(DataError::InvalidRegion(
                "region id must be non-empty".into(),
            ));
        }
        Ok(RegionId(name))
    }

    /// The raw identifier.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl TryFrom<String> for RegionId {
    type Error = String;
    fn try_from(value: String) -> Result<Self, Self::Error> {
        RegionId::new(value).map_err(|e| e.to_string())
    }
}

impl From<RegionId> for String {
    fn from(r: RegionId) -> String {
        r.0
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// One speed-test result attributed to a region and dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestRecord {
    /// Measurement time, seconds since the campaign epoch.
    pub timestamp: u64,
    /// Region the subscriber belongs to.
    pub region: RegionId,
    /// Which dataset (methodology) produced the test.
    pub dataset: DatasetId,
    /// Download throughput in Mb/s.
    pub download_mbps: f64,
    /// Upload throughput in Mb/s.
    pub upload_mbps: f64,
    /// Round-trip latency in ms.
    pub latency_ms: f64,
    /// Packet loss in percent; `None` when the methodology does not
    /// report it.
    pub loss_pct: Option<f64>,
    /// Access-technology tag carried through from synthesis (free-form).
    pub tech: Option<String>,
}

/// Validates one row's metric values against their physical domains,
/// without requiring an owned [`TestRecord`].
///
/// This is exactly the check [`TestRecord::validate`] performs; the
/// columnar ingest path calls it on parsed fields before a row is
/// admitted to a batch.
pub fn validate_metrics(
    download_mbps: f64,
    upload_mbps: f64,
    latency_ms: f64,
    loss_pct: Option<f64>,
) -> Result<(), DataError> {
    let checks = [
        (Metric::DownloadThroughput, Some(download_mbps)),
        (Metric::UploadThroughput, Some(upload_mbps)),
        (Metric::Latency, Some(latency_ms)),
        (Metric::PacketLoss, loss_pct),
    ];
    for (metric, value) in checks {
        if let Some(v) = value {
            metric
                .validate(v)
                .map_err(|why| DataError::InvalidRecord(format!("{metric}: {why}")))?;
        }
    }
    Ok(())
}

impl TestRecord {
    /// Validates every metric value against its physical domain.
    pub fn validate(&self) -> Result<(), DataError> {
        validate_metrics(
            self.download_mbps,
            self.upload_mbps,
            self.latency_ms,
            self.loss_pct,
        )
    }

    /// The value of one metric on this record (`None` for unreported loss).
    pub fn metric_value(&self, metric: Metric) -> Option<f64> {
        match metric {
            Metric::DownloadThroughput => Some(self.download_mbps),
            Metric::UploadThroughput => Some(self.upload_mbps),
            Metric::Latency => Some(self.latency_ms),
            Metric::PacketLoss => self.loss_pct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> TestRecord {
        TestRecord {
            timestamp: 1000,
            region: RegionId::new("r1").unwrap(),
            dataset: DatasetId::Ndt,
            download_mbps: 100.0,
            upload_mbps: 20.0,
            latency_ms: 25.0,
            loss_pct: Some(0.5),
            tech: Some("cable".into()),
        }
    }

    #[test]
    fn region_id_rejects_empty() {
        assert!(RegionId::new("").is_err());
        assert!(RegionId::new("   ").is_err());
        assert_eq!(RegionId::new("x").unwrap().as_str(), "x");
    }

    #[test]
    fn valid_record_passes() {
        record().validate().unwrap();
    }

    #[test]
    fn missing_loss_is_valid() {
        let mut r = record();
        r.loss_pct = None;
        r.validate().unwrap();
        assert_eq!(r.metric_value(Metric::PacketLoss), None);
    }

    #[test]
    fn invalid_values_rejected() {
        let mut r = record();
        r.download_mbps = -5.0;
        assert!(r.validate().is_err());
        let mut r = record();
        r.loss_pct = Some(150.0);
        assert!(r.validate().is_err());
        let mut r = record();
        r.latency_ms = f64::NAN;
        assert!(r.validate().is_err());
    }

    #[test]
    fn metric_value_accessor() {
        let r = record();
        assert_eq!(r.metric_value(Metric::DownloadThroughput), Some(100.0));
        assert_eq!(r.metric_value(Metric::UploadThroughput), Some(20.0));
        assert_eq!(r.metric_value(Metric::Latency), Some(25.0));
        assert_eq!(r.metric_value(Metric::PacketLoss), Some(0.5));
    }

    #[test]
    fn region_serde_rejects_empty() {
        assert!(serde_json::from_str::<RegionId>("\"\"").is_err());
        let r: RegionId = serde_json::from_str("\"metro-9\"").unwrap();
        assert_eq!(r.as_str(), "metro-9");
    }
}
