//! Property-based tests for the dataset layer: round trips and
//! aggregation invariants over arbitrary record sets.

use iqb_core::dataset::DatasetId;
use iqb_core::metric::Metric;
use iqb_data::aggregate::{aggregate_region, AggregationSpec};
use iqb_data::clean::Cleaner;
use iqb_data::csv_io;
use iqb_data::jsonl;
use iqb_data::record::{RegionId, TestRecord};
use iqb_data::store::{MeasurementStore, QueryFilter};
use proptest::prelude::*;

/// Strategy: an arbitrary valid test record over a small region/dataset
/// universe.
fn record() -> impl Strategy<Value = TestRecord> {
    (
        0u64..1_000_000,
        prop_oneof![Just("east"), Just("west"), Just("north")],
        prop_oneof![
            Just(DatasetId::Ndt),
            Just(DatasetId::Cloudflare),
            Just(DatasetId::Ookla),
            Just(DatasetId::Custom("probes".into()))
        ],
        0.0..5_000.0f64,
        0.0..2_000.0f64,
        0.01..2_000.0f64,
        prop_oneof![
            Just(None),
            (0.0..100.0f64).prop_map(Some)
        ],
        prop_oneof![Just(None), Just(Some("cable".to_string()))],
    )
        .prop_map(
            |(timestamp, region, dataset, down, up, rtt, loss, tech)| TestRecord {
                timestamp,
                region: RegionId::new(region).unwrap(),
                dataset,
                download_mbps: down,
                upload_mbps: up,
                latency_ms: rtt,
                loss_pct: loss,
                tech,
            },
        )
}

fn records() -> impl Strategy<Value = Vec<TestRecord>> {
    prop::collection::vec(record(), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csv_round_trip(recs in records()) {
        let mut buf = Vec::new();
        csv_io::write_csv(&mut buf, &recs).unwrap();
        let back = csv_io::read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back, recs);
    }

    #[test]
    fn jsonl_round_trip(recs in records()) {
        let mut buf = Vec::new();
        jsonl::write_jsonl(&mut buf, &recs).unwrap();
        let back = jsonl::read_jsonl(buf.as_slice()).unwrap();
        prop_assert_eq!(back, recs);
    }

    #[test]
    fn store_count_partitions_by_filter(recs in records()) {
        let mut store = MeasurementStore::new();
        store.extend(recs.iter().cloned()).unwrap();
        // Summing indexed (region, dataset) counts must recover the total.
        let mut sum = 0;
        for region in store.regions() {
            for dataset in store.datasets() {
                let filter = QueryFilter::all().region(region.clone()).dataset(dataset.clone());
                sum += store.count(&filter);
            }
        }
        prop_assert_eq!(sum, store.len());
    }

    #[test]
    fn aggregated_value_within_column_range(recs in records()) {
        let mut store = MeasurementStore::new();
        store.extend(recs.iter().cloned()).unwrap();
        let spec = AggregationSpec::paper_default();
        for region in store.regions() {
            let Ok(input) = aggregate_region(&store, &region, &DatasetId::BUILTIN, &spec) else {
                continue;
            };
            for ((dataset, metric), cell) in input.iter() {
                let filter = QueryFilter::all().region(region.clone()).dataset(dataset.clone());
                let column = store.metric_column(&filter, *metric);
                let min = column.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = column.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(cell.value >= min - 1e-9 && cell.value <= max + 1e-9);
                prop_assert_eq!(
                    cell.provenance.unwrap().sample_count as usize,
                    column.len()
                );
            }
        }
    }

    #[test]
    fn aggregation_quantile_monotone(recs in records(), q1 in 0.05..0.95f64, bump in 0.01..0.05f64) {
        // A higher quantile can never yield a smaller aggregate.
        let q2 = (q1 + bump).min(1.0);
        let mut store = MeasurementStore::new();
        store.extend(recs.iter().cloned()).unwrap();
        let spec1 = AggregationSpec::uniform_quantile(q1).unwrap();
        let spec2 = AggregationSpec::uniform_quantile(q2).unwrap();
        for region in store.regions() {
            let (Ok(a), Ok(b)) = (
                aggregate_region(&store, &region, &DatasetId::BUILTIN, &spec1),
                aggregate_region(&store, &region, &DatasetId::BUILTIN, &spec2),
            ) else {
                continue;
            };
            for ((dataset, metric), cell) in a.iter() {
                if let Some(hi) = b.get(dataset, *metric) {
                    prop_assert!(hi >= cell.value - 1e-9);
                }
            }
        }
    }

    #[test]
    fn cleaner_never_invents_records(recs in records()) {
        let cleaner = Cleaner::default();
        let (kept, report) = cleaner.clean(recs.clone()).unwrap();
        prop_assert!(kept.len() <= recs.len());
        prop_assert_eq!(report.input, recs.len());
        prop_assert_eq!(report.retained, kept.len());
        prop_assert_eq!(
            report.input,
            report.retained + report.duplicates + report.outliers
        );
        // Every retained record existed in the input.
        for r in &kept {
            prop_assert!(recs.contains(r));
        }
    }

    #[test]
    fn cleaning_is_idempotent(recs in records()) {
        let cleaner = Cleaner::default();
        let (once, _) = cleaner.clean(recs).unwrap();
        let (twice, report) = cleaner.clean(once.clone()).unwrap();
        // Dedup is idempotent; fences can only shrink further, but on
        // already-fenced data with the same cohorts they must agree.
        prop_assert_eq!(report.duplicates, 0);
        prop_assert!(twice.len() <= once.len());
    }
}
