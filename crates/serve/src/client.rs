//! A minimal line-oriented client for the daemon.
//!
//! One request out, one response back, in order — exactly the wire
//! discipline the server guarantees per connection. This is what the
//! `iqb client` subcommand and the integration tests are built on.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

use crate::error::ServeError;
use crate::proto::{Request, Response};

/// A connected client holding one request/response pipe.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon at `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        // One-line requests: latency beats batching on this pipe.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads its response line.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServeError> {
        let mut line = serde_json::to_string(request)?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let raw = self.read_response_line()?;
        Ok(serde_json::from_str(raw.trim())?)
    }

    /// Sends one request and returns the raw response line, verbatim
    /// minus the trailing newline — what `iqb client` prints, and what
    /// integration goldens are diffed against.
    pub fn request_raw(&mut self, request: &Request) -> Result<String, ServeError> {
        let mut line = serde_json::to_string(request)?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let raw = self.read_response_line()?;
        Ok(raw.trim_end_matches(['\n', '\r']).to_string())
    }

    fn read_response_line(&mut self) -> Result<String, ServeError> {
        let mut raw = String::new();
        if self.reader.read_line(&mut raw)? == 0 {
            return Err(ServeError::ConnectionClosed);
        }
        Ok(raw)
    }
}
