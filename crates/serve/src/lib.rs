#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # iqb-serve — IQB as a service
//!
//! The always-on counterpart of the batch CLI: a std-only TCP daemon
//! (no async runtime — `std::net` plus a crossbeam worker pool) that
//! holds a sharded, snapshot-isolated
//! [`SessionRegistry`](iqb_pipeline::registry::SessionRegistry) and
//! speaks a newline-delimited JSON protocol:
//!
//! * one JSON [`Request`] per line in, one JSON [`Response`] per line
//!   out, in order, per connection;
//! * `submit` ingests records through the same classifier as batch
//!   JSONL ingest (quarantine accounting matches byte-for-byte);
//! * `score` / `trend` / `whatif` / `snapshot` read from published
//!   snapshots — they never block on ingest and never observe a
//!   half-rescored report;
//! * `reload-config` rebuilds every shard from its retained store and
//!   swaps the registry atomically;
//! * `shutdown` drains in-flight requests, flushes uncommitted shard
//!   state and stops the accept loop.
//!
//! [`Server`] is the daemon, [`Client`] the line-oriented client the
//! `iqb client` subcommand and the integration tests drive it with.

pub mod client;
pub mod error;
pub mod proto;
pub mod server;

pub use client::Client;
pub use error::ServeError;
pub use proto::{Request, Response};
pub use server::{ServeOptions, Server};
