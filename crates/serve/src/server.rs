//! The daemon: accept loop, worker pool, request handling.
//!
//! Concurrency model:
//!
//! * the accept loop hands each [`TcpStream`] to a crossbeam channel;
//! * N workers pull connections and run their line loop to completion
//!   (one connection is served by one worker at a time; requests on a
//!   connection are answered in order);
//! * all workers share one [`SessionRegistry`] behind an `Arc` swap —
//!   reads go to published snapshots, writes take per-shard locks, and
//!   `reload-config` swaps the whole registry while holding the slot's
//!   write lock;
//! * `shutdown` (the request) answers, raises the shutdown flag, and
//!   self-connects to wake the accept loop; in-flight requests finish,
//!   uncommitted shard state is flushed, then `run` returns. There is
//!   deliberately no signal handler — the workspace links no FFI, so
//!   SIGINT simply kills the process; orchestrators wanting a graceful
//!   stop send the `shutdown` request.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use iqb_core::config::IqbConfig;
use iqb_data::aggregate::AggregationSpec;
use iqb_data::jsonl::decode_json_values;
use iqb_data::quarantine::IngestMode;
use iqb_data::record::RegionId;
use iqb_obs::names;
use iqb_pipeline::registry::{RegistryOptions, SessionRegistry};
use iqb_pipeline::temporal::WindowPolicy;
use iqb_stats::changepoint::DetectConfig;

use crate::error::ServeError;
use crate::proto::{Request, Response};

/// Daemon configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Bind address; port 0 picks an ephemeral port (read it back with
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Shards regions are partitioned across.
    pub shards: usize,
    /// Connection-serving worker threads.
    pub workers: usize,
    /// Submits a shard absorbs before committing a snapshot.
    pub debounce_submits: usize,
    /// Event-time window policy each shard tracks alongside its batch
    /// session; `None` disables windowing (and the `window` / `detect`
    /// requests with it).
    pub window: Option<WindowPolicy>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7311".to_string(),
            shards: 4,
            workers: 4,
            debounce_submits: 1,
            window: Some(WindowPolicy::default()),
        }
    }
}

/// State shared by every worker: the swappable registry slot, the bound
/// address (for the shutdown self-connect) and the shutdown flag.
struct ServerState {
    registry: RwLock<Arc<SessionRegistry>>,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
}

impl ServerState {
    /// The current registry world (an `Arc` clone; requests keep the
    /// world they started with even across a concurrent reload).
    fn registry(&self) -> Arc<SessionRegistry> {
        Arc::clone(&self.registry.read())
    }
}

/// A bound-but-not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: usize,
}

impl Server {
    /// Binds the listener and builds the sharded registry. Nothing is
    /// served until [`Self::run`].
    pub fn bind(
        options: &ServeOptions,
        config: IqbConfig,
        spec: AggregationSpec,
    ) -> Result<Server, ServeError> {
        let registry = SessionRegistry::new(
            config,
            spec,
            RegistryOptions {
                shards: options.shards,
                debounce_submits: options.debounce_submits,
                window: options.window,
            },
        )?;
        let listener = TcpListener::bind(options.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                registry: RwLock::new(Arc::new(registry)),
                local_addr,
                shutdown: AtomicBool::new(false),
            }),
            workers: options.workers.max(1),
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// Serves until a `shutdown` request arrives, then drains in-flight
    /// requests, flushes uncommitted shard state and returns.
    pub fn run(&self) -> Result<(), ServeError> {
        let (sender, receiver) = crossbeam::channel::unbounded::<TcpStream>();
        crossbeam::scope(|scope| {
            for _ in 0..self.workers {
                let receiver = receiver.clone();
                let state = Arc::clone(&self.state);
                scope.spawn(move |_| {
                    for stream in receiver.iter() {
                        handle_connection(stream, &state);
                    }
                });
            }
            drop(receiver);
            let connections = iqb_obs::global().counter(names::SERVE_CONNECTIONS);
            for incoming in self.listener.incoming() {
                if self.state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = incoming {
                    connections.inc();
                    // Workers outlive the accept loop; a send can only
                    // fail after every worker is gone, i.e. never here.
                    let _ = sender.send(stream);
                }
            }
            drop(sender);
        })
        .map_err(|panic| {
            ServeError::InvalidRequest(format!("serve worker panicked: {panic:?}"))
        })?;
        // Drained: publish whatever the debounce was still holding so
        // the retained state is fully scored at exit.
        self.state.registry().flush()?;
        Ok(())
    }
}

/// Serves one connection's line loop to completion.
fn handle_connection(stream: TcpStream, state: &ServerState) {
    let read_half = match stream.try_clone() {
        Ok(half) => half,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        // Between requests only: an accepted request always gets its
        // response, shutdown or not.
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop) = respond(&line, state);
        let mut payload = match serde_json::to_string(&response) {
            Ok(payload) => payload,
            Err(_) => break,
        };
        payload.push('\n');
        if writer
            .write_all(payload.as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if stop {
            break;
        }
    }
}

/// Parses, meters and answers one request line. Returns the response
/// plus whether this connection (and the daemon) should stop.
fn respond(line: &str, state: &ServerState) -> (Response, bool) {
    let obs = iqb_obs::global();
    let request: Request = match serde_json::from_str(line.trim()) {
        Ok(request) => request,
        Err(e) => {
            obs.counter(names::SERVE_ERRORS).inc();
            return (
                Response::Error {
                    message: format!("bad request: {e}"),
                },
                false,
            );
        }
    };
    obs.counter(&names::per_source(names::SERVE_REQUESTS, request.tag()))
        .inc();
    let timer = iqb_obs::Timer::start(obs.histogram(names::SERVE_REQUEST_MS));
    let stop = matches!(request, Request::Shutdown);
    let response = match handle(request, state) {
        Ok(response) => response,
        Err(e) => {
            obs.counter(names::SERVE_ERRORS).inc();
            Response::Error {
                message: e.to_string(),
            }
        }
    };
    timer.stop();
    if stop {
        state.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag. The connection
        // is dropped unserved — by then the flag is already up.
        drop(TcpStream::connect(state.local_addr));
    }
    (response, stop)
}

/// The request dispatcher proper.
fn handle(request: Request, state: &ServerState) -> Result<Response, ServeError> {
    match request {
        Request::Submit { mode, records } => {
            let mode: IngestMode = mode.as_deref().unwrap_or("strict").parse()?;
            // Same classifier as batch JSONL ingest, labeled "serve":
            // wire quarantine accounting matches files byte-for-byte.
            let (parsed, wire_report) = decode_json_values(&records, mode, "serve")?;
            let registry = state.registry();
            let outcome = registry.submit(parsed, mode)?;
            let obs = iqb_obs::global();
            obs.counter(names::SERVE_COMMITS)
                .add(outcome.committed_shards as u64);
            obs.gauge(names::SERVE_RECORDS)
                .set(registry.records() as f64);
            for (index, held) in registry.shard_records().into_iter().enumerate() {
                obs.gauge(&names::per_source(
                    names::SERVE_SHARD_RECORDS,
                    &format!("shard{index}"),
                ))
                .set(held as f64);
            }
            Ok(Response::Submitted {
                ingested: outcome.ingested,
                scanned: wire_report.scanned,
                quarantined: wire_report.quarantined() + outcome.quarantine.quarantined(),
                committed_shards: outcome.committed_shards,
            })
        }
        Request::Score { region: None } => Ok(Response::Report {
            report: state.registry().report(),
        }),
        Request::Score {
            region: Some(region),
        } => {
            let id = RegionId::new(region.as_str())?;
            Ok(Response::Region {
                score: state.registry().region_score(&id),
                region,
            })
        }
        Request::Trend { region, window_s } => {
            let id = RegionId::new(region.as_str())?;
            Ok(Response::Trend {
                points: state.registry().trend(&id, window_s)?,
                region,
            })
        }
        Request::Window { region } => {
            let id = RegionId::new(region.as_str())?;
            let registry = state.registry();
            match registry.window_points(&id)? {
                Some(points) => {
                    let (closed, open, late) = registry.window_stats();
                    Ok(Response::Window {
                        region,
                        points,
                        closed,
                        open,
                        late,
                    })
                }
                None => Err(ServeError::InvalidRequest(
                    "windowing is disabled on this daemon".to_string(),
                )),
            }
        }
        Request::Detect {
            region,
            threshold,
            min_segment,
        } => {
            let id = RegionId::new(region.as_str())?;
            let mut detect = DetectConfig::default();
            if let Some(threshold) = threshold {
                detect.threshold = threshold;
            }
            if let Some(min_segment) = min_segment {
                detect.min_segment = min_segment;
            }
            match state.registry().detect(&id, &detect)? {
                Some(analysis) => Ok(Response::Detect { region, analysis }),
                None => Err(ServeError::InvalidRequest(
                    "windowing is disabled on this daemon".to_string(),
                )),
            }
        }
        Request::Whatif { region } => {
            let id = RegionId::new(region.as_str())?;
            match state.registry().whatif(&id)? {
                Some(outcomes) => Ok(Response::Whatif { region, outcomes }),
                None => Err(ServeError::InvalidRequest(format!(
                    "no committed score for region `{region}`"
                ))),
            }
        }
        Request::Snapshot => {
            let registry = state.registry();
            Ok(Response::Snapshot {
                report: registry.report(),
                shards: registry.shard_count(),
                records: registry.records(),
                commits: registry.commits(),
            })
        }
        Request::ReloadConfig {
            profile,
            quantile,
            agg_backend,
        } => {
            // Hold the slot's write lock across the rebuild: requests
            // arriving after the reload starts serialize behind it and
            // wake up in the new world. Requests already holding the
            // old Arc finish against the retiring registry.
            let mut slot = state.registry.write();
            let config = match profile.as_deref() {
                Some(name) => iqb_core::profiles::by_name(name)?,
                None => slot.config().clone(),
            };
            let spec = match quantile {
                Some(q) => {
                    AggregationSpec::uniform_quantile(q)?.with_backend(slot.spec().backend)
                }
                None => slot.spec().clone(),
            };
            let spec = match agg_backend.as_deref() {
                Some(raw) => spec.with_backend(raw.parse()?),
                None => spec,
            };
            // lint: allow(lock_held) deliberate: holding the write lock across the rebuild keeps submits from landing in the retiring registry and being lost
            let next = slot.reload(config, spec)?;
            let records = next.records();
            let regions = next.report().regions.len();
            *slot = Arc::new(next);
            Ok(Response::Reloaded { regions, records })
        }
        Request::Health => {
            let registry = state.registry();
            Ok(Response::Health {
                shards: registry.shard_count(),
                regions: registry.report().regions.len(),
                records: registry.records(),
                commits: registry.commits(),
            })
        }
        Request::Metrics => Ok(Response::Metrics {
            counters: iqb_obs::global().snapshot().counters,
        }),
        Request::Shutdown => Ok(Response::ShuttingDown),
    }
}
