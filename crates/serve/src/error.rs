//! Error type for the daemon and its client.

use iqb_core::CoreError;
use iqb_data::DataError;
use iqb_pipeline::PipelineError;

/// Anything that can go wrong serving or speaking the wire protocol.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or stream I/O failed.
    Io(std::io::Error),
    /// A payload could not be serialized or deserialized.
    Json(serde_json::Error),
    /// The scoring pipeline rejected an operation.
    Pipeline(PipelineError),
    /// The data layer rejected an operation.
    Data(DataError),
    /// The scoring core rejected an operation.
    Core(CoreError),
    /// The request was well-formed JSON but semantically invalid.
    InvalidRequest(String),
    /// The peer closed the connection mid-exchange.
    ConnectionClosed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o: {e}"),
            ServeError::Json(e) => write!(f, "json: {e}"),
            ServeError::Pipeline(e) => write!(f, "pipeline: {e}"),
            ServeError::Data(e) => write!(f, "data: {e}"),
            ServeError::Core(e) => write!(f, "core: {e}"),
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServeError::ConnectionClosed => write!(f, "connection closed by peer"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Json(e) => Some(e),
            ServeError::Pipeline(e) => Some(e),
            ServeError::Data(e) => Some(e),
            ServeError::Core(e) => Some(e),
            ServeError::InvalidRequest(_) | ServeError::ConnectionClosed => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<serde_json::Error> for ServeError {
    fn from(e: serde_json::Error) -> Self {
        ServeError::Json(e)
    }
}

impl From<PipelineError> for ServeError {
    fn from(e: PipelineError) -> Self {
        ServeError::Pipeline(e)
    }
}

impl From<DataError> for ServeError {
    fn from(e: DataError) -> Self {
        ServeError::Data(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}
