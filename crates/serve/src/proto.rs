//! The newline-delimited JSON wire protocol.
//!
//! One [`Request`] object per line in, one [`Response`] object per line
//! out, answered in order per connection. Both enums are internally
//! tagged on `"type"` with kebab-case tags (`submit`, `reload-config`,
//! `shutting-down`, …); field names stay snake_case. Response
//! serialization is deterministic — struct-declaration field order, no
//! maps with unstable iteration — so integration goldens can be
//! committed as exact bytes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use iqb_core::whatif::InterventionOutcome;
use iqb_pipeline::runner::{RegionScore, RegionalReport};
use iqb_pipeline::temporal::WindowPoint;
use iqb_pipeline::trend::{TrendAnalysis, TrendPoint};

/// Default trend window when a `trend` request omits `window_s`: one
/// hour, matching the batch CLI's default.
pub const DEFAULT_TREND_WINDOW_S: u64 = 3_600;

fn default_window_s() -> u64 {
    DEFAULT_TREND_WINDOW_S
}

/// A client request, one JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "kebab-case")]
pub enum Request {
    /// Ingest measurement records (JSON objects in `TestRecord` shape).
    Submit {
        /// `"strict"` (default) rejects the whole batch on the first
        /// fault; `"lenient"` quarantines faulty records and keeps the
        /// rest — the same semantics as batch file ingest.
        #[serde(default)]
        mode: Option<String>,
        /// The records, one JSON object each.
        records: Vec<serde_json::Value>,
    },
    /// Read the published report: one region when `region` is given,
    /// the full merged snapshot otherwise.
    Score {
        /// Region to read; omit for all regions.
        #[serde(default)]
        region: Option<String>,
    },
    /// Windowed score trend for one region over its retained range.
    Trend {
        /// Region to trend.
        region: String,
        /// Window width in seconds (default one hour).
        #[serde(default = "default_window_s")]
        window_s: u64,
    },
    /// Event-time window series for one region: every closed window's
    /// frozen score plus the still-open windows' provisional ones.
    Window {
        /// Region to read.
        region: String,
    },
    /// Changepoint / diurnal-pattern detection over one region's closed
    /// and open window scores.
    Detect {
        /// Region to analyze.
        region: String,
        /// Detection z-threshold; omit for the stats-crate default.
        #[serde(default)]
        threshold: Option<f64>,
        /// Minimum windows per segment; omit for the stats-crate
        /// default.
        #[serde(default)]
        min_segment: Option<usize>,
    },
    /// Intervention what-ifs against a region's published score.
    Whatif {
        /// Region to evaluate.
        region: String,
    },
    /// The full merged report plus registry bookkeeping in one read.
    Snapshot,
    /// Rebuild every shard from its retained store under a new config
    /// and/or aggregation spec, then swap registries atomically.
    ReloadConfig {
        /// Scoring profile name (`iqb_core::profiles`); omit to keep
        /// the current config.
        #[serde(default)]
        profile: Option<String>,
        /// Uniform quantile for the new spec; omit to keep the current
        /// quantiles.
        #[serde(default)]
        quantile: Option<f64>,
        /// Aggregation backend (`exact|tdigest|p2`); omit to keep the
        /// current backend.
        #[serde(default)]
        agg_backend: Option<String>,
    },
    /// Liveness plus shard bookkeeping.
    Health,
    /// Obs counter values.
    Metrics,
    /// Graceful shutdown: answer, drain, flush, stop accepting.
    Shutdown,
}

impl Request {
    /// The wire tag of this request — the value of its `type` field,
    /// used as the per-request metric label.
    pub fn tag(&self) -> &'static str {
        match self {
            Request::Submit { .. } => "submit",
            Request::Score { .. } => "score",
            Request::Trend { .. } => "trend",
            Request::Window { .. } => "window",
            Request::Detect { .. } => "detect",
            Request::Whatif { .. } => "whatif",
            Request::Snapshot => "snapshot",
            Request::ReloadConfig { .. } => "reload-config",
            Request::Health => "health",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }
}

/// A daemon response, one JSON object per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "kebab-case")]
pub enum Response {
    /// Outcome of a `submit`.
    Submitted {
        /// Records accepted into shard sessions.
        ingested: usize,
        /// Records examined (kept + quarantined).
        scanned: u64,
        /// Records quarantined by the wire-path classifier.
        quarantined: u64,
        /// Shards that rescored and published during this submit.
        committed_shards: usize,
    },
    /// The merged published report (`score` with no region).
    Report {
        /// Snapshot-consistent merged report.
        report: RegionalReport,
    },
    /// One region's published score (`score` with a region); `score` is
    /// `null` while no commit covers the region.
    Region {
        /// The region asked about.
        region: String,
        /// Its last committed score, if any.
        score: Option<RegionScore>,
    },
    /// Windowed trend points for one region.
    Trend {
        /// The region asked about.
        region: String,
        /// One point per window over the retained range.
        points: Vec<TrendPoint>,
    },
    /// Event-time window series for one region, oldest first: closed
    /// windows then open ones, each strictly later than the last.
    Window {
        /// The region asked about.
        region: String,
        /// One point per window that saw the region's records.
        points: Vec<WindowPoint>,
        /// Closed (frozen) windows registry-wide.
        closed: usize,
        /// Open (still accumulating) windows registry-wide.
        open: usize,
        /// Records quarantined as late arrivals registry-wide.
        late: u64,
    },
    /// Detection result over one region's window score series.
    Detect {
        /// The region asked about.
        region: String,
        /// Diurnal-pattern and changepoint findings.
        analysis: TrendAnalysis,
    },
    /// Intervention outcomes, sorted by descending gain.
    Whatif {
        /// The region asked about.
        region: String,
        /// Evaluated interventions against the published score.
        outcomes: Vec<InterventionOutcome>,
    },
    /// The `snapshot` read: report plus bookkeeping.
    Snapshot {
        /// Snapshot-consistent merged report.
        report: RegionalReport,
        /// Shard count.
        shards: usize,
        /// Records retained across all shards.
        records: usize,
        /// Snapshot commits published across all shards.
        commits: u64,
    },
    /// Outcome of a `reload-config`.
    Reloaded {
        /// Regions scored in the rebuilt registry.
        regions: usize,
        /// Records replayed into the rebuilt registry.
        records: usize,
    },
    /// Liveness summary.
    Health {
        /// Shard count.
        shards: usize,
        /// Regions in the merged published snapshot.
        regions: usize,
        /// Records retained across all shards.
        records: usize,
        /// Snapshot commits published across all shards.
        commits: u64,
    },
    /// Obs counter values by name.
    Metrics {
        /// Counter name → value.
        counters: BTreeMap<String, u64>,
    },
    /// Acknowledgement of a `shutdown`; the daemon drains and exits.
    ShuttingDown,
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip_through_serde() {
        let cases: Vec<(Request, &str)> = vec![
            (
                Request::Submit {
                    mode: Some("lenient".into()),
                    records: vec![],
                },
                "submit",
            ),
            (Request::Score { region: None }, "score"),
            (
                Request::Trend {
                    region: "metro".into(),
                    window_s: 60,
                },
                "trend",
            ),
            (
                Request::Window {
                    region: "metro".into(),
                },
                "window",
            ),
            (
                Request::Detect {
                    region: "metro".into(),
                    threshold: Some(4.0),
                    min_segment: None,
                },
                "detect",
            ),
            (
                Request::Whatif {
                    region: "metro".into(),
                },
                "whatif",
            ),
            (Request::Snapshot, "snapshot"),
            (
                Request::ReloadConfig {
                    profile: None,
                    quantile: None,
                    agg_backend: None,
                },
                "reload-config",
            ),
            (Request::Health, "health"),
            (Request::Metrics, "metrics"),
            (Request::Shutdown, "shutdown"),
        ];
        for (request, tag) in cases {
            assert_eq!(request.tag(), tag);
            let line = serde_json::to_string(&request).unwrap();
            assert!(
                line.starts_with(&format!("{{\"type\":\"{tag}\"")),
                "{line}"
            );
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn trend_window_defaults_to_one_hour() {
        let parsed: Request =
            serde_json::from_str(r#"{"type":"trend","region":"metro"}"#).unwrap();
        assert_eq!(
            parsed,
            Request::Trend {
                region: "metro".into(),
                window_s: DEFAULT_TREND_WINDOW_S,
            }
        );
    }

    #[test]
    fn detect_tuning_defaults_to_stats_defaults() {
        let parsed: Request =
            serde_json::from_str(r#"{"type":"detect","region":"metro"}"#).unwrap();
        assert_eq!(
            parsed,
            Request::Detect {
                region: "metro".into(),
                threshold: None,
                min_segment: None,
            }
        );
    }

    #[test]
    fn shutting_down_is_a_bare_tag() {
        assert_eq!(
            serde_json::to_string(&Response::ShuttingDown).unwrap(),
            r#"{"type":"shutting-down"}"#
        );
    }
}
