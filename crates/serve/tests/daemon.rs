//! In-process integration tests: a real daemon on a loopback port,
//! driven by the real [`Client`].
//!
//! The headline assertions mirror the acceptance criteria: a drained
//! daemon's per-region scores are byte-identical to a batch run over
//! the same records, and concurrent reads during active ingest only
//! ever observe fully committed per-region states.

use std::collections::BTreeMap;
use std::thread;

use iqb_core::config::IqbConfig;
use iqb_core::dataset::DatasetId;
use iqb_data::aggregate::AggregationSpec;
use iqb_data::record::{RegionId, TestRecord};
use iqb_data::store::{MeasurementStore, QueryFilter};
use iqb_pipeline::runner::{score_all_regions, RegionScore, RegionalReport};
use iqb_pipeline::temporal::WindowPolicy;
use iqb_serve::{Client, Request, Response, ServeError, ServeOptions, Server};

fn record(region: &str, dataset: &DatasetId, step: usize, i: usize) -> TestRecord {
    TestRecord {
        timestamp: (step * 1_000 + i) as u64,
        region: RegionId::new(region).unwrap(),
        dataset: dataset.clone(),
        download_mbps: 50.0 + 30.0 * step as f64 + i as f64,
        upload_mbps: 10.0 + 6.0 * step as f64,
        latency_ms: 90.0 - 10.0 * step as f64,
        loss_pct: if *dataset == DatasetId::Ookla {
            None
        } else {
            Some(0.8 - 0.1 * step as f64)
        },
        tech: None,
    }
}

/// One submit batch: two records per builtin dataset.
fn batch(region: &str, step: usize) -> Vec<TestRecord> {
    let mut records = Vec::new();
    for dataset in &DatasetId::BUILTIN {
        for i in 0..2 {
            records.push(record(region, dataset, step, i));
        }
    }
    records
}

fn values(records: &[TestRecord]) -> Vec<serde_json::Value> {
    records
        .iter()
        .map(|r| serde_json::to_value(r).unwrap())
        .collect()
}

fn batch_report(records: &[TestRecord]) -> RegionalReport {
    let mut store = MeasurementStore::new();
    store.extend(records.iter().cloned()).unwrap();
    score_all_regions(
        &store,
        &IqbConfig::paper_default(),
        &AggregationSpec::paper_default(),
        &QueryFilter::all(),
    )
    .unwrap()
}

fn start(shards: usize, workers: usize) -> (thread::JoinHandle<Result<(), ServeError>>, String) {
    start_with_window(shards, workers, Some(WindowPolicy::default()))
}

fn start_with_window(
    shards: usize,
    workers: usize,
    window: Option<WindowPolicy>,
) -> (thread::JoinHandle<Result<(), ServeError>>, String) {
    let server = Server::bind(
        &ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            shards,
            workers,
            debounce_submits: 1,
            window,
        },
        IqbConfig::paper_default(),
        AggregationSpec::paper_default(),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    (thread::spawn(move || server.run()), addr)
}

#[test]
fn full_session_over_the_wire() {
    let (handle, addr) = start(2, 2);
    let mut client = Client::connect(&addr).unwrap();

    let mut all = Vec::new();
    all.extend(batch("metro", 0));
    all.extend(batch("rural", 0));
    let submitted = client
        .request(&Request::Submit {
            mode: None,
            records: values(&all),
        })
        .unwrap();
    // metro → shard 0, rural → shard 1: both shards commit.
    assert_eq!(
        submitted,
        Response::Submitted {
            ingested: all.len(),
            scanned: all.len() as u64,
            quarantined: 0,
            committed_shards: 2,
        }
    );

    // Drained daemon scores are byte-identical to the batch path.
    let expected = batch_report(&all);
    let scored = client.request(&Request::Score { region: None }).unwrap();
    match &scored {
        Response::Report { report } => {
            assert_eq!(report, &expected);
            assert_eq!(
                serde_json::to_string(report).unwrap(),
                serde_json::to_string(&expected).unwrap()
            );
        }
        other => panic!("unexpected response: {other:?}"),
    }

    match client
        .request(&Request::Score {
            region: Some("metro".to_string()),
        })
        .unwrap()
    {
        Response::Region { region, score } => {
            assert_eq!(region, "metro");
            let metro = RegionId::new("metro").unwrap();
            assert_eq!(score.as_ref(), expected.regions.get(&metro));
        }
        other => panic!("unexpected response: {other:?}"),
    }
    match client
        .request(&Request::Score {
            region: Some("nowhere".to_string()),
        })
        .unwrap()
    {
        Response::Region { score, .. } => assert!(score.is_none()),
        other => panic!("unexpected response: {other:?}"),
    }

    match client
        .request(&Request::Trend {
            region: "metro".to_string(),
            window_s: 600,
        })
        .unwrap()
    {
        Response::Trend { points, .. } => assert!(!points.is_empty()),
        other => panic!("unexpected response: {other:?}"),
    }
    match client
        .request(&Request::Whatif {
            region: "metro".to_string(),
        })
        .unwrap()
    {
        Response::Whatif { outcomes, .. } => assert!(!outcomes.is_empty()),
        other => panic!("unexpected response: {other:?}"),
    }
    match client.request(&Request::Snapshot).unwrap() {
        Response::Snapshot {
            report,
            shards,
            records,
            commits,
        } => {
            assert_eq!(report, expected);
            assert_eq!(shards, 2);
            assert_eq!(records, all.len());
            assert_eq!(commits, 2);
        }
        other => panic!("unexpected response: {other:?}"),
    }
    assert_eq!(
        client.request(&Request::Health).unwrap(),
        Response::Health {
            shards: 2,
            regions: 2,
            records: all.len(),
            commits: 2,
        }
    );
    match client.request(&Request::Metrics).unwrap() {
        Response::Metrics { counters } => {
            assert!(counters.contains_key("serve.requests.submit"));
        }
        other => panic!("unexpected response: {other:?}"),
    }

    // A no-op reload swaps worlds without changing a byte.
    assert_eq!(
        client
            .request(&Request::ReloadConfig {
                profile: None,
                quantile: None,
                agg_backend: None,
            })
            .unwrap(),
        Response::Reloaded {
            regions: 2,
            records: all.len(),
        }
    );
    assert_eq!(
        client.request(&Request::Score { region: None }).unwrap(),
        scored
    );

    // Semantically invalid requests answer with an error and leave the
    // connection usable.
    match client
        .request(&Request::Submit {
            mode: Some("bogus".to_string()),
            records: vec![],
        })
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("strict|lenient"), "{message}"),
        other => panic!("unexpected response: {other:?}"),
    }
    match client
        .request(&Request::Whatif {
            region: "nowhere".to_string(),
        })
        .unwrap()
    {
        Response::Error { message } => assert!(message.contains("nowhere"), "{message}"),
        other => panic!("unexpected response: {other:?}"),
    }

    assert_eq!(
        client.request(&Request::Shutdown).unwrap(),
        Response::ShuttingDown
    );
    handle.join().unwrap().unwrap();
}

#[test]
fn lenient_submit_quarantines_on_the_wire() {
    let (handle, addr) = start(2, 2);
    let mut client = Client::connect(&addr).unwrap();
    let clean = batch("metro", 1);
    let mut payload = values(&clean);
    payload.push(serde_json::json!({"not": "a record"}));
    match client
        .request(&Request::Submit {
            mode: Some("lenient".to_string()),
            records: payload.clone(),
        })
        .unwrap()
    {
        Response::Submitted {
            ingested,
            scanned,
            quarantined,
            ..
        } => {
            assert_eq!(ingested, clean.len());
            assert_eq!(scanned, payload.len() as u64);
            assert_eq!(quarantined, 1);
        }
        other => panic!("unexpected response: {other:?}"),
    }
    // Strict mode rejects the same payload whole; nothing changes.
    match client
        .request(&Request::Submit {
            mode: None,
            records: payload,
        })
        .unwrap()
    {
        Response::Error { .. } => {}
        other => panic!("unexpected response: {other:?}"),
    }
    assert_eq!(
        client.request(&Request::Health).unwrap(),
        Response::Health {
            shards: 2,
            regions: 1,
            records: clean.len(),
            commits: 1,
        }
    );
    assert_eq!(
        client.request(&Request::Shutdown).unwrap(),
        Response::ShuttingDown
    );
    handle.join().unwrap().unwrap();
}

/// `window` and `detect` over the wire: per-step tumbling windows freeze
/// to exactly the batch score over that step's records, bookkeeping
/// matches, and a short quiet series detects nothing.
#[test]
fn windowed_requests_over_the_wire() {
    // batch(_, step) stamps timestamps step*1000 + i, so 1000-second
    // tumbling windows hold exactly one step each.
    let (handle, addr) =
        start_with_window(2, 2, Some(WindowPolicy::tumbling(1_000)));
    let mut client = Client::connect(&addr).unwrap();
    let mut all = Vec::new();
    for step in 0..4 {
        all.extend(batch("metro", step));
    }
    match client
        .request(&Request::Submit {
            mode: None,
            records: values(&all),
        })
        .unwrap()
    {
        Response::Submitted { ingested, .. } => assert_eq!(ingested, all.len()),
        other => panic!("unexpected response: {other:?}"),
    }

    let metro = RegionId::new("metro").unwrap();
    match client
        .request(&Request::Window {
            region: "metro".to_string(),
        })
        .unwrap()
    {
        Response::Window {
            region,
            points,
            closed,
            open,
            late,
        } => {
            assert_eq!(region, "metro");
            // Steps 0-2 closed by later arrivals; step 3 still open.
            assert_eq!((closed, open, late), (3, 1, 0));
            assert_eq!(points.len(), 4);
            for (step, point) in points.iter().enumerate() {
                assert_eq!(point.window_start, step as u64 * 1_000);
                assert_eq!(point.window_s, 1_000);
                assert_eq!(point.samples, 6);
                assert_eq!(point.closed, step < 3);
                let expected = batch_report(&batch("metro", step));
                let expected = expected.regions.get(&metro).unwrap().report.score;
                assert_eq!(point.score, Some(expected), "window {step}");
            }
        }
        other => panic!("unexpected response: {other:?}"),
    }

    match client
        .request(&Request::Detect {
            region: "metro".to_string(),
            threshold: None,
            min_segment: None,
        })
        .unwrap()
    {
        Response::Detect { region, analysis } => {
            assert_eq!(region, "metro");
            assert_eq!(analysis.windows, 4);
            assert_eq!(analysis.scored, 4);
            // Four points are far below the minimum segment size; a
            // quiet series must stay quiet.
            assert!(analysis.shifts.is_empty());
            assert_eq!(analysis.diurnal.period_s, None);
        }
        other => panic!("unexpected response: {other:?}"),
    }

    assert_eq!(
        client.request(&Request::Shutdown).unwrap(),
        Response::ShuttingDown
    );
    handle.join().unwrap().unwrap();
}

/// With windowing disabled the temporal requests answer with an error
/// and leave the connection (and batch scoring) untouched.
#[test]
fn windowing_disabled_answers_with_errors() {
    let (handle, addr) = start_with_window(1, 1, None);
    let mut client = Client::connect(&addr).unwrap();
    let records = batch("metro", 0);
    match client
        .request(&Request::Submit {
            mode: None,
            records: values(&records),
        })
        .unwrap()
    {
        Response::Submitted { ingested, .. } => assert_eq!(ingested, records.len()),
        other => panic!("unexpected response: {other:?}"),
    }
    for request in [
        Request::Window {
            region: "metro".to_string(),
        },
        Request::Detect {
            region: "metro".to_string(),
            threshold: None,
            min_segment: None,
        },
    ] {
        match client.request(&request).unwrap() {
            Response::Error { message } => {
                assert!(message.contains("disabled"), "{message}")
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    match client
        .request(&Request::Score {
            region: Some("metro".to_string()),
        })
        .unwrap()
    {
        Response::Region { score, .. } => assert!(score.is_some()),
        other => panic!("unexpected response: {other:?}"),
    }
    assert_eq!(
        client.request(&Request::Shutdown).unwrap(),
        Response::ShuttingDown
    );
    handle.join().unwrap().unwrap();
}

#[test]
fn concurrent_reads_during_active_ingest() {
    const STEPS: usize = 4;
    let regions = ["r0", "r1", "r2", "r3"];
    // Legal per-region states a reader may observe: each prefix of that
    // region's submit sequence (plus "absent" before the first commit).
    let mut legal: BTreeMap<RegionId, Vec<RegionScore>> = BTreeMap::new();
    for region in regions {
        let id = RegionId::new(region).unwrap();
        let mut so_far = Vec::new();
        for step in 0..STEPS {
            so_far.extend(batch(region, step));
            let score = batch_report(&so_far).regions.get(&id).unwrap().clone();
            legal.entry(id.clone()).or_default().push(score);
        }
    }

    let (handle, addr) = start(4, 6);
    thread::scope(|scope| {
        for region in regions {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                for step in 0..STEPS {
                    let records = batch(region, step);
                    match client
                        .request(&Request::Submit {
                            mode: None,
                            records: values(&records),
                        })
                        .unwrap()
                    {
                        Response::Submitted { ingested, .. } => {
                            assert_eq!(ingested, records.len())
                        }
                        other => panic!("unexpected response: {other:?}"),
                    }
                }
            });
        }
        let reader_addr = addr.clone();
        let legal = &legal;
        scope.spawn(move || {
            let mut client = Client::connect(&reader_addr).unwrap();
            for _ in 0..20 {
                match client.request(&Request::Score { region: None }).unwrap() {
                    Response::Report { report } => {
                        for (region, score) in &report.regions {
                            let states = legal.get(region).expect("unexpected region");
                            assert!(
                                states.contains(score),
                                "{region:?}: observed a non-committed state"
                            );
                        }
                    }
                    other => panic!("unexpected response: {other:?}"),
                }
            }
        });
    });

    // Every writer drained: the daemon's report must now be
    // byte-identical to one batch run over all records, region by
    // region in submission order.
    let mut all = Vec::new();
    for region in regions {
        for step in 0..STEPS {
            all.extend(batch(region, step));
        }
    }
    let expected = batch_report(&all);
    let mut client = Client::connect(&addr).unwrap();
    match client.request(&Request::Score { region: None }).unwrap() {
        Response::Report { report } => assert_eq!(report, expected),
        other => panic!("unexpected response: {other:?}"),
    }
    assert_eq!(
        client.request(&Request::Shutdown).unwrap(),
        Response::ShuttingDown
    );
    handle.join().unwrap().unwrap();
}
