//! Property-based tests for the IQB score.
//!
//! These encode the invariants the paper's formulation implies:
//! boundedness, the eq.(2)+(4) ≡ eq.(5) derivation, monotonicity in the
//! measurements, and weight-normalization behaviour.

use iqb_core::config::{IqbConfig, ScoringMode};
use iqb_core::dataset::DatasetId;
use iqb_core::input::AggregateInput;
use iqb_core::metric::Metric;
use iqb_core::score::{score_iqb, score_iqb_flat};
use iqb_core::threshold::QualityLevel;
use iqb_core::usecase::UseCase;
use iqb_core::weights::Weight;
use proptest::prelude::*;

/// Strategy: a full uniform input (same aggregates visible to every
/// dataset), spanning the realistic ranges of each metric.
fn uniform_input() -> impl Strategy<Value = AggregateInput> {
    (
        0.0..2000.0f64, // download Mb/s
        0.0..2000.0f64, // upload Mb/s
        0.1..1000.0f64, // latency ms
        0.0..20.0f64,   // loss %
    )
        .prop_map(|(down, up, rtt, loss)| {
            let mut input = AggregateInput::new();
            for d in DatasetId::BUILTIN {
                input.set(d.clone(), Metric::DownloadThroughput, down);
                input.set(d.clone(), Metric::UploadThroughput, up);
                input.set(d.clone(), Metric::Latency, rtt);
                input.set(d, Metric::PacketLoss, loss);
            }
            input
        })
}

/// Strategy: an input where each (dataset, metric) cell is independently
/// present or absent with independent values.
fn sparse_input() -> impl Strategy<Value = AggregateInput> {
    let cell = (any::<bool>(), 0.0..1000.0f64, 0.0..1000.0f64, 0.1..800.0f64, 0.0..15.0f64);
    prop::collection::vec(cell, 3..=3).prop_map(|cells| {
        let mut input = AggregateInput::new();
        for (i, (present, down, up, rtt, loss)) in cells.into_iter().enumerate() {
            if !present {
                continue;
            }
            let d = DatasetId::BUILTIN[i].clone();
            input.set(d.clone(), Metric::DownloadThroughput, down);
            input.set(d.clone(), Metric::UploadThroughput, up);
            input.set(d.clone(), Metric::Latency, rtt);
            input.set(d, Metric::PacketLoss, loss);
        }
        input
    })
}

/// Strategy: a random (valid) requirement-weight assignment over the
/// builtin matrix, keeping at least one positive weight per use case.
fn random_config() -> impl Strategy<Value = IqbConfig> {
    (
        prop::collection::vec(0u32..=5, 24),
        prop::collection::vec(1u32..=5, 6),
        prop_oneof![Just(ScoringMode::Binary), Just(ScoringMode::Graded)],
        prop_oneof![Just(QualityLevel::High), Just(QualityLevel::Minimum)],
    )
        .prop_map(|(req_ws, uc_ws, mode, level)| {
            let mut config = IqbConfig::paper_default();
            config.scoring_mode = mode;
            config.quality_level = level;
            let mut i = 0;
            for u in UseCase::BUILTIN {
                let mut any_positive = false;
                for m in Metric::ALL {
                    let mut w = req_ws[i];
                    i += 1;
                    // Force the last metric positive if the row would be
                    // all-zero (validation requires one positive weight).
                    if m == Metric::PacketLoss && !any_positive && w == 0 {
                        w = 1;
                    }
                    if w > 0 {
                        any_positive = true;
                    }
                    config
                        .requirement_weights
                        .set(u.clone(), m, Weight::new(w).unwrap());
                }
            }
            for (u, w) in UseCase::BUILTIN.into_iter().zip(uc_ws) {
                config.use_case_weights.set(u, Weight::new(w).unwrap());
            }
            config
        })
}

proptest! {
    #[test]
    fn score_is_bounded(input in uniform_input()) {
        let config = IqbConfig::paper_default();
        let report = score_iqb(&config, &input).unwrap();
        prop_assert!((0.0..=1.0).contains(&report.score));
        for u in report.use_cases.values() {
            prop_assert!((0.0..=1.0).contains(&u.score));
            for r in u.requirements.values() {
                prop_assert!((0.0..=1.0).contains(&r.agreement));
            }
        }
    }

    #[test]
    fn flat_eq5_matches_tree_eq124(input in uniform_input(), config in random_config()) {
        let tree = score_iqb(&config, &input).unwrap().score;
        let flat = score_iqb_flat(&config, &input).unwrap();
        prop_assert!((tree - flat).abs() < 1e-9, "tree {} vs flat {}", tree, flat);
    }

    #[test]
    fn flat_eq5_matches_tree_on_sparse_input(input in sparse_input(), config in random_config()) {
        match (score_iqb(&config, &input), score_iqb_flat(&config, &input)) {
            (Ok(report), Ok(flat)) => {
                prop_assert!((report.score - flat).abs() < 1e-9);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "tree {:?} vs flat {:?} disagree on evaluability", a.map(|r| r.score), b),
        }
    }

    #[test]
    fn improving_download_never_hurts(
        input in uniform_input(),
        bump in 1.0..500.0f64,
    ) {
        let config = IqbConfig::paper_default();
        let base = score_iqb(&config, &input).unwrap().score;
        let mut better = input.clone();
        for d in DatasetId::BUILTIN {
            let v = input.get(&d, Metric::DownloadThroughput).unwrap();
            better.set(d, Metric::DownloadThroughput, v + bump);
        }
        let improved = score_iqb(&config, &better).unwrap().score;
        prop_assert!(improved >= base - 1e-12);
    }

    #[test]
    fn reducing_latency_never_hurts(
        input in uniform_input(),
        factor in 0.1..1.0f64,
    ) {
        let config = IqbConfig::paper_default();
        let base = score_iqb(&config, &input).unwrap().score;
        let mut better = input.clone();
        for d in DatasetId::BUILTIN {
            let v = input.get(&d, Metric::Latency).unwrap();
            better.set(d, Metric::Latency, v * factor);
        }
        let improved = score_iqb(&config, &better).unwrap().score;
        prop_assert!(improved >= base - 1e-12);
    }

    #[test]
    fn graded_never_below_binary(input in uniform_input()) {
        let binary = IqbConfig::paper_default();
        let graded = IqbConfig::builder().scoring_mode(ScoringMode::Graded).build().unwrap();
        let b = score_iqb(&binary, &input).unwrap().score;
        let g = score_iqb(&graded, &input).unwrap().score;
        // Graded gives partial credit wherever binary gives 0 and full
        // credit wherever binary gives 1.
        prop_assert!(g >= b - 1e-12, "graded {} < binary {}", g, b);
    }

    #[test]
    fn minimum_level_never_below_high_per_requirement(input in uniform_input()) {
        // NOTE: this laxness guarantee holds per requirement, not for the
        // composite. Fig. 2's "Other" cells (web-browsing/gaming upload)
        // exist only at the High level, so the Minimum-level evaluation
        // includes an extra requirement that can fail — the composite can
        // legitimately be lower at Minimum on upload-starved connections.
        let high = IqbConfig::paper_default();
        let min = IqbConfig::builder().quality_level(QualityLevel::Minimum).build().unwrap();
        let r_high = score_iqb(&high, &input).unwrap();
        let r_min = score_iqb(&min, &input).unwrap();
        for (u, ucs_min) in &r_min.use_cases {
            let Some(ucs_high) = r_high.use_cases.get(u) else { continue };
            for (m, req_min) in &ucs_min.requirements {
                let Some(req_high) = ucs_high.requirements.get(m) else { continue };
                prop_assert!(
                    req_min.agreement >= req_high.agreement - 1e-12,
                    "{}/{}: min {} < high {}", u, m, req_min.agreement, req_high.agreement
                );
            }
        }
    }

    #[test]
    fn scaling_all_weights_equally_is_invariant(input in uniform_input()) {
        // Doubling every use-case weight must not change the composite
        // (normalization divides it out). Weights cap at 5, so use 1 -> 2.
        let base = IqbConfig::paper_default();
        let mut doubled = IqbConfig::paper_default();
        for u in UseCase::BUILTIN {
            doubled.use_case_weights.set(u, Weight::new(2).unwrap());
        }
        let a = score_iqb(&base, &input).unwrap().score;
        let b = score_iqb(&doubled, &input).unwrap().score;
        prop_assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_use_case_is_ignored(input in uniform_input()) {
        // Zeroing gaming's weight must equal removing gaming entirely.
        let mut zeroed = IqbConfig::paper_default();
        zeroed.use_case_weights.set(UseCase::Gaming, Weight::ZERO);
        let removed = IqbConfig::builder()
            .use_cases(UseCase::BUILTIN[..5].to_vec())
            .build()
            .unwrap();
        let a = score_iqb(&zeroed, &input).unwrap().score;
        let b = score_iqb(&removed, &input).unwrap().score;
        prop_assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn report_tree_recomputes_to_score(input in sparse_input(), config in random_config()) {
        if let Ok(report) = score_iqb(&config, &input) {
            prop_assert!((report.recompute_from_tree() - report.score).abs() < 1e-9);
        }
    }
}
