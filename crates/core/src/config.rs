//! The complete IQB configuration.
//!
//! [`IqbConfig`] bundles everything the score formula needs: which use
//! cases and datasets participate, the threshold table (Fig. 2), the three
//! weight families, the quality level scored against, and the scoring mode.
//! [`IqbConfig::paper_default`] is the configuration published in the
//! poster; the builder supports the adaptations the paper invites
//! ("based on the intended application, or through iterative refinements").

use serde::{Deserialize, Serialize};

use crate::dataset::DatasetId;
use crate::error::CoreError;
use crate::metric::Metric;
use crate::threshold::{QualityLevel, ThresholdTable};
use crate::usecase::UseCase;
use crate::weights::{DatasetWeights, UseCaseWeights, Weight, WeightTable};

/// How a (use case, requirement, dataset) cell is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ScoringMode {
    /// The paper's formulation: `S_{u,r,d} ∈ {0, 1}` — the aggregate either
    /// meets the threshold or it does not.
    #[default]
    Binary,
    /// Extension (E8 in DESIGN.md): a piecewise-linear score in `[0, 1]`
    /// using *both* Fig. 2 levels — 0 below the minimum-quality threshold,
    /// 0.5 at it, 1 at the high-quality threshold, linear in between.
    Graded,
}

/// Full configuration of the IQB framework.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IqbConfig {
    /// Use cases that participate in the composite, in report order.
    pub use_cases: Vec<UseCase>,
    /// Datasets that corroborate each requirement, in report order.
    pub datasets: Vec<DatasetId>,
    /// The threshold table (paper Fig. 2 by default).
    pub thresholds: ThresholdTable,
    /// Requirement weights `w_{u,r}` (paper Table 1 by default).
    pub requirement_weights: WeightTable,
    /// Use-case weights `w_u` (uniform by default; unpublished in the poster).
    pub use_case_weights: UseCaseWeights,
    /// Dataset weights `w_{u,r,d}` (uniform by default; unpublished).
    pub dataset_weights: DatasetWeights,
    /// Quality level thresholds are evaluated against. The paper's score
    /// uses the high-quality level.
    pub quality_level: QualityLevel,
    /// Binary (paper) or graded (extension) cell scoring.
    pub scoring_mode: ScoringMode,
}

impl IqbConfig {
    /// The configuration published in the poster: six use cases, three
    /// datasets, Fig. 2 thresholds, Table 1 weights, uniform `w_u` and
    /// `w_{u,r,d}`, binary scoring against the high-quality level.
    pub fn paper_default() -> Self {
        IqbConfig {
            use_cases: UseCase::BUILTIN.to_vec(),
            datasets: DatasetId::BUILTIN.to_vec(),
            thresholds: ThresholdTable::paper_fig2(),
            requirement_weights: WeightTable::paper_table1(),
            use_case_weights: UseCaseWeights::uniform(),
            dataset_weights: DatasetWeights::uniform(),
            quality_level: QualityLevel::High,
            scoring_mode: ScoringMode::Binary,
        }
    }

    /// Starts a builder from this configuration.
    pub fn to_builder(&self) -> IqbConfigBuilder {
        IqbConfigBuilder {
            config: self.clone(),
        }
    }

    /// Starts a builder from the paper defaults.
    pub fn builder() -> IqbConfigBuilder {
        Self::paper_default().to_builder()
    }

    /// Validates structural consistency.
    ///
    /// Checks: non-empty use-case and dataset lists, no duplicates, a
    /// threshold row and a weight row for every participating use case and
    /// metric, threshold-table consistency, at least one positive
    /// requirement weight per use case, and at least one positive use-case
    /// weight overall.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.use_cases.is_empty() {
            return Err(CoreError::InvalidConfig("no use cases configured".into()));
        }
        if self.datasets.is_empty() {
            return Err(CoreError::InvalidConfig("no datasets configured".into()));
        }
        let mut seen_u = std::collections::BTreeSet::new();
        for u in &self.use_cases {
            if !seen_u.insert(u) {
                return Err(CoreError::InvalidConfig(format!("duplicate use case {u}")));
            }
        }
        let mut seen_d = std::collections::BTreeSet::new();
        for d in &self.datasets {
            if !seen_d.insert(d) {
                return Err(CoreError::InvalidConfig(format!("duplicate dataset {d}")));
            }
        }
        for u in &self.use_cases {
            for m in Metric::ALL {
                if self.thresholds.get_pair(u, m).is_none() {
                    return Err(CoreError::InvalidConfig(format!(
                        "missing threshold cell for {u}/{m}"
                    )));
                }
                if self.requirement_weights.get(u, m).is_none() {
                    return Err(CoreError::InvalidConfig(format!(
                        "missing requirement weight for {u}/{m}"
                    )));
                }
            }
        }
        self.thresholds.validate()?;
        self.requirement_weights.validate()?;
        if self
            .use_cases
            .iter()
            .all(|u| self.use_case_weights.get(u) == Weight::ZERO)
        {
            return Err(CoreError::InvalidConfig(
                "all use-case weights are zero".into(),
            ));
        }
        Ok(())
    }
}

impl Default for IqbConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Fluent builder over [`IqbConfig`].
///
/// ```
/// use iqb_core::config::{IqbConfig, ScoringMode};
/// use iqb_core::threshold::QualityLevel;
///
/// let config = IqbConfig::builder()
///     .quality_level(QualityLevel::Minimum)
///     .scoring_mode(ScoringMode::Graded)
///     .build()
///     .unwrap();
/// assert_eq!(config.quality_level, QualityLevel::Minimum);
/// ```
#[derive(Debug, Clone)]
pub struct IqbConfigBuilder {
    config: IqbConfig,
}

impl IqbConfigBuilder {
    /// Replaces the participating use cases.
    pub fn use_cases(mut self, use_cases: Vec<UseCase>) -> Self {
        self.config.use_cases = use_cases;
        self
    }

    /// Adds a use case (with its threshold and weight rows supplied via
    /// [`Self::threshold_row`] / [`Self::requirement_weight`]).
    pub fn add_use_case(mut self, use_case: UseCase) -> Self {
        self.config.use_cases.push(use_case);
        self
    }

    /// Replaces the participating datasets.
    pub fn datasets(mut self, datasets: Vec<DatasetId>) -> Self {
        self.config.datasets = datasets;
        self
    }

    /// Replaces the whole threshold table.
    pub fn thresholds(mut self, thresholds: ThresholdTable) -> Self {
        self.config.thresholds = thresholds;
        self
    }

    /// Sets one threshold cell.
    pub fn threshold_row(
        mut self,
        use_case: UseCase,
        metric: Metric,
        pair: crate::threshold::LevelPair,
    ) -> Self {
        self.config.thresholds.set(use_case, metric, pair);
        self
    }

    /// Sets one requirement weight `w_{u,r}`.
    pub fn requirement_weight(mut self, use_case: UseCase, metric: Metric, weight: Weight) -> Self {
        self.config
            .requirement_weights
            .set(use_case, metric, weight);
        self
    }

    /// Sets one use-case weight `w_u`.
    pub fn use_case_weight(mut self, use_case: UseCase, weight: Weight) -> Self {
        self.config.use_case_weights.set(use_case, weight);
        self
    }

    /// Sets one dataset weight `w_{u,r,d}`.
    pub fn dataset_weight(
        mut self,
        use_case: UseCase,
        metric: Metric,
        dataset: DatasetId,
        weight: Weight,
    ) -> Self {
        self.config
            .dataset_weights
            .set(use_case, metric, dataset, weight);
        self
    }

    /// Sets the quality level scored against.
    pub fn quality_level(mut self, level: QualityLevel) -> Self {
        self.config.quality_level = level;
        self
    }

    /// Sets the scoring mode.
    pub fn scoring_mode(mut self, mode: ScoringMode) -> Self {
        self.config.scoring_mode = mode;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<IqbConfig, CoreError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::{LevelPair, ThresholdSpec};

    #[test]
    fn paper_default_validates() {
        IqbConfig::paper_default().validate().unwrap();
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(IqbConfig::default(), IqbConfig::paper_default());
    }

    #[test]
    fn empty_use_cases_rejected() {
        let err = IqbConfig::builder().use_cases(vec![]).build().unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)));
    }

    #[test]
    fn empty_datasets_rejected() {
        assert!(IqbConfig::builder().datasets(vec![]).build().is_err());
    }

    #[test]
    fn duplicate_use_case_rejected() {
        let err = IqbConfig::builder()
            .add_use_case(UseCase::Gaming)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn duplicate_dataset_rejected() {
        assert!(IqbConfig::builder()
            .datasets(vec![DatasetId::Ndt, DatasetId::Ndt])
            .build()
            .is_err());
    }

    #[test]
    fn custom_use_case_requires_rows() {
        let surgery = UseCase::custom("Remote Surgery").unwrap();
        // Without threshold/weight rows the build fails...
        assert!(IqbConfig::builder()
            .add_use_case(surgery.clone())
            .build()
            .is_err());
        // ...and succeeds once every metric has a cell.
        let mut builder = IqbConfig::builder().add_use_case(surgery.clone());
        for m in Metric::ALL {
            builder = builder
                .threshold_row(
                    surgery.clone(),
                    m,
                    LevelPair {
                        min: ThresholdSpec::Value(if m == Metric::PacketLoss { 1.0 } else { 10.0 }),
                        high: ThresholdSpec::Value(if m == Metric::PacketLoss {
                            0.1
                        } else {
                            match m.polarity() {
                                crate::metric::Polarity::HigherIsBetter => 100.0,
                                crate::metric::Polarity::LowerIsBetter => 5.0,
                            }
                        }),
                    },
                )
                .requirement_weight(surgery.clone(), m, Weight::new(3).unwrap());
        }
        let config = builder.build().unwrap();
        assert_eq!(config.use_cases.len(), 7);
    }

    #[test]
    fn all_zero_use_case_weights_rejected() {
        let mut builder = IqbConfig::builder();
        for u in UseCase::BUILTIN {
            builder = builder.use_case_weight(u, Weight::ZERO);
        }
        assert!(builder.build().is_err());
    }

    #[test]
    fn builder_round_trips_settings() {
        let config = IqbConfig::builder()
            .quality_level(QualityLevel::Minimum)
            .scoring_mode(ScoringMode::Graded)
            .use_case_weight(UseCase::Gaming, Weight::new(5).unwrap())
            .dataset_weight(
                UseCase::Gaming,
                Metric::Latency,
                DatasetId::Ookla,
                Weight::ZERO,
            )
            .build()
            .unwrap();
        assert_eq!(config.quality_level, QualityLevel::Minimum);
        assert_eq!(config.scoring_mode, ScoringMode::Graded);
        assert_eq!(config.use_case_weights.get(&UseCase::Gaming).get(), 5);
        assert_eq!(
            config
                .dataset_weights
                .get(&UseCase::Gaming, Metric::Latency, &DatasetId::Ookla),
            Weight::ZERO
        );
    }

    #[test]
    fn serde_json_round_trip() {
        let config = IqbConfig::paper_default();
        let json = serde_json::to_string(&config).unwrap();
        let back: IqbConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
        back.validate().unwrap();
    }

    #[test]
    fn serde_rejects_out_of_range_weight() {
        // Weight serializes as a bare integer; 7 must fail to deserialize.
        let bad = "7";
        assert!(serde_json::from_str::<Weight>(bad).is_err());
        assert_eq!(serde_json::from_str::<Weight>("5").unwrap().get(), 5);
    }

    #[test]
    fn single_dataset_config_is_valid() {
        let config = IqbConfig::builder()
            .datasets(vec![DatasetId::Ndt])
            .build()
            .unwrap();
        assert_eq!(config.datasets.len(), 1);
    }
}
