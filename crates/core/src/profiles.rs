//! Named configuration profiles.
//!
//! The paper's §4 invites adaptation "based on the intended application".
//! This module ships a small registry of vetted profiles so downstream
//! tools (the CLI, reports) can reference configurations by name instead
//! of rebuilding them:
//!
//! | Name | Intent |
//! |---|---|
//! | `paper-default` | Exactly the poster's configuration. |
//! | `minimum-access` | Binary scoring against the *minimum* level — "is basic service available?", the broadband-availability question. |
//! | `realtime` | Upweights video conferencing and gaming (w_u = 3); graded scoring. The remote-work/esports household. |
//! | `streaming-household` | Upweights video and audio streaming (w_u = 3); graded scoring. |
//! | `graded` | Paper defaults with graded cell scoring (E8's treatment arm). |

use crate::config::{IqbConfig, ScoringMode};
use crate::error::CoreError;
use crate::threshold::QualityLevel;
use crate::usecase::UseCase;
use crate::weights::Weight;

/// Names of all built-in profiles, in listing order.
pub const PROFILE_NAMES: [&str; 5] = [
    "paper-default",
    "minimum-access",
    "realtime",
    "streaming-household",
    "graded",
];

/// Builds a profile by name.
///
/// Returns [`CoreError::InvalidConfig`] for unknown names; the message
/// lists the valid ones.
pub fn by_name(name: &str) -> Result<IqbConfig, CoreError> {
    match name {
        "paper-default" => Ok(IqbConfig::paper_default()),
        "minimum-access" => IqbConfig::builder()
            .quality_level(QualityLevel::Minimum)
            .build(),
        "realtime" => IqbConfig::builder()
            .scoring_mode(ScoringMode::Graded)
            .use_case_weight(UseCase::VideoConferencing, Weight::new(3)?)
            .use_case_weight(UseCase::Gaming, Weight::new(3)?)
            .build(),
        "streaming-household" => IqbConfig::builder()
            .scoring_mode(ScoringMode::Graded)
            .use_case_weight(UseCase::VideoStreaming, Weight::new(3)?)
            .use_case_weight(UseCase::AudioStreaming, Weight::new(3)?)
            .build(),
        "graded" => IqbConfig::builder()
            .scoring_mode(ScoringMode::Graded)
            .build(),
        other => Err(CoreError::InvalidConfig(format!(
            "unknown profile `{other}`; valid profiles: {}",
            PROFILE_NAMES.join(", ")
        ))),
    }
}

/// One-line description for each profile (for `--help`-style listings).
pub fn describe(name: &str) -> Option<&'static str> {
    match name {
        "paper-default" => Some("the poster's configuration: Fig. 2, Table 1, binary, high level"),
        "minimum-access" => Some("binary against the minimum-quality level: basic availability"),
        "realtime" => Some("graded; video conferencing and gaming weighted 3x"),
        "streaming-household" => Some("graded; video and audio streaming weighted 3x"),
        "graded" => Some("paper defaults with graded (piecewise-linear) cell scoring"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetId;
    use crate::input::AggregateInput;
    use crate::metric::Metric;
    use crate::score::score_iqb;

    #[test]
    fn every_listed_profile_builds_and_validates() {
        for name in PROFILE_NAMES {
            let config = by_name(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            config.validate().unwrap();
            assert!(describe(name).is_some(), "{name} lacks a description");
        }
    }

    #[test]
    fn unknown_profile_lists_valid_names() {
        let err = by_name("ultra").unwrap_err();
        assert!(err.to_string().contains("paper-default"));
        assert_eq!(describe("ultra"), None);
    }

    #[test]
    fn paper_default_profile_is_the_paper_default() {
        assert_eq!(
            by_name("paper-default").unwrap(),
            IqbConfig::paper_default()
        );
    }

    #[test]
    fn profiles_produce_distinct_scores_on_a_skewed_connection() {
        // Great latency/loss, marginal throughput: the profiles disagree.
        let mut input = AggregateInput::new();
        for d in DatasetId::BUILTIN {
            input.set(d.clone(), Metric::DownloadThroughput, 60.0);
            input.set(d.clone(), Metric::UploadThroughput, 30.0);
            input.set(d.clone(), Metric::Latency, 15.0);
            input.set(d, Metric::PacketLoss, 0.05);
        }
        let mut scores = std::collections::BTreeMap::new();
        for name in PROFILE_NAMES {
            let config = by_name(name).unwrap();
            scores.insert(name, score_iqb(&config, &input).unwrap().score);
        }
        // Minimum-access is the laxest view of this connection.
        assert!(scores["minimum-access"] >= scores["paper-default"]);
        // Realtime (latency-loving) likes this connection more than the
        // binary paper default does.
        assert!(scores["realtime"] > scores["paper-default"]);
        // The graded variants differ from binary.
        assert_ne!(scores["graded"], scores["paper-default"]);
    }

    #[test]
    fn realtime_profile_upweights_the_right_rows() {
        let config = by_name("realtime").unwrap();
        assert_eq!(
            config
                .use_case_weights
                .get(&UseCase::VideoConferencing)
                .get(),
            3
        );
        assert_eq!(config.use_case_weights.get(&UseCase::Gaming).get(), 3);
        assert_eq!(config.use_case_weights.get(&UseCase::WebBrowsing).get(), 1);
        assert_eq!(config.scoring_mode, ScoringMode::Graded);
    }
}
