//! Datasets — the measurement tier of the IQB framework.
//!
//! The paper grounds IQB in three openly available datasets: M-Lab's NDT,
//! Cloudflare's speed tests (both available per test) and Ookla's published
//! aggregates. *"The benefit of using multiple datasets is to corroborate
//! the insights of each other"* — each measures throughput in a
//! fundamentally different way, so agreement across them strengthens a
//! conclusion. [`DatasetDescriptor`] records those methodology differences;
//! the `iqb-netsim` crate emulates them when synthesizing data.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a measurement dataset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(into = "String", try_from = "String")]
pub enum DatasetId {
    /// M-Lab's Network Diagnostic Tool: single-stream TCP, ~10 s transfers.
    Ndt,
    /// Cloudflare's browser speed test: file-size ladder over HTTP.
    Cloudflare,
    /// Ookla Speedtest: multi-stream TCP, published as aggregates.
    Ookla,
    /// A user-supplied dataset.
    Custom(String),
}

impl DatasetId {
    /// The paper's three reference datasets.
    pub const BUILTIN: [DatasetId; 3] = [DatasetId::Ndt, DatasetId::Cloudflare, DatasetId::Ookla];

    /// Short label for tables and reports.
    pub fn label(&self) -> &str {
        match self {
            DatasetId::Ndt => "M-Lab NDT",
            DatasetId::Cloudflare => "Cloudflare",
            DatasetId::Ookla => "Ookla",
            DatasetId::Custom(name) => name,
        }
    }
}

impl DatasetId {
    /// Stable lowercase token used in flat files and JSON keys.
    pub fn token(&self) -> String {
        match self {
            DatasetId::Ndt => "ndt".to_string(),
            DatasetId::Cloudflare => "cloudflare".to_string(),
            DatasetId::Ookla => "ookla".to_string(),
            DatasetId::Custom(name) => name.clone(),
        }
    }

    /// Parses a token produced by [`DatasetId::token`].
    pub fn from_token(token: &str) -> Result<Self, String> {
        match token {
            "ndt" => Ok(DatasetId::Ndt),
            "cloudflare" => Ok(DatasetId::Cloudflare),
            "ookla" => Ok(DatasetId::Ookla),
            other if !other.trim().is_empty() => Ok(DatasetId::Custom(other.to_string())),
            _ => Err("empty dataset token".to_string()),
        }
    }
}

impl From<DatasetId> for String {
    fn from(d: DatasetId) -> String {
        d.token()
    }
}

impl TryFrom<String> for DatasetId {
    type Error = String;
    fn try_from(value: String) -> Result<Self, Self::Error> {
        DatasetId::from_token(&value)
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.label())
    }
}

/// How a dataset's measurements are published.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// Individual test results are available (NDT, Cloudflare).
    PerTest,
    /// Only pre-aggregated summaries are available (Ookla open data).
    Aggregate,
}

/// Throughput measurement methodology — the reason the three datasets
/// disagree on the same connection, and the thing corroboration averages
/// over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Methodology {
    /// One long-running TCP stream (NDT): sensitive to loss and RTT on
    /// high bandwidth-delay-product paths, tends to under-report capacity.
    SingleStream,
    /// Several parallel TCP streams (Ookla): saturates capacity, reports
    /// close to the provisioned rate.
    MultiStream,
    /// A ladder of fixed-size HTTP fetches (Cloudflare): short flows spend
    /// much of their life in slow start, biasing small-file throughput low.
    FileLadder,
    /// Anything else (custom datasets).
    Other,
}

/// Static description of a dataset and its measurement characteristics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetDescriptor {
    /// Which dataset this describes.
    pub id: DatasetId,
    /// Per-test or aggregate-only publication.
    pub granularity: Granularity,
    /// Throughput methodology.
    pub methodology: Methodology,
    /// Whether the dataset reports packet loss. (Ookla's open aggregates do
    /// not; the scoring normalization redistributes the weight.)
    pub reports_packet_loss: bool,
    /// Whether latency is measured under load (working latency) rather than
    /// idle. NDT reports during-transfer RTT; Ookla reports idle ping.
    pub loaded_latency: bool,
}

impl DatasetDescriptor {
    /// Descriptor for M-Lab NDT.
    pub fn ndt() -> Self {
        DatasetDescriptor {
            id: DatasetId::Ndt,
            granularity: Granularity::PerTest,
            methodology: Methodology::SingleStream,
            reports_packet_loss: true,
            loaded_latency: true,
        }
    }

    /// Descriptor for Cloudflare speed tests.
    pub fn cloudflare() -> Self {
        DatasetDescriptor {
            id: DatasetId::Cloudflare,
            granularity: Granularity::PerTest,
            methodology: Methodology::FileLadder,
            reports_packet_loss: true,
            loaded_latency: true,
        }
    }

    /// Descriptor for Ookla open aggregates.
    pub fn ookla() -> Self {
        DatasetDescriptor {
            id: DatasetId::Ookla,
            granularity: Granularity::Aggregate,
            methodology: Methodology::MultiStream,
            reports_packet_loss: false,
            loaded_latency: false,
        }
    }

    /// Descriptors for the paper's three datasets.
    pub fn builtin() -> Vec<Self> {
        vec![Self::ndt(), Self::cloudflare(), Self::ookla()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_builtin_datasets() {
        assert_eq!(DatasetId::BUILTIN.len(), 3);
        assert_eq!(DatasetDescriptor::builtin().len(), 3);
    }

    #[test]
    fn labels() {
        assert_eq!(DatasetId::Ndt.label(), "M-Lab NDT");
        assert_eq!(DatasetId::Custom("RIPE Atlas".into()).label(), "RIPE Atlas");
        assert_eq!(DatasetId::Ookla.to_string(), "Ookla");
    }

    #[test]
    fn methodologies_differ_across_builtins() {
        let descriptors = DatasetDescriptor::builtin();
        let methodologies: std::collections::HashSet<_> =
            descriptors.iter().map(|d| d.methodology).collect();
        assert_eq!(
            methodologies.len(),
            3,
            "the paper's corroboration argument rests on distinct methodologies"
        );
    }

    #[test]
    fn ookla_is_aggregate_only_without_loss() {
        let ookla = DatasetDescriptor::ookla();
        assert_eq!(ookla.granularity, Granularity::Aggregate);
        assert!(!ookla.reports_packet_loss);
    }

    #[test]
    fn per_test_datasets_report_loss() {
        assert!(DatasetDescriptor::ndt().reports_packet_loss);
        assert!(DatasetDescriptor::cloudflare().reports_packet_loss);
    }
}
