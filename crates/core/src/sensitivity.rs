//! Sensitivity analysis over the framework's configurable choices.
//!
//! The paper closes by stressing that its weights, thresholds and
//! aggregation rule are *"a set of choices … designed to be easily
//! adapted"*. This module quantifies how much each choice matters for a
//! given input:
//!
//! * [`requirement_weight_tornado`] — perturb each Table 1 weight by ±1 and
//!   report the induced change in `S_IQB` (a tornado analysis, experiment
//!   E6).
//! * [`use_case_weight_tornado`] — same for the use-case weights `w_u`.
//! * [`threshold_sweep`] — scale one threshold cell across a factor range
//!   and trace the composite, exposing the cliff locations of binary
//!   scoring.

use serde::{Deserialize, Serialize};

use crate::config::IqbConfig;
use crate::error::CoreError;
use crate::input::AggregateInput;
use crate::metric::Metric;
use crate::score::score_iqb;
use crate::threshold::{LevelPair, QualityLevel, ThresholdSpec};
use crate::usecase::UseCase;
use crate::weights::Weight;

/// One row of a tornado analysis: the score under a −1 and a +1
/// perturbation of a single weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TornadoRow {
    /// Use case of the perturbed weight.
    pub use_case: UseCase,
    /// Metric of the perturbed weight (`None` for use-case-weight rows).
    pub metric: Option<Metric>,
    /// The baseline weight value.
    pub baseline_weight: u8,
    /// Composite score with the weight decreased by 1 (clamped at 0).
    /// `None` when the weight was already 0.
    pub score_minus: Option<f64>,
    /// Composite score with the weight increased by 1 (clamped at 5).
    /// `None` when the weight was already 5.
    pub score_plus: Option<f64>,
    /// The baseline composite score.
    pub baseline_score: f64,
}

impl TornadoRow {
    /// The total swing `max − min` over baseline and both perturbations.
    pub fn swing(&self) -> f64 {
        let mut lo = self.baseline_score;
        let mut hi = self.baseline_score;
        for s in [self.score_minus, self.score_plus].into_iter().flatten() {
            lo = lo.min(s);
            hi = hi.max(s);
        }
        hi - lo
    }
}

/// Tornado analysis over every requirement weight `w_{u,r}` of the
/// configuration: each is perturbed by ±1 (clamped to the 0..=5 range) and
/// the composite recomputed. Rows are returned sorted by descending swing.
pub fn requirement_weight_tornado(
    config: &IqbConfig,
    input: &AggregateInput,
) -> Result<Vec<TornadoRow>, CoreError> {
    let baseline = score_iqb(config, input)?.score;
    let mut rows = Vec::new();
    for use_case in &config.use_cases {
        for metric in Metric::ALL {
            let w = config
                .requirement_weights
                .get(use_case, metric)
                .ok_or_else(|| {
                    CoreError::InvalidConfig(format!("missing weight for {use_case}/{metric}"))
                })?;
            let rescore = |new_w: u32| -> Result<f64, CoreError> {
                let mut c = config.clone();
                c.requirement_weights
                    .set(use_case.clone(), metric, Weight::new(new_w)?);
                Ok(score_iqb(&c, input)?.score)
            };
            let score_minus = if w.get() > 0 {
                Some(rescore(u32::from(w.get()) - 1)?)
            } else {
                None
            };
            let score_plus = if w.get() < 5 {
                Some(rescore(u32::from(w.get()) + 1)?)
            } else {
                None
            };
            rows.push(TornadoRow {
                use_case: use_case.clone(),
                metric: Some(metric),
                baseline_weight: w.get(),
                score_minus,
                score_plus,
                baseline_score: baseline,
            });
        }
    }
    rows.sort_by(|a, b| b.swing().total_cmp(&a.swing()));
    Ok(rows)
}

/// Tornado analysis over the use-case weights `w_u`.
pub fn use_case_weight_tornado(
    config: &IqbConfig,
    input: &AggregateInput,
) -> Result<Vec<TornadoRow>, CoreError> {
    let baseline = score_iqb(config, input)?.score;
    let mut rows = Vec::new();
    for use_case in &config.use_cases {
        let w = config.use_case_weights.get(use_case);
        let rescore = |new_w: u32| -> Result<f64, CoreError> {
            let mut c = config.clone();
            c.use_case_weights
                .set(use_case.clone(), Weight::new(new_w)?);
            Ok(score_iqb(&c, input)?.score)
        };
        let score_minus = if w.get() > 0 {
            Some(rescore(u32::from(w.get()) - 1)?)
        } else {
            None
        };
        let score_plus = if w.get() < 5 {
            Some(rescore(u32::from(w.get()) + 1)?)
        } else {
            None
        };
        rows.push(TornadoRow {
            use_case: use_case.clone(),
            metric: None,
            baseline_weight: w.get(),
            score_minus,
            score_plus,
            baseline_score: baseline,
        });
    }
    rows.sort_by(|a, b| b.swing().total_cmp(&a.swing()));
    Ok(rows)
}

/// One point of a threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Multiplier applied to the baseline threshold.
    pub factor: f64,
    /// The scaled threshold value.
    pub threshold: f64,
    /// The composite score at that threshold.
    pub score: f64,
}

/// Clamps the untouched level of a swept pair so min/high stay consistent.
///
/// `other_is_high` is true when `spec` is the high-quality level (and the
/// swept value is the new minimum). For higher-is-better metrics high must
/// be ≥ min; for lower-is-better, high must be ≤ min. `Unspecified` cells
/// pass through untouched.
fn clamp_spec(
    spec: ThresholdSpec,
    swept_value: f64,
    polarity: crate::metric::Polarity,
    other_is_high: bool,
) -> ThresholdSpec {
    use crate::metric::Polarity;
    let Some(current) = spec.effective_value(polarity) else {
        return spec;
    };
    let needs_clamp = match (polarity, other_is_high) {
        // high must be >= min (throughput)
        (Polarity::HigherIsBetter, true) => current < swept_value,
        // min must be <= high (throughput)
        (Polarity::HigherIsBetter, false) => current > swept_value,
        // high must be <= min (latency/loss)
        (Polarity::LowerIsBetter, true) => current > swept_value,
        // min must be >= high (latency/loss)
        (Polarity::LowerIsBetter, false) => current < swept_value,
    };
    if needs_clamp {
        ThresholdSpec::Value(swept_value)
    } else {
        spec
    }
}

/// Sweeps one threshold cell: the (use case, metric) threshold at `level`
/// is scaled by each factor in `factors` and the composite recomputed.
///
/// Factors must be positive. `Unspecified` cells cannot be swept.
pub fn threshold_sweep(
    config: &IqbConfig,
    input: &AggregateInput,
    use_case: &UseCase,
    metric: Metric,
    level: QualityLevel,
    factors: &[f64],
) -> Result<Vec<SweepPoint>, CoreError> {
    let pair = config
        .thresholds
        .get_pair(use_case, metric)
        .ok_or_else(|| CoreError::UnknownUseCase(use_case.clone()))?;
    let base_spec = match level {
        QualityLevel::Minimum => pair.min,
        QualityLevel::High => pair.high,
    };
    let base = base_spec
        .effective_value(metric.polarity())
        .ok_or_else(|| {
            CoreError::InvalidConfig(format!(
                "threshold for {use_case}/{metric} at {level:?} is Unspecified and cannot be swept"
            ))
        })?;
    let mut points = Vec::with_capacity(factors.len());
    for &factor in factors {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(CoreError::InvalidConfig(format!(
                "sweep factor {factor} must be positive and finite"
            )));
        }
        let scaled = base * factor;
        let mut c = config.clone();
        // Scaling one level can make it laxer/stricter than the other; the
        // untouched level is clamped to keep the pair consistent, so each
        // sweep point remains a valid configuration.
        let new_pair = match level {
            QualityLevel::Minimum => LevelPair {
                min: ThresholdSpec::Value(scaled),
                high: clamp_spec(pair.high, scaled, metric.polarity(), true),
            },
            QualityLevel::High => LevelPair {
                min: clamp_spec(pair.min, scaled, metric.polarity(), false),
                high: ThresholdSpec::Value(scaled),
            },
        };
        c.thresholds.set(use_case.clone(), metric, new_pair);
        let score = score_iqb(&c, input)?.score;
        points.push(SweepPoint {
            factor,
            threshold: scaled,
            score,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetId;

    fn uniform_input(down: f64, up: f64, rtt: f64, loss: f64) -> AggregateInput {
        let mut input = AggregateInput::new();
        for d in DatasetId::BUILTIN {
            input.set(d.clone(), Metric::DownloadThroughput, down);
            input.set(d.clone(), Metric::UploadThroughput, up);
            input.set(d.clone(), Metric::Latency, rtt);
            input.set(d, Metric::PacketLoss, loss);
        }
        input
    }

    #[test]
    fn tornado_covers_every_weight_cell() {
        let config = IqbConfig::paper_default();
        let input = uniform_input(120.0, 15.0, 18.0, 0.05);
        let rows = requirement_weight_tornado(&config, &input).unwrap();
        assert_eq!(rows.len(), 6 * 4);
    }

    #[test]
    fn tornado_sorted_by_swing() {
        let config = IqbConfig::paper_default();
        let input = uniform_input(120.0, 15.0, 18.0, 0.05);
        let rows = requirement_weight_tornado(&config, &input).unwrap();
        for pair in rows.windows(2) {
            assert!(pair[0].swing() >= pair[1].swing() - 1e-15);
        }
    }

    #[test]
    fn perturbing_weight_of_unmet_requirement_moves_score() {
        // Upload fails everywhere in this input; increasing an upload
        // weight must lower the composite, decreasing must raise it.
        let config = IqbConfig::paper_default();
        let input = uniform_input(120.0, 15.0, 18.0, 0.05);
        let rows = requirement_weight_tornado(&config, &input).unwrap();
        let backup_up = rows
            .iter()
            .find(|r| {
                r.use_case == UseCase::OnlineBackup && r.metric == Some(Metric::UploadThroughput)
            })
            .unwrap();
        assert!(backup_up.score_plus.unwrap() < backup_up.baseline_score);
        assert!(backup_up.score_minus.unwrap() > backup_up.baseline_score);
    }

    #[test]
    fn perfect_input_has_zero_swings() {
        // When every cell scores 1, no weight matters.
        let config = IqbConfig::paper_default();
        let input = uniform_input(1000.0, 1000.0, 5.0, 0.0);
        for row in requirement_weight_tornado(&config, &input).unwrap() {
            assert!(row.swing() < 1e-12, "swing {} at {:?}", row.swing(), row);
        }
    }

    #[test]
    fn boundary_weights_skip_impossible_perturbations() {
        let config = IqbConfig::paper_default();
        let input = uniform_input(120.0, 15.0, 18.0, 0.05);
        let rows = requirement_weight_tornado(&config, &input).unwrap();
        let gaming_latency = rows
            .iter()
            .find(|r| r.use_case == UseCase::Gaming && r.metric == Some(Metric::Latency))
            .unwrap();
        // Gaming latency weighs 5: +1 is impossible.
        assert_eq!(gaming_latency.baseline_weight, 5);
        assert!(gaming_latency.score_plus.is_none());
        assert!(gaming_latency.score_minus.is_some());
    }

    #[test]
    fn use_case_tornado_has_one_row_per_use_case() {
        let config = IqbConfig::paper_default();
        let input = uniform_input(120.0, 15.0, 18.0, 0.05);
        let rows = use_case_weight_tornado(&config, &input).unwrap();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.metric.is_none()));
    }

    #[test]
    fn upweighting_weak_use_case_lowers_composite() {
        let config = IqbConfig::paper_default();
        let input = uniform_input(120.0, 15.0, 18.0, 0.05);
        let rows = use_case_weight_tornado(&config, &input).unwrap();
        // Online backup scores lowest on this input (upload 15 < 200).
        let backup = rows
            .iter()
            .find(|r| r.use_case == UseCase::OnlineBackup)
            .unwrap();
        assert!(backup.score_plus.unwrap() < backup.baseline_score);
    }

    #[test]
    fn threshold_sweep_traces_the_cliff() {
        let config = IqbConfig::paper_default();
        let input = uniform_input(120.0, 15.0, 18.0, 0.05);
        // Sweep video-conferencing upload high threshold (baseline 100)
        // from 0.1× (10) to 2× (200). Input upload is 15: factors ≤ 0.15
        // pass, larger fail.
        let factors = [0.1, 0.15, 0.2, 0.5, 1.0, 2.0];
        let points = threshold_sweep(
            &config,
            &input,
            &UseCase::VideoConferencing,
            Metric::UploadThroughput,
            QualityLevel::High,
            &factors,
        )
        .unwrap();
        assert_eq!(points.len(), factors.len());
        // Laxer threshold → weakly higher score.
        for w in points.windows(2) {
            assert!(w[0].score >= w[1].score - 1e-12);
        }
        assert!(points[0].score > points.last().unwrap().score);
        assert_eq!(points[4].threshold, 100.0);
    }

    #[test]
    fn sweep_rejects_bad_factors_and_unspecified_cells() {
        let config = IqbConfig::paper_default();
        let input = uniform_input(120.0, 15.0, 18.0, 0.05);
        assert!(threshold_sweep(
            &config,
            &input,
            &UseCase::Gaming,
            Metric::Latency,
            QualityLevel::High,
            &[0.0],
        )
        .is_err());
        // Web browsing upload at High is "Other".
        assert!(threshold_sweep(
            &config,
            &input,
            &UseCase::WebBrowsing,
            Metric::UploadThroughput,
            QualityLevel::High,
            &[1.0],
        )
        .is_err());
    }
}
