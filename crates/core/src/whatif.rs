//! What-if analysis: which network improvement moves the IQB score most?
//!
//! The paper positions IQB to *"equip decision-makers with actionable
//! insights"*. This module makes the insight concrete: given a region's
//! aggregates, evaluate candidate interventions — more download, more
//! upload, lower latency, lower loss — and rank them by composite-score
//! gain. [`required_improvement`] inverts the question: how much must one
//! metric improve to reach a target score?

use serde::{Deserialize, Serialize};

use crate::config::IqbConfig;
use crate::error::CoreError;
use crate::input::AggregateInput;
use crate::metric::{Metric, Polarity};
use crate::score::score_iqb;

/// A multiplicative intervention on one metric, applied to every dataset's
/// aggregate for that metric.
///
/// For throughput an improvement means `factor > 1`; for latency/loss it
/// means `factor < 1`. The constructor checks the factor actually is an
/// improvement (or identity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Intervention {
    /// Metric the intervention scales.
    pub metric: Metric,
    /// Multiplicative factor applied to every aggregate of that metric.
    pub factor: f64,
}

impl Intervention {
    /// Creates an intervention, requiring a finite positive factor that
    /// does not *worsen* the metric (degradations are modelled by the
    /// sensitivity tooling, not the improvement planner).
    pub fn new(metric: Metric, factor: f64) -> Result<Self, CoreError> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(CoreError::InvalidConfig(format!(
                "intervention factor {factor} must be positive and finite"
            )));
        }
        let improves = match metric.polarity() {
            Polarity::HigherIsBetter => factor >= 1.0,
            Polarity::LowerIsBetter => factor <= 1.0,
        };
        if !improves {
            return Err(CoreError::InvalidConfig(format!(
                "factor {factor} would worsen {metric}"
            )));
        }
        Ok(Intervention { metric, factor })
    }

    /// Human-readable description ("download ×2.0", "latency ×0.5").
    pub fn describe(&self) -> String {
        format!("{} ×{:.2}", self.metric, self.factor)
    }

    /// Applies the intervention to a copy of the input.
    pub fn apply(&self, input: &AggregateInput) -> AggregateInput {
        let mut out = AggregateInput::new();
        for ((dataset, metric), cell) in input.iter() {
            let value = if *metric == self.metric {
                // Loss is capped at 100% even under a (clamped) factor.
                let v = cell.value * self.factor;
                if *metric == Metric::PacketLoss {
                    v.clamp(0.0, 100.0)
                } else {
                    v
                }
            } else {
                cell.value
            };
            match cell.provenance {
                Some(p) => out.set_with_provenance(dataset.clone(), *metric, value, p),
                None => out.set(dataset.clone(), *metric, value),
            }
        }
        out
    }
}

/// The outcome of evaluating one intervention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterventionOutcome {
    /// The intervention evaluated.
    pub intervention: Intervention,
    /// Composite score before.
    pub baseline: f64,
    /// Composite score after.
    pub improved: f64,
}

impl InterventionOutcome {
    /// Score gain (≥ 0 by monotonicity of the framework).
    pub fn gain(&self) -> f64 {
        self.improved - self.baseline
    }
}

/// The standard intervention menu: double each throughput, halve latency
/// and loss.
pub fn standard_interventions() -> Vec<Intervention> {
    // lint: allow(panic) the menu factors are compile-time constants Intervention::new accepts
    let make = |metric, factor| Intervention::new(metric, factor).expect("static factor");
    vec![
        make(Metric::DownloadThroughput, 2.0),
        make(Metric::UploadThroughput, 2.0),
        make(Metric::Latency, 0.5),
        make(Metric::PacketLoss, 0.5),
    ]
}

/// Evaluates interventions and returns outcomes sorted by descending gain.
pub fn evaluate_interventions(
    config: &IqbConfig,
    input: &AggregateInput,
    interventions: &[Intervention],
) -> Result<Vec<InterventionOutcome>, CoreError> {
    let baseline = score_iqb(config, input)?.score;
    let mut outcomes = Vec::with_capacity(interventions.len());
    for &intervention in interventions {
        let improved = score_iqb(config, &intervention.apply(input))?.score;
        outcomes.push(InterventionOutcome {
            intervention,
            baseline,
            improved,
        });
    }
    outcomes.sort_by(|a, b| b.gain().total_cmp(&a.gain()));
    Ok(outcomes)
}

/// Finds (by bisection) the smallest improvement factor on `metric` that
/// lifts the composite to at least `target_score`.
///
/// Searches factors up to `max_factor` away from identity (multiplicative
/// for throughput, divisive for latency/loss). Returns `None` when even
/// the maximum improvement cannot reach the target — e.g. asking a
/// satellite link to reach an A by adding bandwidth.
pub fn required_improvement(
    config: &IqbConfig,
    input: &AggregateInput,
    metric: Metric,
    target_score: f64,
    max_factor: f64,
) -> Result<Option<f64>, CoreError> {
    if !(0.0..=1.0).contains(&target_score) || target_score.is_nan() {
        return Err(CoreError::InvalidConfig(format!(
            "target score {target_score} outside [0, 1]"
        )));
    }
    if !(max_factor.is_finite() && max_factor > 1.0) {
        return Err(CoreError::InvalidConfig(format!(
            "max_factor {max_factor} must exceed 1"
        )));
    }
    let apply_factor = |magnitude: f64| -> Result<f64, CoreError> {
        // magnitude >= 1: the improvement strength in either polarity.
        let factor = match metric.polarity() {
            Polarity::HigherIsBetter => magnitude,
            Polarity::LowerIsBetter => 1.0 / magnitude,
        };
        let intervention = Intervention::new(metric, factor)?;
        Ok(score_iqb(config, &intervention.apply(input))?.score)
    };
    if score_iqb(config, input)?.score >= target_score {
        return Ok(Some(1.0));
    }
    if apply_factor(max_factor)? < target_score {
        return Ok(None);
    }
    let (mut lo, mut hi) = (1.0_f64, max_factor);
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if apply_factor(mid)? >= target_score {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Some(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetId;

    fn connection(down: f64, up: f64, rtt: f64, loss: f64) -> AggregateInput {
        let mut input = AggregateInput::new();
        for d in DatasetId::BUILTIN {
            input.set(d.clone(), Metric::DownloadThroughput, down);
            input.set(d.clone(), Metric::UploadThroughput, up);
            input.set(d.clone(), Metric::Latency, rtt);
            input.set(d, Metric::PacketLoss, loss);
        }
        input
    }

    #[test]
    fn construction_rejects_degradations() {
        assert!(Intervention::new(Metric::DownloadThroughput, 0.5).is_err());
        assert!(Intervention::new(Metric::Latency, 2.0).is_err());
        assert!(Intervention::new(Metric::Latency, 0.5).is_ok());
        assert!(Intervention::new(Metric::DownloadThroughput, 0.0).is_err());
        assert!(Intervention::new(Metric::DownloadThroughput, f64::NAN).is_err());
    }

    #[test]
    fn apply_scales_only_the_target_metric() {
        let input = connection(100.0, 50.0, 40.0, 0.4);
        let halved_latency = Intervention::new(Metric::Latency, 0.5)
            .unwrap()
            .apply(&input);
        assert_eq!(
            halved_latency.get(&DatasetId::Ndt, Metric::Latency),
            Some(20.0)
        );
        assert_eq!(
            halved_latency.get(&DatasetId::Ndt, Metric::DownloadThroughput),
            Some(100.0)
        );
    }

    #[test]
    fn identity_factor_changes_nothing() {
        let config = IqbConfig::paper_default();
        let input = connection(120.0, 15.0, 18.0, 0.05);
        let identity = Intervention::new(Metric::Latency, 1.0).unwrap();
        let outcomes = evaluate_interventions(&config, &input, &[identity]).unwrap();
        assert_eq!(outcomes[0].gain(), 0.0);
    }

    #[test]
    fn upload_starved_connection_gains_most_from_upload() {
        // 500/11 cable: everything except upload is superb.
        let config = IqbConfig::paper_default();
        let input = connection(500.0, 11.0, 10.0, 0.02);
        // Need a big multiplier: 11 -> 220 clears even online backup's
        // 200 Mb/s high-quality bar.
        let interventions = vec![
            Intervention::new(Metric::DownloadThroughput, 20.0).unwrap(),
            Intervention::new(Metric::UploadThroughput, 20.0).unwrap(),
            Intervention::new(Metric::Latency, 0.05).unwrap(),
            Intervention::new(Metric::PacketLoss, 0.05).unwrap(),
        ];
        let outcomes = evaluate_interventions(&config, &input, &interventions).unwrap();
        assert_eq!(
            outcomes[0].intervention.metric,
            Metric::UploadThroughput,
            "ranking: {outcomes:?}"
        );
        assert!(outcomes[0].gain() > 0.1);
    }

    #[test]
    fn gains_are_never_negative() {
        let config = IqbConfig::paper_default();
        let input = connection(60.0, 20.0, 70.0, 0.6);
        for outcome in evaluate_interventions(&config, &input, &standard_interventions()).unwrap() {
            assert!(outcome.gain() >= -1e-12, "{outcome:?}");
        }
    }

    #[test]
    fn required_improvement_identity_when_already_there() {
        let config = IqbConfig::paper_default();
        let input = connection(1000.0, 1000.0, 5.0, 0.0);
        let f = required_improvement(&config, &input, Metric::Latency, 0.9, 100.0)
            .unwrap()
            .unwrap();
        assert_eq!(f, 1.0);
    }

    #[test]
    fn required_improvement_finds_the_threshold() {
        // Latency 80 ms fails the 50/20 ms bars; the rest is perfect.
        let config = IqbConfig::paper_default();
        let input = connection(1000.0, 1000.0, 80.0, 0.0);
        let baseline = score_iqb(&config, &input).unwrap().score;
        let magnitude = required_improvement(&config, &input, Metric::Latency, 0.99, 100.0)
            .unwrap()
            .expect("reachable: latency is the only failure");
        // Check the found factor actually achieves the target.
        let factor = 1.0 / magnitude;
        let improved = Intervention::new(Metric::Latency, factor)
            .unwrap()
            .apply(&input);
        let achieved = score_iqb(&config, &improved).unwrap().score;
        assert!(achieved >= 0.99, "achieved {achieved} from {baseline}");
        // And that it is close to the true requirement (80 -> 20 ms = 4x).
        assert!(
            (3.5..=4.5).contains(&magnitude),
            "expected ~4x, got {magnitude}"
        );
    }

    #[test]
    fn required_improvement_unreachable_is_none() {
        // Terrible on all four axes: fixing latency alone cannot reach 0.9.
        let config = IqbConfig::paper_default();
        let input = connection(5.0, 1.0, 300.0, 5.0);
        let result = required_improvement(&config, &input, Metric::Latency, 0.9, 1000.0).unwrap();
        assert_eq!(result, None);
    }

    #[test]
    fn required_improvement_validates_inputs() {
        let config = IqbConfig::paper_default();
        let input = connection(100.0, 100.0, 50.0, 0.5);
        assert!(required_improvement(&config, &input, Metric::Latency, 1.5, 10.0).is_err());
        assert!(required_improvement(&config, &input, Metric::Latency, 0.5, 1.0).is_err());
    }
}
