#![forbid(unsafe_code)]
//! # iqb-core — the Internet Quality Barometer framework
//!
//! This crate implements the primary contribution of *"Poster: The Internet
//! Quality Barometer Framework"* (Ohlsen, Sermpezis, Newcomb — Measurement
//! Lab, IMC 2025): a three-tier, user-centric framework that turns raw
//! Internet measurement aggregates into a single composite **IQB score**.
//!
//! ## The three tiers
//!
//! 1. **Use cases** ([`usecase`]) — what people *do* online: web browsing,
//!    video streaming, video conferencing, audio streaming, online backup,
//!    gaming. Quality is defined against these, not against raw megabits.
//! 2. **Network requirements** ([`metric`], [`threshold`], [`weights`]) —
//!    each use case maps to thresholds on download/upload throughput,
//!    latency and packet loss (paper Fig. 2), weighted by expert-elicited
//!    importance 1–5 (paper Table 1).
//! 3. **Datasets** ([`dataset`], [`input`]) — per-dataset aggregates (the
//!    95th percentile, per the paper) are compared against thresholds to
//!    produce binary requirement scores `S_{u,r,d}`, corroborating multiple
//!    measurement methodologies (M-Lab NDT, Cloudflare, Ookla).
//!
//! ## The score ([`score`])
//!
//! Scores roll up through normalized weighted averages:
//!
//! ```text
//! S_{u,r}  = Σ_d w'_{u,r,d} · S_{u,r,d}            (eq. 1, agreement)
//! S_u      = Σ_r w'_{u,r}   · S_{u,r}              (eq. 2, use case)
//! S_IQB    = Σ_u w'_u       · S_u                  (eq. 4, composite)
//! ```
//!
//! all in `[0, 1]`. [`score::score_iqb`] produces a fully decomposed
//! [`score::IqbReport`]; [`grade`] renders it as a Nutri-Score-style letter
//! or a credit-score-style number (the two analogies the paper cites);
//! [`sensitivity`] quantifies how the composite responds to the paper's
//! configurable choices.
//!
//! ## Quick example
//!
//! ```
//! use iqb_core::config::IqbConfig;
//! use iqb_core::dataset::DatasetId;
//! use iqb_core::input::AggregateInput;
//! use iqb_core::metric::Metric;
//! use iqb_core::score::score_iqb;
//!
//! let config = IqbConfig::paper_default();
//! let mut input = AggregateInput::new();
//! // A fiber-like connection as seen by the three datasets:
//! for d in [DatasetId::Ndt, DatasetId::Cloudflare, DatasetId::Ookla] {
//!     input.set(d.clone(), Metric::DownloadThroughput, 500.0);
//!     input.set(d.clone(), Metric::UploadThroughput, 500.0);
//!     input.set(d.clone(), Metric::Latency, 8.0);
//!     input.set(d.clone(), Metric::PacketLoss, 0.05);
//! }
//! let report = score_iqb(&config, &input).unwrap();
//! assert_eq!(report.score, 1.0); // meets every high-quality threshold
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod dataset;
pub mod error;
pub mod grade;
pub mod input;
pub mod metric;
pub mod profiles;
pub mod score;
pub mod sensitivity;
pub mod threshold;
pub mod usecase;
pub mod value;
pub mod weights;
pub mod whatif;

pub use config::IqbConfig;
pub use dataset::DatasetId;
pub use error::CoreError;
pub use input::{AggregateInput, AggregationBackend};
pub use metric::{Metric, Polarity};
pub use score::{score_iqb, IqbReport};
pub use threshold::{QualityLevel, ThresholdSpec};
pub use usecase::UseCase;
pub use weights::Weight;
