//! Network requirement metrics — the middle tier of the IQB framework.
//!
//! The paper maps every use case onto four measurable requirements:
//! download throughput, upload throughput, latency and packet loss — *"i.e.,
//! metrics found in openly available measurement datasets"*. Each metric
//! carries a unit and a *polarity* (whether bigger numbers are better),
//! which drives threshold comparisons in [`crate::threshold`].

use std::fmt;

use serde::{Deserialize, Serialize};

/// Whether larger values of a metric indicate better quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// Larger is better (throughput).
    HigherIsBetter,
    /// Smaller is better (latency, packet loss).
    LowerIsBetter,
}

/// Physical unit of a metric value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// Megabits per second.
    MegabitsPerSecond,
    /// Milliseconds.
    Milliseconds,
    /// Percentage in `[0, 100]`.
    Percent,
}

impl Unit {
    /// Conventional suffix used when rendering values.
    pub fn suffix(&self) -> &'static str {
        match self {
            Unit::MegabitsPerSecond => "Mb/s",
            Unit::Milliseconds => "ms",
            Unit::Percent => "%",
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// The four network requirements of the IQB framework's middle tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Metric {
    /// Download throughput in Mb/s.
    DownloadThroughput,
    /// Upload throughput in Mb/s.
    UploadThroughput,
    /// Round-trip latency in milliseconds.
    Latency,
    /// Packet loss rate as a percentage in `[0, 100]`.
    PacketLoss,
}

impl Metric {
    /// All four requirements, in the column order of the paper's Fig. 2 and
    /// Table 1.
    pub const ALL: [Metric; 4] = [
        Metric::DownloadThroughput,
        Metric::UploadThroughput,
        Metric::Latency,
        Metric::PacketLoss,
    ];

    /// Polarity of this metric.
    pub fn polarity(&self) -> Polarity {
        match self {
            Metric::DownloadThroughput | Metric::UploadThroughput => Polarity::HigherIsBetter,
            Metric::Latency | Metric::PacketLoss => Polarity::LowerIsBetter,
        }
    }

    /// Unit of this metric.
    pub fn unit(&self) -> Unit {
        match self {
            Metric::DownloadThroughput | Metric::UploadThroughput => Unit::MegabitsPerSecond,
            Metric::Latency => Unit::Milliseconds,
            Metric::PacketLoss => Unit::Percent,
        }
    }

    /// Human-readable name matching the paper's table headers.
    pub fn label(&self) -> &'static str {
        match self {
            Metric::DownloadThroughput => "Download Throughput",
            Metric::UploadThroughput => "Upload Throughput",
            Metric::Latency => "Latency",
            Metric::PacketLoss => "Packet Loss",
        }
    }

    /// Validates a raw measurement value for this metric.
    ///
    /// Returns a human-readable reason when the value is outside the
    /// metric's physical domain: throughput and latency must be finite and
    /// non-negative; packet loss must additionally be ≤ 100.
    pub fn validate(&self, value: f64) -> Result<(), String> {
        if !value.is_finite() {
            return Err(format!("{value} is not finite"));
        }
        if value < 0.0 {
            return Err(format!("{value} is negative"));
        }
        if *self == Metric::PacketLoss && value > 100.0 {
            return Err(format!("packet loss {value}% exceeds 100%"));
        }
        Ok(())
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_four_metrics_in_paper_order() {
        assert_eq!(Metric::ALL.len(), 4);
        assert_eq!(Metric::ALL[0], Metric::DownloadThroughput);
        assert_eq!(Metric::ALL[3], Metric::PacketLoss);
    }

    #[test]
    fn polarity_assignment() {
        assert_eq!(
            Metric::DownloadThroughput.polarity(),
            Polarity::HigherIsBetter
        );
        assert_eq!(
            Metric::UploadThroughput.polarity(),
            Polarity::HigherIsBetter
        );
        assert_eq!(Metric::Latency.polarity(), Polarity::LowerIsBetter);
        assert_eq!(Metric::PacketLoss.polarity(), Polarity::LowerIsBetter);
    }

    #[test]
    fn units_match_paper_columns() {
        assert_eq!(Metric::DownloadThroughput.unit(), Unit::MegabitsPerSecond);
        assert_eq!(Metric::Latency.unit(), Unit::Milliseconds);
        assert_eq!(Metric::PacketLoss.unit(), Unit::Percent);
        assert_eq!(Unit::MegabitsPerSecond.suffix(), "Mb/s");
    }

    #[test]
    fn validation_rules() {
        assert!(Metric::DownloadThroughput.validate(0.0).is_ok());
        assert!(Metric::DownloadThroughput.validate(10_000.0).is_ok());
        assert!(Metric::DownloadThroughput.validate(-1.0).is_err());
        assert!(Metric::Latency.validate(f64::NAN).is_err());
        assert!(Metric::PacketLoss.validate(100.0).is_ok());
        assert!(Metric::PacketLoss.validate(100.1).is_err());
    }

    #[test]
    fn display_uses_labels() {
        assert_eq!(Metric::PacketLoss.to_string(), "Packet Loss");
        assert_eq!(Unit::Percent.to_string(), "%");
    }
}
