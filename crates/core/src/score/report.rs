//! Score report types: the fully decomposed result of an IQB evaluation.
//!
//! Rather than returning a bare number, [`super::score_iqb`] returns an
//! [`IqbReport`] that preserves the whole roll-up tree — every
//! `S_{u,r,d}`, every normalized weight, every skipped cell — so reports
//! can explain *why* a region scored what it did and which requirement is
//! the limiting factor.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::config::ScoringMode;
use crate::dataset::DatasetId;
use crate::metric::Metric;
use crate::threshold::QualityLevel;
use crate::usecase::UseCase;
use crate::weights::Weight;

/// One evaluated (use case, requirement, dataset) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellScore {
    /// The aggregated metric value that was compared.
    pub value: f64,
    /// The threshold it was compared against.
    pub threshold: f64,
    /// The cell score `S_{u,r,d}` (binary: 0 or 1; graded: `[0, 1]`).
    pub score: f64,
    /// Whether the threshold was met (binary verdict, in both modes).
    pub met: bool,
    /// The raw dataset weight `w_{u,r,d}`.
    pub weight: Weight,
    /// The normalized weight `w'_{u,r,d}` within this requirement.
    pub normalized_weight: f64,
}

/// One evaluated requirement for a use case (paper eq. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequirementScore {
    /// The requirement agreement score `S_{u,r}` in `[0, 1]`.
    pub agreement: f64,
    /// The raw requirement weight `w_{u,r}` (Table 1).
    pub weight: Weight,
    /// The normalized weight `w'_{u,r}` within this use case.
    pub normalized_weight: f64,
    /// Per-dataset cells that contributed.
    pub cells: BTreeMap<DatasetId, CellScore>,
}

/// One evaluated use case (paper eq. 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UseCaseScore {
    /// The use-case score `S_u` in `[0, 1]`.
    pub score: f64,
    /// The raw use-case weight `w_u`.
    pub weight: Weight,
    /// The normalized weight `w'_u` within the composite.
    pub normalized_weight: f64,
    /// Per-requirement scores that contributed.
    pub requirements: BTreeMap<Metric, RequirementScore>,
}

impl UseCaseScore {
    /// The requirement with the lowest agreement score — the *limiting
    /// factor* a report highlights, ties broken by higher weight then by
    /// metric order.
    pub fn limiting_requirement(&self) -> Option<(Metric, &RequirementScore)> {
        self.requirements
            .iter()
            .min_by(|(_, a), (_, b)| {
                a.agreement
                    .total_cmp(&b.agreement)
                    .then(b.weight.cmp(&a.weight))
            })
            .map(|(m, r)| (*m, r))
    }
}

/// Coverage accounting: how much of the configured matrix was evaluable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Coverage {
    /// Cells evaluated against a threshold.
    pub evaluated_cells: usize,
    /// Cells skipped because the input had no aggregate for the
    /// (dataset, metric) pair.
    pub missing_data_cells: usize,
    /// (use case, requirement) pairs skipped because the threshold at the
    /// scored level is `Unspecified` ("Other" in Fig. 2).
    pub unspecified_requirements: usize,
    /// (use case, requirement) pairs skipped because no dataset had data or
    /// all dataset weights were zero.
    pub uncovered_requirements: usize,
    /// Use cases skipped entirely (no evaluable requirement).
    pub skipped_use_cases: usize,
}

impl Coverage {
    /// Fraction of cells that were evaluated, out of evaluated + missing.
    /// `None` when nothing was even attempted.
    pub fn data_coverage(&self) -> Option<f64> {
        let attempted = self.evaluated_cells + self.missing_data_cells;
        (attempted > 0).then(|| self.evaluated_cells as f64 / attempted as f64)
    }
}

/// The fully decomposed result of one IQB evaluation (paper eq. 4/5 at the
/// root).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IqbReport {
    /// The composite IQB score `S_IQB` in `[0, 1]`.
    pub score: f64,
    /// Quality level the thresholds were evaluated at.
    pub quality_level: QualityLevel,
    /// Binary (paper) or graded (extension) mode.
    pub scoring_mode: ScoringMode,
    /// Per-use-case decomposition.
    pub use_cases: BTreeMap<UseCase, UseCaseScore>,
    /// Coverage accounting.
    pub coverage: Coverage,
    /// Labels of datasets whose contribution was degraded by a source
    /// fault survived in lenient ingest mode (sorted, deduplicated).
    /// Empty — and absent from serialized output — for strict runs and
    /// fault-free lenient runs, so historical reports are unchanged.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub degraded_datasets: Vec<String>,
}

impl IqbReport {
    /// The use case with the lowest score, ties broken by label order.
    pub fn weakest_use_case(&self) -> Option<(&UseCase, &UseCaseScore)> {
        self.use_cases
            .iter()
            .min_by(|(_, a), (_, b)| a.score.total_cmp(&b.score))
    }

    /// The use case with the highest score.
    pub fn strongest_use_case(&self) -> Option<(&UseCase, &UseCaseScore)> {
        self.use_cases
            .iter()
            .max_by(|(_, a), (_, b)| a.score.total_cmp(&b.score))
    }

    /// Recomputes the composite from the stored tree (used by tests to
    /// check internal consistency, and by what-if tooling after editing the
    /// tree). Equals [`Self::score`] up to floating-point rounding.
    pub fn recompute_from_tree(&self) -> f64 {
        let total_w: f64 = self.use_cases.values().map(|u| u.weight.as_f64()).sum();
        if total_w == 0.0 {
            return 0.0;
        }
        self.use_cases
            .values()
            .map(|u| u.weight.as_f64() * u.score)
            .sum::<f64>()
            / total_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requirement(agreement: f64, weight: u32) -> RequirementScore {
        RequirementScore {
            agreement,
            weight: Weight::new(weight).unwrap(),
            normalized_weight: 0.0,
            cells: BTreeMap::new(),
        }
    }

    #[test]
    fn limiting_requirement_prefers_lowest_agreement() {
        let mut requirements = BTreeMap::new();
        requirements.insert(Metric::DownloadThroughput, requirement(1.0, 4));
        requirements.insert(Metric::Latency, requirement(0.2, 4));
        requirements.insert(Metric::PacketLoss, requirement(0.8, 4));
        let u = UseCaseScore {
            score: 0.6,
            weight: Weight::new(1).unwrap(),
            normalized_weight: 1.0,
            requirements,
        };
        assert_eq!(u.limiting_requirement().unwrap().0, Metric::Latency);
    }

    #[test]
    fn limiting_requirement_ties_break_by_weight() {
        let mut requirements = BTreeMap::new();
        requirements.insert(Metric::UploadThroughput, requirement(0.5, 2));
        requirements.insert(Metric::Latency, requirement(0.5, 5));
        let u = UseCaseScore {
            score: 0.5,
            weight: Weight::new(1).unwrap(),
            normalized_weight: 1.0,
            requirements,
        };
        // Same agreement: the heavier requirement is the more meaningful
        // limiting factor.
        assert_eq!(u.limiting_requirement().unwrap().0, Metric::Latency);
    }

    #[test]
    fn coverage_fraction() {
        let c = Coverage {
            evaluated_cells: 9,
            missing_data_cells: 3,
            ..Default::default()
        };
        assert_eq!(c.data_coverage(), Some(0.75));
        assert_eq!(Coverage::default().data_coverage(), None);
    }
}
