//! The IQB score — the paper's §3, equations (1) through (5).
//!
//! Scoring starts at the *datasets* tier and rolls upward:
//!
//! 1. **Cell scores** `S_{u,r,d}` ([`cell`]) — compare a dataset's
//!    aggregate against the Fig. 2 threshold (binary, or graded in the
//!    extension mode).
//! 2. **Requirement agreement** `S_{u,r}` (eq. 1) — the dataset-weighted
//!    average of the cell scores: how strongly the datasets corroborate
//!    that requirement `r` is satisfied for use case `u`.
//! 3. **Use-case score** `S_u` (eq. 2) — the requirement-weighted average
//!    of the agreements, with Table 1 weights.
//! 4. **IQB score** `S_IQB` (eq. 4) — the use-case-weighted average.
//!
//! Missing terms — a dataset with no data for a metric, an "Other"
//! threshold cell — drop out of the weighted averages; the normalizing
//! denominators shrink correspondingly, which is exactly how the paper's
//! `w' = w / Σw` normalization behaves when a term is absent.
//!
//! [`score_iqb`] builds the fully decomposed [`IqbReport`];
//! [`score_iqb_flat`] evaluates the algebraically expanded eq. (5)
//! directly, and the two are tested to agree — reproducing the paper's
//! derivation that (1)+(2)+(4) collapse to (5).

pub mod cell;
mod report;

use std::collections::BTreeMap;

pub use report::{CellScore, Coverage, IqbReport, RequirementScore, UseCaseScore};

use crate::config::{IqbConfig, ScoringMode};
use crate::error::CoreError;
use crate::input::AggregateInput;
use crate::metric::Metric;
use crate::usecase::UseCase;

use cell::{binary_cell_score, graded_cell_score, CellOutcome};

/// Scores one cell according to the configured mode.
fn score_cell(
    config: &IqbConfig,
    use_case: &UseCase,
    metric: Metric,
    value: f64,
) -> Option<CellOutcome> {
    let pair = config.thresholds.get_pair(use_case, metric)?;
    match config.scoring_mode {
        ScoringMode::Binary => {
            binary_cell_score(&pair, config.quality_level, value, metric.polarity())
        }
        ScoringMode::Graded => {
            graded_cell_score(&pair, config.quality_level, value, metric.polarity())
        }
    }
}

/// Evaluates one use case: eq. (1) per requirement, then eq. (2).
///
/// Returns `None` (plus coverage updates) when no requirement of the use
/// case could be evaluated from the input.
fn evaluate_use_case(
    config: &IqbConfig,
    input: &AggregateInput,
    use_case: &UseCase,
    coverage: &mut Coverage,
) -> Option<UseCaseScore> {
    let mut requirements: BTreeMap<Metric, RequirementScore> = BTreeMap::new();

    for metric in Metric::ALL {
        // An "Other" (Unspecified) threshold at the scored level excludes
        // the requirement for this use case.
        let pair = config
            .thresholds
            .get_pair(use_case, metric)
            // lint: allow(panic) ScoreConfig::validate guarantees a complete threshold table
            .expect("config validated: every (use case, metric) has a threshold row");
        let level_spec = match config.quality_level {
            crate::threshold::QualityLevel::Minimum => pair.min,
            crate::threshold::QualityLevel::High => pair.high,
        };
        if level_spec.effective_value(metric.polarity()).is_none() {
            coverage.unspecified_requirements += 1;
            continue;
        }

        // Eq. (1): dataset-weighted average of cell scores.
        let mut cells: BTreeMap<crate::dataset::DatasetId, CellScore> = BTreeMap::new();
        let mut weighted_sum = 0.0;
        let mut weight_sum = 0.0;
        for dataset in &config.datasets {
            let Some(value) = input.get(dataset, metric) else {
                coverage.missing_data_cells += 1;
                continue;
            };
            let weight = config.dataset_weights.get(use_case, metric, dataset);
            let Some(outcome) = score_cell(config, use_case, metric, value) else {
                // Only reachable when the level spec was numeric but the
                // graded high threshold is unspecified; count as unevaluable.
                coverage.missing_data_cells += 1;
                continue;
            };
            coverage.evaluated_cells += 1;
            weighted_sum += weight.as_f64() * outcome.score;
            weight_sum += weight.as_f64();
            cells.insert(
                dataset.clone(),
                CellScore {
                    value,
                    threshold: outcome.threshold,
                    score: outcome.score,
                    met: outcome.met,
                    weight,
                    normalized_weight: 0.0, // filled below once weight_sum is final
                },
            );
        }
        if weight_sum == 0.0 {
            // No dataset had data (or all weights were zero): requirement
            // drops out of eq. (2).
            coverage.uncovered_requirements += 1;
            continue;
        }
        for cell_score in cells.values_mut() {
            cell_score.normalized_weight = cell_score.weight.as_f64() / weight_sum;
        }
        let agreement = weighted_sum / weight_sum;
        let req_weight = config
            .requirement_weights
            .get(use_case, metric)
            // lint: allow(panic) ScoreConfig::validate guarantees a complete weight table
            .expect("config validated: every (use case, metric) has a weight");
        requirements.insert(
            metric,
            RequirementScore {
                agreement,
                weight: req_weight,
                normalized_weight: 0.0, // filled below
                cells,
            },
        );
    }

    // Eq. (2): requirement-weighted average of agreements.
    let weight_sum: f64 = requirements.values().map(|r| r.weight.as_f64()).sum();
    if requirements.is_empty() || weight_sum == 0.0 {
        coverage.skipped_use_cases += 1;
        return None;
    }
    for r in requirements.values_mut() {
        r.normalized_weight = r.weight.as_f64() / weight_sum;
    }
    // Computed as Σw·S / Σw (not via the pre-normalized weights) so an
    // all-ones column rolls up to exactly 1.0.
    let score: f64 = requirements
        .values()
        .map(|r| r.weight.as_f64() * r.agreement)
        .sum::<f64>()
        / weight_sum;
    let weight = config.use_case_weights.get(use_case);
    Some(UseCaseScore {
        score,
        weight,
        normalized_weight: 0.0, // filled by the caller
        requirements,
    })
}

/// Evaluates the composite IQB score (paper eq. 4) with full decomposition.
///
/// Errors:
/// * [`CoreError::InvalidConfig`] and friends when `config` is invalid;
/// * [`CoreError::InvalidMetricValue`] when the input carries out-of-domain
///   values;
/// * [`CoreError::NothingToScore`] when not a single (use case,
///   requirement, dataset) cell could be evaluated.
///
/// ```
/// use iqb_core::{score_iqb, AggregateInput, DatasetId, IqbConfig, Metric};
///
/// let config = IqbConfig::paper_default();
/// let mut input = AggregateInput::new();
/// input.set(DatasetId::Ndt, Metric::DownloadThroughput, 300.0);
/// input.set(DatasetId::Ndt, Metric::UploadThroughput, 300.0);
/// input.set(DatasetId::Ndt, Metric::Latency, 12.0);
/// input.set(DatasetId::Ndt, Metric::PacketLoss, 0.01);
/// let report = score_iqb(&config, &input).unwrap();
/// assert!(report.score > 0.99);
/// ```
pub fn score_iqb(config: &IqbConfig, input: &AggregateInput) -> Result<IqbReport, CoreError> {
    config.validate()?;
    input.validate()?;

    let mut coverage = Coverage::default();
    let mut use_cases: BTreeMap<UseCase, UseCaseScore> = BTreeMap::new();
    for use_case in &config.use_cases {
        if let Some(ucs) = evaluate_use_case(config, input, use_case, &mut coverage) {
            use_cases.insert(use_case.clone(), ucs);
        }
    }

    // Eq. (4): use-case-weighted average.
    let weight_sum: f64 = use_cases.values().map(|u| u.weight.as_f64()).sum();
    if use_cases.is_empty() || weight_sum == 0.0 {
        return Err(CoreError::NothingToScore);
    }
    for u in use_cases.values_mut() {
        u.normalized_weight = u.weight.as_f64() / weight_sum;
    }
    let score: f64 = use_cases
        .values()
        .map(|u| u.weight.as_f64() * u.score)
        .sum::<f64>()
        / weight_sum;

    Ok(IqbReport {
        score: score.clamp(0.0, 1.0),
        quality_level: config.quality_level,
        scoring_mode: config.scoring_mode,
        use_cases,
        coverage,
        degraded_datasets: Vec::new(),
    })
}

/// Evaluates eq. (5) — the algebraically flattened triple sum
/// `S_IQB = Σ_u Σ_r Σ_d w'_u · w'_{u,r} · w'_{u,r,d} · S_{u,r,d}` —
/// without building the decomposition tree.
///
/// The normalizing denominators are computed over *evaluable* terms only,
/// mirroring how [`score_iqb`] drops missing cells; the two functions agree
/// to floating-point precision (see the crate's equivalence tests, which
/// reproduce the paper's derivation).
pub fn score_iqb_flat(config: &IqbConfig, input: &AggregateInput) -> Result<f64, CoreError> {
    config.validate()?;
    input.validate()?;

    // Pass 1: collect evaluable cells and the per-level weight sums.
    struct FlatCell {
        use_case_idx: usize,
        metric: Metric,
        dataset_weight: f64,
        score: f64,
    }
    let mut cells: Vec<FlatCell> = Vec::new();
    // (use case idx, metric) -> Σ_d w_{u,r,d}
    let mut dataset_weight_sums: BTreeMap<(usize, Metric), f64> = BTreeMap::new();

    for (u_idx, use_case) in config.use_cases.iter().enumerate() {
        for metric in Metric::ALL {
            for dataset in &config.datasets {
                let Some(value) = input.get(dataset, metric) else {
                    continue;
                };
                let Some(outcome) = score_cell(config, use_case, metric, value) else {
                    continue;
                };
                let w = config
                    .dataset_weights
                    .get(use_case, metric, dataset)
                    .as_f64();
                if w > 0.0 {
                    *dataset_weight_sums.entry((u_idx, metric)).or_insert(0.0) += w;
                }
                cells.push(FlatCell {
                    use_case_idx: u_idx,
                    metric,
                    dataset_weight: w,
                    score: outcome.score,
                });
            }
        }
    }
    if cells.is_empty() {
        return Err(CoreError::NothingToScore);
    }

    // Σ_r w_{u,r} over requirements that have any dataset coverage.
    let mut req_weight_sums: BTreeMap<usize, f64> = BTreeMap::new();
    for (&(u_idx, metric), &dsum) in &dataset_weight_sums {
        if dsum > 0.0 {
            let w = config
                .requirement_weights
                .get(&config.use_cases[u_idx], metric)
                // lint: allow(panic) ScoreConfig::validate guarantees a complete weight table
                .expect("validated")
                .as_f64();
            *req_weight_sums.entry(u_idx).or_insert(0.0) += w;
        }
    }
    // Σ_u w_u over use cases with any covered requirement of positive weight.
    let mut usecase_weight_sum = 0.0;
    let mut usecase_included: BTreeMap<usize, bool> = BTreeMap::new();
    for (&u_idx, &rsum) in &req_weight_sums {
        if rsum > 0.0 {
            usecase_weight_sum += config
                .use_case_weights
                .get(&config.use_cases[u_idx])
                .as_f64();
            usecase_included.insert(u_idx, true);
        }
    }
    if usecase_weight_sum == 0.0 {
        return Err(CoreError::NothingToScore);
    }

    // Pass 2: the triple sum of eq. (5).
    let mut total = 0.0;
    for cell_entry in &cells {
        let u_idx = cell_entry.use_case_idx;
        if !usecase_included.get(&u_idx).copied().unwrap_or(false) {
            continue;
        }
        let dsum = dataset_weight_sums
            .get(&(u_idx, cell_entry.metric))
            .copied()
            .unwrap_or(0.0);
        if dsum == 0.0 {
            continue;
        }
        let rsum = req_weight_sums[&u_idx];
        let use_case = &config.use_cases[u_idx];
        let w_u = config.use_case_weights.get(use_case).as_f64() / usecase_weight_sum;
        let w_ur = config
            .requirement_weights
            .get(use_case, cell_entry.metric)
            // lint: allow(panic) ScoreConfig::validate guarantees a complete weight table
            .expect("validated")
            .as_f64()
            / rsum;
        let w_urd = cell_entry.dataset_weight / dsum;
        total += w_u * w_ur * w_urd * cell_entry.score;
    }
    Ok(total.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScoringMode;
    use crate::dataset::DatasetId;
    use crate::threshold::QualityLevel;
    use crate::weights::Weight;

    /// Input where every dataset sees the same four aggregates.
    fn uniform_input(down: f64, up: f64, rtt: f64, loss: f64) -> AggregateInput {
        let mut input = AggregateInput::new();
        for d in DatasetId::BUILTIN {
            input.set(d.clone(), Metric::DownloadThroughput, down);
            input.set(d.clone(), Metric::UploadThroughput, up);
            input.set(d.clone(), Metric::Latency, rtt);
            input.set(d, Metric::PacketLoss, loss);
        }
        input
    }

    #[test]
    fn perfect_connection_scores_one() {
        let config = IqbConfig::paper_default();
        let input = uniform_input(1000.0, 1000.0, 5.0, 0.0);
        let report = score_iqb(&config, &input).unwrap();
        assert!((report.score - 1.0).abs() < 1e-12, "{}", report.score);
        for (u, s) in &report.use_cases {
            assert!((s.score - 1.0).abs() < 1e-12, "use case {u} not perfect");
        }
    }

    #[test]
    fn dead_connection_scores_zero() {
        let config = IqbConfig::paper_default();
        let input = uniform_input(0.1, 0.1, 2000.0, 50.0);
        let report = score_iqb(&config, &input).unwrap();
        assert_eq!(report.score, 0.0);
    }

    #[test]
    fn score_is_in_unit_interval_for_middling_input() {
        let config = IqbConfig::paper_default();
        // Meets some high thresholds (latency) but not others (upload).
        let input = uniform_input(120.0, 15.0, 18.0, 0.05);
        let report = score_iqb(&config, &input).unwrap();
        assert!(report.score > 0.0 && report.score < 1.0, "{}", report.score);
    }

    #[test]
    fn empty_input_is_nothing_to_score() {
        let config = IqbConfig::paper_default();
        let err = score_iqb(&config, &AggregateInput::new()).unwrap_err();
        assert_eq!(err, CoreError::NothingToScore);
        assert_eq!(
            score_iqb_flat(&config, &AggregateInput::new()).unwrap_err(),
            CoreError::NothingToScore
        );
    }

    #[test]
    fn hand_computed_single_dataset_example() {
        // One dataset, binary, high level. Connection: 120 down, 15 up,
        // 18 ms, 0.05% loss. Per use case (threshold → met?):
        //   WebBrowsing:  down 100→1, up Other→skip, lat 50→1, loss 0.5→1
        //     S_u = (3·1 + 4·1 + 4·1)/(3+4+4) = 11/11 = 1
        //   VideoStreaming: down 100(range hi)→1, up 10→1, lat 50→1, loss 0.1→1 → 1
        //   VideoConferencing: down 100→1, up 100→0, lat 20→1, loss 0.1→1
        //     S_u = (4+0+4+4)/16 = 12/16 = 0.75
        //   AudioStreaming: down 50→1, up 50→0, lat 50→1, loss 0.1→1
        //     S_u = (4+0+3+4)/12 = 11/12
        //   OnlineBackup: down 10→1, up 200→0, lat 100→1, loss 0.1→1
        //     S_u = (4+0+2+4)/14 = 10/14
        //   Gaming: down 100→1, up Other→skip, lat 50→1, loss 0.5→1 → 1
        // S_IQB (uniform w_u) = (1 + 1 + 0.75 + 11/12 + 10/14 + 1)/6
        let config = IqbConfig::builder()
            .datasets(vec![DatasetId::Ndt])
            .build()
            .unwrap();
        let mut input = AggregateInput::new();
        input.set(DatasetId::Ndt, Metric::DownloadThroughput, 120.0);
        input.set(DatasetId::Ndt, Metric::UploadThroughput, 15.0);
        input.set(DatasetId::Ndt, Metric::Latency, 18.0);
        input.set(DatasetId::Ndt, Metric::PacketLoss, 0.05);
        let report = score_iqb(&config, &input).unwrap();
        let expected = (1.0 + 1.0 + 0.75 + 11.0 / 12.0 + 10.0 / 14.0 + 1.0) / 6.0;
        assert!(
            (report.score - expected).abs() < 1e-12,
            "got {}, expected {expected}",
            report.score
        );
        // Spot-check the decomposition.
        let vc = &report.use_cases[&UseCase::VideoConferencing];
        assert!((vc.score - 0.75).abs() < 1e-12);
        assert_eq!(
            vc.limiting_requirement().unwrap().0,
            Metric::UploadThroughput
        );
        // Web browsing evaluated 3 requirements (upload skipped as Other).
        let wb = &report.use_cases[&UseCase::WebBrowsing];
        assert_eq!(wb.requirements.len(), 3);
        assert!(!wb.requirements.contains_key(&Metric::UploadThroughput));
    }

    #[test]
    fn flat_equals_tree_on_paper_default() {
        let config = IqbConfig::paper_default();
        for (down, up, rtt, loss) in [
            (1000.0, 1000.0, 5.0, 0.0),
            (120.0, 15.0, 18.0, 0.05),
            (30.0, 5.0, 80.0, 0.8),
            (5.0, 1.0, 300.0, 3.0),
        ] {
            let input = uniform_input(down, up, rtt, loss);
            let tree = score_iqb(&config, &input).unwrap().score;
            let flat = score_iqb_flat(&config, &input).unwrap();
            assert!(
                (tree - flat).abs() < 1e-12,
                "eq.(2)+(4) = {tree} but eq.(5) = {flat}"
            );
        }
    }

    #[test]
    fn flat_equals_tree_with_missing_data_and_overrides() {
        let mut config = IqbConfig::paper_default();
        config.dataset_weights.set(
            UseCase::Gaming,
            Metric::Latency,
            DatasetId::Ookla,
            Weight::ZERO,
        );
        config
            .use_case_weights
            .set(UseCase::Gaming, Weight::new(5).unwrap());
        // Ookla has no packet loss; Cloudflare is missing upload.
        let mut input = uniform_input(80.0, 30.0, 45.0, 0.3);
        let mut trimmed = AggregateInput::new();
        for ((d, m), cell_value) in input.iter() {
            let skip = (*d == DatasetId::Ookla && *m == Metric::PacketLoss)
                || (*d == DatasetId::Cloudflare && *m == Metric::UploadThroughput);
            if !skip {
                trimmed.set(d.clone(), *m, cell_value.value);
            }
        }
        input = trimmed;
        let tree = score_iqb(&config, &input).unwrap().score;
        let flat = score_iqb_flat(&config, &input).unwrap();
        assert!((tree - flat).abs() < 1e-12, "tree {tree} vs flat {flat}");
    }

    #[test]
    fn missing_dataset_weight_redistributes() {
        // Packet loss present in NDT only: agreement should equal NDT's
        // verdict alone, not be dragged down by absent datasets.
        let config = IqbConfig::paper_default();
        let mut input = uniform_input(1000.0, 1000.0, 5.0, 0.0);
        let mut trimmed = AggregateInput::new();
        for ((d, m), cell_value) in input.iter() {
            if *m == Metric::PacketLoss && *d != DatasetId::Ndt {
                continue;
            }
            trimmed.set(d.clone(), *m, cell_value.value);
        }
        input = trimmed;
        let report = score_iqb(&config, &input).unwrap();
        assert!((report.score - 1.0).abs() < 1e-12);
        assert!(report.coverage.missing_data_cells > 0);
    }

    #[test]
    fn disagreeing_datasets_give_fractional_agreement() {
        // NDT says download fails, Ookla and Cloudflare say it passes:
        // agreement = 2/3 with uniform dataset weights.
        let config = IqbConfig::paper_default();
        let mut input = uniform_input(1000.0, 1000.0, 5.0, 0.0);
        input.set(DatasetId::Ndt, Metric::DownloadThroughput, 50.0);
        let report = score_iqb(&config, &input).unwrap();
        let gaming = &report.use_cases[&UseCase::Gaming];
        let down = &gaming.requirements[&Metric::DownloadThroughput];
        assert!((down.agreement - 2.0 / 3.0).abs() < 1e-12);
        assert!(report.score < 1.0);
    }

    #[test]
    fn dataset_weight_override_changes_agreement() {
        // Same disagreement, but NDT weighted 2 vs 1 each for the others:
        // agreement = (2·0 + 1 + 1)/4 = 0.5.
        let mut config = IqbConfig::paper_default();
        for u in UseCase::BUILTIN {
            config.dataset_weights.set(
                u,
                Metric::DownloadThroughput,
                DatasetId::Ndt,
                Weight::new(2).unwrap(),
            );
        }
        let mut input = uniform_input(1000.0, 1000.0, 5.0, 0.0);
        input.set(DatasetId::Ndt, Metric::DownloadThroughput, 50.0);
        let report = score_iqb(&config, &input).unwrap();
        let gaming = &report.use_cases[&UseCase::Gaming];
        let down = &gaming.requirements[&Metric::DownloadThroughput];
        assert!((down.agreement - 0.5).abs() < 1e-12);
    }

    #[test]
    fn minimum_level_is_laxer_than_high() {
        let high = IqbConfig::paper_default();
        let min = IqbConfig::builder()
            .quality_level(QualityLevel::Minimum)
            .build()
            .unwrap();
        // A modest connection: passes minimums, fails several highs.
        let input = uniform_input(30.0, 26.0, 45.0, 0.4);
        let s_high = score_iqb(&high, &input).unwrap().score;
        let s_min = score_iqb(&min, &input).unwrap().score;
        assert!(
            s_min >= s_high,
            "minimum-level score {s_min} must be >= high-level {s_high}"
        );
        assert!((s_min - 1.0).abs() < 1e-12);
    }

    #[test]
    fn graded_mode_gives_partial_credit() {
        let binary = IqbConfig::paper_default();
        let graded = IqbConfig::builder()
            .scoring_mode(ScoringMode::Graded)
            .build()
            .unwrap();
        // Between min and high on most dimensions.
        let input = uniform_input(50.0, 30.0, 60.0, 0.3);
        let s_bin = score_iqb(&binary, &input).unwrap().score;
        let s_graded = score_iqb(&graded, &input).unwrap().score;
        assert!(s_graded > s_bin, "graded {s_graded} <= binary {s_bin}");
        assert!(s_graded < 1.0);
    }

    #[test]
    fn normalized_weights_sum_to_one_at_every_level() {
        let config = IqbConfig::paper_default();
        let input = uniform_input(120.0, 15.0, 18.0, 0.05);
        let report = score_iqb(&config, &input).unwrap();
        let total_u: f64 = report.use_cases.values().map(|u| u.normalized_weight).sum();
        assert!((total_u - 1.0).abs() < 1e-12);
        for u in report.use_cases.values() {
            let total_r: f64 = u.requirements.values().map(|r| r.normalized_weight).sum();
            assert!((total_r - 1.0).abs() < 1e-12);
            for r in u.requirements.values() {
                let total_d: f64 = r.cells.values().map(|c| c.normalized_weight).sum();
                assert!((total_d - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn recompute_from_tree_matches_score() {
        let config = IqbConfig::paper_default();
        let input = uniform_input(120.0, 15.0, 18.0, 0.05);
        let report = score_iqb(&config, &input).unwrap();
        assert!((report.recompute_from_tree() - report.score).abs() < 1e-12);
    }

    #[test]
    fn coverage_accounting_adds_up() {
        let config = IqbConfig::paper_default();
        let input = uniform_input(120.0, 15.0, 18.0, 0.05);
        let report = score_iqb(&config, &input).unwrap();
        // 6 use cases × 4 metrics × 3 datasets = 72 possible cells, minus
        // 2 unspecified requirements (web browsing + gaming upload at High)
        // × 3 datasets = 66 evaluated.
        assert_eq!(report.coverage.evaluated_cells, 66);
        assert_eq!(report.coverage.unspecified_requirements, 2);
        assert_eq!(report.coverage.missing_data_cells, 0);
        assert_eq!(report.coverage.data_coverage(), Some(1.0));
    }

    #[test]
    fn weakest_and_strongest_use_cases() {
        let config = IqbConfig::paper_default();
        // Great latency/loss, weak upload: backup should suffer most.
        let input = uniform_input(200.0, 8.0, 10.0, 0.01);
        let report = score_iqb(&config, &input).unwrap();
        let (weakest, _) = report.weakest_use_case().unwrap();
        assert!(
            *weakest == UseCase::OnlineBackup || *weakest == UseCase::VideoConferencing,
            "unexpected weakest use case {weakest}"
        );
        let (_, strongest_score) = report.strongest_use_case().unwrap();
        assert!(strongest_score.score >= report.score);
    }

    #[test]
    fn invalid_input_is_rejected_before_scoring() {
        let config = IqbConfig::paper_default();
        let mut input = AggregateInput::new();
        input.set(DatasetId::Ndt, Metric::PacketLoss, 400.0);
        assert!(matches!(
            score_iqb(&config, &input),
            Err(CoreError::InvalidMetricValue { .. })
        ));
    }

    #[test]
    fn improving_one_metric_never_lowers_score() {
        let config = IqbConfig::paper_default();
        let base = uniform_input(60.0, 20.0, 70.0, 0.6);
        let base_score = score_iqb(&config, &base).unwrap().score;
        // Improve download step by step; score must be non-decreasing.
        let mut prev = base_score;
        for down in [80.0, 100.0, 150.0, 400.0] {
            let mut input = base.clone();
            for d in DatasetId::BUILTIN {
                input.set(d, Metric::DownloadThroughput, down);
            }
            let s = score_iqb(&config, &input).unwrap().score;
            assert!(s >= prev - 1e-12, "score dropped from {prev} to {s}");
            prev = s;
        }
    }
}
