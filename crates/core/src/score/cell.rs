//! Cell scoring: `S_{u,r,d}` for one (use case, requirement, dataset).
//!
//! The paper's formulation is binary — *"the binary requirement score
//! S_{u,r,d} indicates whether the threshold for the network requirement r
//! for a high-quality experience for use case u is met"* — implemented by
//! [`binary_cell_score`]. [`graded_cell_score`] is the extension scoring
//! mode (DESIGN.md E8): a piecewise-linear score that uses *both* Fig. 2
//! levels instead of collapsing everything onto one cliff.

use crate::metric::Polarity;
use crate::threshold::{LevelPair, QualityLevel};

/// Result of scoring one cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellOutcome {
    /// The score in `[0, 1]` (0 or 1 in binary mode).
    pub score: f64,
    /// Whether the level's threshold was met (the binary view, also
    /// reported in graded mode for comparability).
    pub met: bool,
    /// The threshold value the cell was compared against.
    pub threshold: f64,
}

/// Binary cell score against one quality level.
///
/// Returns `None` when the level's threshold is
/// [`ThresholdSpec::Unspecified`] — the cell cannot be evaluated and its
/// weight is redistributed by the caller's normalization.
pub fn binary_cell_score(
    pair: &LevelPair,
    level: QualityLevel,
    value: f64,
    polarity: Polarity,
) -> Option<CellOutcome> {
    let spec = match level {
        QualityLevel::Minimum => pair.min,
        QualityLevel::High => pair.high,
    };
    let threshold = spec.effective_value(polarity)?;
    let met = spec
        .is_met(value, polarity)
        // lint: allow(panic) is_met is Some whenever effective_value returned Some
        .expect("effective_value was Some, so is_met is Some");
    Some(CellOutcome {
        score: if met { 1.0 } else { 0.0 },
        met,
        threshold,
    })
}

/// Graded cell score using both quality levels.
///
/// Piecewise-linear in the measured value:
///
/// * at or beyond the **high**-quality threshold → `1.0`;
/// * at the **minimum**-quality threshold → `0.5`, rising linearly to `1.0`
///   as the value approaches the high threshold;
/// * below the minimum → partial credit falling to `0` as the value
///   degrades to nothing (linearly in `value/min` for higher-is-better,
///   hyperbolically in `min/value` for lower-is-better — both hit `0.5`
///   exactly at the minimum threshold and `0` in the degenerate limit).
///
/// When the two levels coincide (e.g. online-backup download: 10/10 Mb/s)
/// the ramp between them is empty and the function steps from the sub-min
/// branch straight to `1.0`. Requires the *high* threshold to be numeric;
/// returns `None` for `Unspecified` high cells (same cells binary scoring
/// at the high level skips). `met` reports the binary verdict at `level`.
pub fn graded_cell_score(
    pair: &LevelPair,
    level: QualityLevel,
    value: f64,
    polarity: Polarity,
) -> Option<CellOutcome> {
    let high = pair.high.effective_value(polarity)?;
    let min = pair.min.effective_value(polarity).unwrap_or(high);
    let level_spec = match level {
        QualityLevel::Minimum => pair.min,
        QualityLevel::High => pair.high,
    };
    let threshold = level_spec.effective_value(polarity)?;
    let met = level_spec
        .is_met(value, polarity)
        // lint: allow(panic) is_met is Some whenever effective_value returned Some
        .expect("numeric threshold");

    let score = match polarity {
        Polarity::HigherIsBetter => {
            if value >= high {
                1.0
            } else if value >= min {
                if high > min {
                    0.5 + 0.5 * (value - min) / (high - min)
                } else {
                    1.0
                }
            } else if min > 0.0 {
                0.5 * (value / min).clamp(0.0, 1.0)
            } else {
                0.0
            }
        }
        Polarity::LowerIsBetter => {
            if value <= high {
                1.0
            } else if value <= min {
                if min > high {
                    0.5 + 0.5 * (min - value) / (min - high)
                } else {
                    1.0
                }
            } else if value > 0.0 && min > 0.0 {
                0.5 * (min / value).clamp(0.0, 1.0)
            } else {
                0.0
            }
        }
    };
    Some(CellOutcome {
        score: score.clamp(0.0, 1.0),
        met,
        threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ThresholdSpec;

    fn pair(min: f64, high: f64) -> LevelPair {
        LevelPair {
            min: ThresholdSpec::Value(min),
            high: ThresholdSpec::Value(high),
        }
    }

    #[test]
    fn binary_high_level_throughput() {
        let p = pair(10.0, 100.0);
        let hit =
            binary_cell_score(&p, QualityLevel::High, 150.0, Polarity::HigherIsBetter).unwrap();
        assert_eq!(hit.score, 1.0);
        assert!(hit.met);
        assert_eq!(hit.threshold, 100.0);
        let miss =
            binary_cell_score(&p, QualityLevel::High, 50.0, Polarity::HigherIsBetter).unwrap();
        assert_eq!(miss.score, 0.0);
        assert!(!miss.met);
    }

    #[test]
    fn binary_minimum_level_uses_min_threshold() {
        let p = pair(10.0, 100.0);
        let o =
            binary_cell_score(&p, QualityLevel::Minimum, 50.0, Polarity::HigherIsBetter).unwrap();
        assert!(o.met);
        assert_eq!(o.threshold, 10.0);
    }

    #[test]
    fn binary_exact_threshold_counts_as_met() {
        let p = pair(100.0, 50.0); // latency-style (lower better)
        let o = binary_cell_score(&p, QualityLevel::High, 50.0, Polarity::LowerIsBetter).unwrap();
        assert!(o.met);
    }

    #[test]
    fn binary_unspecified_returns_none() {
        let p = LevelPair {
            min: ThresholdSpec::Value(10.0),
            high: ThresholdSpec::Unspecified,
        };
        assert!(
            binary_cell_score(&p, QualityLevel::High, 1000.0, Polarity::HigherIsBetter).is_none()
        );
        // The minimum level is still evaluable.
        assert!(
            binary_cell_score(&p, QualityLevel::Minimum, 1000.0, Polarity::HigherIsBetter)
                .is_some()
        );
    }

    #[test]
    fn binary_range_threshold_conservative() {
        let p = LevelPair {
            min: ThresholdSpec::Value(25.0),
            high: ThresholdSpec::Range {
                low: 50.0,
                high: 100.0,
            },
        };
        let o = binary_cell_score(&p, QualityLevel::High, 75.0, Polarity::HigherIsBetter).unwrap();
        assert!(!o.met, "75 < conservative bound 100");
        assert_eq!(o.threshold, 100.0);
    }

    #[test]
    fn graded_anchors_higher_is_better() {
        let p = pair(10.0, 100.0);
        let s = |v: f64| {
            graded_cell_score(&p, QualityLevel::High, v, Polarity::HigherIsBetter)
                .unwrap()
                .score
        };
        assert_eq!(s(0.0), 0.0);
        assert!((s(5.0) - 0.25).abs() < 1e-12); // halfway to min
        assert!((s(10.0) - 0.5).abs() < 1e-12); // at min
        assert!((s(55.0) - 0.75).abs() < 1e-12); // halfway up the ramp
        assert_eq!(s(100.0), 1.0);
        assert_eq!(s(500.0), 1.0);
    }

    #[test]
    fn graded_anchors_lower_is_better() {
        let p = pair(100.0, 50.0); // latency: min 100 ms, high 50 ms
        let s = |v: f64| {
            graded_cell_score(&p, QualityLevel::High, v, Polarity::LowerIsBetter)
                .unwrap()
                .score
        };
        assert_eq!(s(20.0), 1.0);
        assert_eq!(s(50.0), 1.0);
        assert!((s(75.0) - 0.75).abs() < 1e-12);
        assert!((s(100.0) - 0.5).abs() < 1e-12);
        assert!((s(200.0) - 0.25).abs() < 1e-12); // 0.5 * 100/200
        assert!(s(10_000.0) < 0.01);
    }

    #[test]
    fn graded_is_monotone() {
        let p = pair(10.0, 100.0);
        let mut prev = -1.0;
        for i in 0..=300 {
            let v = i as f64;
            let s = graded_cell_score(&p, QualityLevel::High, v, Polarity::HigherIsBetter)
                .unwrap()
                .score;
            assert!(s >= prev - 1e-12, "non-monotone at v={v}");
            assert!((0.0..=1.0).contains(&s));
            prev = s;
        }
    }

    #[test]
    fn graded_degenerate_equal_levels_steps() {
        // Online-backup download: min == high == 10.
        let p = pair(10.0, 10.0);
        let s = |v: f64| {
            graded_cell_score(&p, QualityLevel::High, v, Polarity::HigherIsBetter)
                .unwrap()
                .score
        };
        assert_eq!(s(10.0), 1.0);
        assert_eq!(s(11.0), 1.0);
        assert!((s(5.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn graded_unspecified_high_returns_none() {
        let p = LevelPair {
            min: ThresholdSpec::Value(10.0),
            high: ThresholdSpec::Unspecified,
        };
        assert!(
            graded_cell_score(&p, QualityLevel::High, 50.0, Polarity::HigherIsBetter).is_none()
        );
    }

    #[test]
    fn graded_dominates_binary_when_met_and_trails_when_missed() {
        // Graded ≥ binary below the cliff? No: graded gives partial credit
        // where binary gives 0, and both give 1 above the high threshold.
        let p = pair(10.0, 100.0);
        for v in [0.0, 5.0, 50.0, 100.0, 200.0] {
            let b = binary_cell_score(&p, QualityLevel::High, v, Polarity::HigherIsBetter)
                .unwrap()
                .score;
            let g = graded_cell_score(&p, QualityLevel::High, v, Polarity::HigherIsBetter)
                .unwrap()
                .score;
            assert!(g >= b, "graded {g} < binary {b} at v={v}");
        }
    }

    #[test]
    fn graded_met_flag_matches_binary_verdict() {
        let p = pair(10.0, 100.0);
        let g = graded_cell_score(&p, QualityLevel::High, 50.0, Polarity::HigherIsBetter).unwrap();
        assert!(!g.met);
        assert!(g.score > 0.0);
        let g =
            graded_cell_score(&p, QualityLevel::Minimum, 50.0, Polarity::HigherIsBetter).unwrap();
        assert!(g.met);
    }
}
