//! Typed metric values.
//!
//! A [`MetricValue`] pairs a number with the [`Metric`] it measures, so a
//! latency can never be compared against a throughput threshold by accident.
//! Construction validates the metric's physical domain via
//! [`Metric::validate`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::metric::Metric;

/// A validated measurement value for one metric.
///
/// ```
/// use iqb_core::metric::Metric;
/// use iqb_core::value::MetricValue;
///
/// let v = MetricValue::new(Metric::Latency, 23.5).unwrap();
/// assert_eq!(v.get(), 23.5);
/// assert_eq!(v.to_string(), "23.5 ms");
/// assert!(MetricValue::new(Metric::PacketLoss, 150.0).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricValue {
    metric: Metric,
    value: f64,
}

impl MetricValue {
    /// Creates a validated value.
    pub fn new(metric: Metric, value: f64) -> Result<Self, CoreError> {
        metric
            .validate(value)
            .map_err(|reason| CoreError::InvalidMetricValue {
                metric,
                value,
                reason,
            })?;
        Ok(MetricValue { metric, value })
    }

    /// Convenience constructor for download throughput in Mb/s.
    pub fn download_mbps(value: f64) -> Result<Self, CoreError> {
        Self::new(Metric::DownloadThroughput, value)
    }

    /// Convenience constructor for upload throughput in Mb/s.
    pub fn upload_mbps(value: f64) -> Result<Self, CoreError> {
        Self::new(Metric::UploadThroughput, value)
    }

    /// Convenience constructor for round-trip latency in milliseconds.
    pub fn latency_ms(value: f64) -> Result<Self, CoreError> {
        Self::new(Metric::Latency, value)
    }

    /// Convenience constructor for packet loss in percent.
    pub fn loss_pct(value: f64) -> Result<Self, CoreError> {
        Self::new(Metric::PacketLoss, value)
    }

    /// The metric this value measures.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The numeric value, in the metric's unit.
    pub fn get(&self) -> f64 {
        self.value
    }
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.value, self.metric.unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_values_construct() {
        assert!(MetricValue::download_mbps(100.0).is_ok());
        assert!(MetricValue::upload_mbps(0.0).is_ok());
        assert!(MetricValue::latency_ms(1000.0).is_ok());
        assert!(MetricValue::loss_pct(0.0).is_ok());
        assert!(MetricValue::loss_pct(100.0).is_ok());
    }

    #[test]
    fn invalid_values_rejected_with_context() {
        let err = MetricValue::latency_ms(-5.0).unwrap_err();
        match err {
            CoreError::InvalidMetricValue { metric, value, .. } => {
                assert_eq!(metric, Metric::Latency);
                assert_eq!(value, -5.0);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(MetricValue::loss_pct(101.0).is_err());
        assert!(MetricValue::download_mbps(f64::INFINITY).is_err());
    }

    #[test]
    fn display_appends_unit() {
        let v = MetricValue::download_mbps(25.0).unwrap();
        assert_eq!(v.to_string(), "25 Mb/s");
        let v = MetricValue::loss_pct(0.5).unwrap();
        assert_eq!(v.to_string(), "0.5 %");
    }

    #[test]
    fn accessors() {
        let v = MetricValue::new(Metric::UploadThroughput, 12.5).unwrap();
        assert_eq!(v.metric(), Metric::UploadThroughput);
        assert_eq!(v.get(), 12.5);
    }
}
