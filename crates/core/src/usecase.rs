//! Use cases — the user-facing tier of the IQB framework.
//!
//! *"Internet users rarely think of Internet quality in terms of metrics
//! like throughput, latency, or packet loss. Instead, they understand it
//! through what the Internet enables them to do."* Following the paper
//! (which in turn follows Cranor et al.'s consumer broadband-label work),
//! the framework ships six built-in use cases and — because the paper
//! stresses that IQB "is designed to be easily adapted" — allows arbitrary
//! custom ones.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A use case: an activity whose quality the IQB framework evaluates.
///
/// The six unit variants are the paper's built-ins; [`UseCase::Custom`]
/// supports framework adaptations (e.g. "remote surgery", "cloud gaming")
/// provided the configuration supplies thresholds and weights for them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(into = "String", try_from = "String")]
pub enum UseCase {
    /// Loading and interacting with web pages.
    WebBrowsing,
    /// On-demand video playback (paper: "streaming video").
    VideoStreaming,
    /// Real-time interactive video calls.
    VideoConferencing,
    /// Music / podcast playback (paper: "streaming audio").
    AudioStreaming,
    /// Bulk upload of files to cloud storage.
    OnlineBackup,
    /// Real-time online gaming.
    Gaming,
    /// A user-defined use case, identified by a non-empty name.
    Custom(String),
}

impl UseCase {
    /// The paper's six built-in use cases, in the row order of Fig. 2 /
    /// Table 1 (web browsing first, gaming last).
    pub const BUILTIN: [UseCase; 6] = [
        UseCase::WebBrowsing,
        UseCase::VideoStreaming,
        UseCase::VideoConferencing,
        UseCase::AudioStreaming,
        UseCase::OnlineBackup,
        UseCase::Gaming,
    ];

    /// Human-readable label matching the paper's tables.
    pub fn label(&self) -> &str {
        match self {
            UseCase::WebBrowsing => "Web Browsing",
            UseCase::VideoStreaming => "Video Streaming",
            UseCase::VideoConferencing => "Video Conferencing",
            UseCase::AudioStreaming => "Audio Streaming",
            UseCase::OnlineBackup => "Online Backup",
            UseCase::Gaming => "Gaming",
            UseCase::Custom(name) => name,
        }
    }

    /// One-line description of the activity and what network property it
    /// stresses — used in reports and the Fig. 1 exhibit.
    pub fn description(&self) -> &str {
        match self {
            UseCase::WebBrowsing => {
                "Loading and interacting with web pages; latency-sensitive page loads"
            }
            UseCase::VideoStreaming => "On-demand video playback; sustained download throughput",
            UseCase::VideoConferencing => {
                "Real-time interactive video; symmetric throughput and tight latency"
            }
            UseCase::AudioStreaming => "Music and podcast playback; modest sustained throughput",
            UseCase::OnlineBackup => "Bulk upload to cloud storage; upload throughput",
            UseCase::Gaming => "Real-time online gaming; latency and loss above all",
            UseCase::Custom(_) => "User-defined use case",
        }
    }

    /// Whether this is one of the paper's built-in use cases.
    pub fn is_builtin(&self) -> bool {
        !matches!(self, UseCase::Custom(_))
    }

    /// Creates a custom use case, rejecting empty or builtin-shadowing names.
    pub fn custom(name: impl Into<String>) -> Result<UseCase, String> {
        let name = name.into();
        if name.trim().is_empty() {
            return Err("custom use-case name must be non-empty".into());
        }
        if UseCase::BUILTIN.iter().any(|b| b.label() == name) {
            return Err(format!("`{name}` shadows a built-in use case"));
        }
        Ok(UseCase::Custom(name))
    }
}

impl From<UseCase> for String {
    fn from(u: UseCase) -> String {
        u.label().to_string()
    }
}

impl TryFrom<String> for UseCase {
    type Error = String;
    fn try_from(value: String) -> Result<Self, Self::Error> {
        if value.trim().is_empty() {
            return Err("empty use-case label".to_string());
        }
        Ok(UseCase::BUILTIN
            .iter()
            .find(|b| b.label() == value)
            .cloned()
            .unwrap_or(UseCase::Custom(value)))
    }
}

impl fmt::Display for UseCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_builtins_in_paper_order() {
        assert_eq!(UseCase::BUILTIN.len(), 6);
        assert_eq!(UseCase::BUILTIN[0], UseCase::WebBrowsing);
        assert_eq!(UseCase::BUILTIN[5], UseCase::Gaming);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(UseCase::WebBrowsing.label(), "Web Browsing");
        assert_eq!(UseCase::VideoConferencing.label(), "Video Conferencing");
        assert_eq!(UseCase::OnlineBackup.label(), "Online Backup");
    }

    #[test]
    fn builtin_flag() {
        assert!(UseCase::Gaming.is_builtin());
        assert!(!UseCase::Custom("Remote Surgery".into()).is_builtin());
    }

    #[test]
    fn custom_construction_validates() {
        assert!(UseCase::custom("Cloud Gaming").is_ok());
        assert!(UseCase::custom("").is_err());
        assert!(UseCase::custom("   ").is_err());
        assert!(UseCase::custom("Gaming").is_err(), "shadows builtin");
    }

    #[test]
    fn custom_label_is_its_name() {
        let u = UseCase::custom("Telemetry Upload").unwrap();
        assert_eq!(u.label(), "Telemetry Upload");
        assert_eq!(u.to_string(), "Telemetry Upload");
    }

    #[test]
    fn ordering_is_stable_for_btreemap_use() {
        // BTreeMap keys must order deterministically; builtins sort by
        // declaration order, customs after (derived Ord on enums).
        assert!(UseCase::WebBrowsing < UseCase::Gaming);
        assert!(UseCase::Gaming < UseCase::Custom("A".into()));
    }
}
