//! Presentation scales for the IQB score.
//!
//! The paper motivates the composite with two household analogies: *"a
//! credit score and the Nutri-Score, which illustrate how a single score
//! can provide a generalized or approximate assessment"*. This module
//! implements both as presentation layers over the `[0, 1]` score:
//!
//! * [`LetterGrade`] — a Nutri-Score-style A–E band;
//! * [`credit_scale`] — a credit-score-style 300–850 number.
//!
//! Both are pure renderings: they never feed back into scoring.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;

/// Nutri-Score-style letter band, A (best) through E (worst).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LetterGrade {
    /// Excellent: the connection corroborately meets nearly every
    /// high-quality requirement.
    A,
    /// Good.
    B,
    /// Fair.
    C,
    /// Poor.
    D,
    /// Failing: most requirements unmet.
    E,
}

impl LetterGrade {
    /// All grades from best to worst.
    pub const ALL: [LetterGrade; 5] = [
        LetterGrade::A,
        LetterGrade::B,
        LetterGrade::C,
        LetterGrade::D,
        LetterGrade::E,
    ];

    /// Single-character label.
    pub fn label(&self) -> char {
        match self {
            LetterGrade::A => 'A',
            LetterGrade::B => 'B',
            LetterGrade::C => 'C',
            LetterGrade::D => 'D',
            LetterGrade::E => 'E',
        }
    }
}

impl std::fmt::Display for LetterGrade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Grade band boundaries: scores at or above each cut-off earn the
/// corresponding grade.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GradeBands {
    /// Minimum score for an A.
    pub a: f64,
    /// Minimum score for a B.
    pub b: f64,
    /// Minimum score for a C.
    pub c: f64,
    /// Minimum score for a D (below this is an E).
    pub d: f64,
}

impl Default for GradeBands {
    /// Default bands: A ≥ 0.90, B ≥ 0.75, C ≥ 0.55, D ≥ 0.35, E below.
    fn default() -> Self {
        GradeBands {
            a: 0.90,
            b: 0.75,
            c: 0.55,
            d: 0.35,
        }
    }
}

impl GradeBands {
    /// Validates that the cut-offs are in `[0, 1]` and strictly descending.
    pub fn validate(&self) -> Result<(), CoreError> {
        let cuts = [self.a, self.b, self.c, self.d];
        for &c in &cuts {
            if !(0.0..=1.0).contains(&c) || c.is_nan() {
                return Err(CoreError::InvalidConfig(format!(
                    "grade cut-off {c} outside [0, 1]"
                )));
            }
        }
        if !(self.a > self.b && self.b > self.c && self.c > self.d) {
            return Err(CoreError::InvalidConfig(
                "grade cut-offs must be strictly descending".into(),
            ));
        }
        Ok(())
    }

    /// Maps a score in `[0, 1]` to its letter grade.
    pub fn grade(&self, score: f64) -> Result<LetterGrade, CoreError> {
        self.validate()?;
        if !(0.0..=1.0).contains(&score) || score.is_nan() {
            return Err(CoreError::InvalidConfig(format!(
                "score {score} outside [0, 1]"
            )));
        }
        Ok(if score >= self.a {
            LetterGrade::A
        } else if score >= self.b {
            LetterGrade::B
        } else if score >= self.c {
            LetterGrade::C
        } else if score >= self.d {
            LetterGrade::D
        } else {
            LetterGrade::E
        })
    }
}

/// Maps a score in `[0, 1]` to a credit-score-style integer in 300–850
/// (linear: 0 → 300, 1 → 850).
pub fn credit_scale(score: f64) -> Result<u32, CoreError> {
    if !(0.0..=1.0).contains(&score) || score.is_nan() {
        return Err(CoreError::InvalidConfig(format!(
            "score {score} outside [0, 1]"
        )));
    }
    Ok((300.0 + score * 550.0).round() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_bands_validate() {
        GradeBands::default().validate().unwrap();
    }

    #[test]
    fn band_boundaries_inclusive() {
        let b = GradeBands::default();
        assert_eq!(b.grade(1.0).unwrap(), LetterGrade::A);
        assert_eq!(b.grade(0.90).unwrap(), LetterGrade::A);
        assert_eq!(b.grade(0.8999).unwrap(), LetterGrade::B);
        assert_eq!(b.grade(0.75).unwrap(), LetterGrade::B);
        assert_eq!(b.grade(0.55).unwrap(), LetterGrade::C);
        assert_eq!(b.grade(0.35).unwrap(), LetterGrade::D);
        assert_eq!(b.grade(0.0).unwrap(), LetterGrade::E);
    }

    #[test]
    fn grade_rejects_out_of_range_scores() {
        let b = GradeBands::default();
        assert!(b.grade(1.5).is_err());
        assert!(b.grade(-0.1).is_err());
        assert!(b.grade(f64::NAN).is_err());
    }

    #[test]
    fn non_descending_bands_rejected() {
        let bad = GradeBands {
            a: 0.5,
            b: 0.75,
            c: 0.55,
            d: 0.35,
        };
        assert!(bad.validate().is_err());
        let out_of_range = GradeBands {
            a: 1.5,
            ..Default::default()
        };
        assert!(out_of_range.validate().is_err());
    }

    #[test]
    fn grades_order_best_to_worst() {
        assert!(LetterGrade::A < LetterGrade::E);
        assert_eq!(LetterGrade::ALL[0], LetterGrade::A);
        assert_eq!(LetterGrade::B.to_string(), "B");
    }

    #[test]
    fn credit_scale_endpoints_and_midpoint() {
        assert_eq!(credit_scale(0.0).unwrap(), 300);
        assert_eq!(credit_scale(1.0).unwrap(), 850);
        assert_eq!(credit_scale(0.5).unwrap(), 575);
    }

    #[test]
    fn credit_scale_monotone() {
        let mut prev = 0;
        for i in 0..=100 {
            let s = credit_scale(i as f64 / 100.0).unwrap();
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn credit_scale_rejects_out_of_range() {
        assert!(credit_scale(-0.01).is_err());
        assert!(credit_scale(1.01).is_err());
        assert!(credit_scale(f64::NAN).is_err());
    }
}
