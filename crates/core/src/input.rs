//! Scoring input: per-dataset metric aggregates.
//!
//! The dataset tier hands the score formula one number per
//! (dataset, metric) pair — the region's aggregated measurement (the 95th
//! percentile by default, computed by `iqb-data`). [`AggregateInput`]
//! carries those numbers plus optional provenance, and tolerates missing
//! cells: a dataset that does not report a metric (Ookla open data has no
//! packet loss) is simply absent, and the score normalization redistributes
//! its weight.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::dataset::DatasetId;
use crate::error::CoreError;
use crate::metric::Metric;

/// Which aggregation engine reduced the raw measurements to the cell
/// value. Recorded in provenance so a report is auditable: an exact
/// order-statistics value and a sketch estimate are not interchangeable
/// claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AggregationBackend {
    /// Exact order statistics over the full sample (the paper-faithful
    /// reference, and the default).
    #[default]
    Exact,
    /// Mergeable t-digest sketch (Dunning & Ertl).
    TDigest,
    /// P² single-quantile estimator (Jain & Chlamtac).
    P2,
}

impl AggregationBackend {
    /// Stable lowercase tag used on the CLI and in rendered provenance.
    pub fn tag(&self) -> &'static str {
        match self {
            AggregationBackend::Exact => "exact",
            AggregationBackend::TDigest => "tdigest",
            AggregationBackend::P2 => "p2",
        }
    }
}

impl std::fmt::Display for AggregationBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

impl std::str::FromStr for AggregationBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(AggregationBackend::Exact),
            "tdigest" => Ok(AggregationBackend::TDigest),
            "p2" => Ok(AggregationBackend::P2),
            other => Err(format!(
                "unknown aggregation backend `{other}` (expected exact|tdigest|p2)"
            )),
        }
    }
}

/// Provenance of one aggregate cell: how many raw measurements produced it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellProvenance {
    /// Number of raw measurements aggregated into this value.
    pub sample_count: u64,
    /// Quantile rank used for aggregation (0.95 per the paper).
    pub quantile: f64,
    /// Aggregation engine that produced the value (defaults to the exact
    /// reference for inputs recorded before backends existed).
    #[serde(default)]
    pub backend: AggregationBackend,
}

/// One aggregate value with optional provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateCell {
    /// The aggregated metric value, in the metric's unit.
    pub value: f64,
    /// Provenance, when the aggregation layer supplies it.
    pub provenance: Option<CellProvenance>,
}

/// The full scoring input: `(dataset, metric) → aggregate`.
///
/// ```
/// use iqb_core::dataset::DatasetId;
/// use iqb_core::input::AggregateInput;
/// use iqb_core::metric::Metric;
///
/// let mut input = AggregateInput::new();
/// input.set(DatasetId::Ndt, Metric::Latency, 35.0);
/// assert_eq!(input.get(&DatasetId::Ndt, Metric::Latency), Some(35.0));
/// assert_eq!(input.get(&DatasetId::Ookla, Metric::Latency), None);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AggregateInput {
    /// Serialized as an entry list because JSON map keys must be strings.
    #[serde(with = "cells_serde")]
    cells: BTreeMap<(DatasetId, Metric), AggregateCell>,
}

/// Serde adapter: the tuple-keyed map round-trips as a list of
/// `(dataset, metric, cell)` entries.
mod cells_serde {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        cells: &BTreeMap<(DatasetId, Metric), AggregateCell>,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&DatasetId, &Metric, &AggregateCell)> =
            cells.iter().map(|((d, m), c)| (d, m, c)).collect();
        serde::Serialize::serialize(&entries, serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<BTreeMap<(DatasetId, Metric), AggregateCell>, D::Error> {
        let entries: Vec<(DatasetId, Metric, AggregateCell)> =
            serde::Deserialize::deserialize(deserializer)?;
        Ok(entries.into_iter().map(|(d, m, c)| ((d, m), c)).collect())
    }
}

impl AggregateInput {
    /// Creates an empty input.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an aggregate value without provenance. Overwrites any existing
    /// cell for the same (dataset, metric).
    pub fn set(&mut self, dataset: DatasetId, metric: Metric, value: f64) {
        self.cells.insert(
            (dataset, metric),
            AggregateCell {
                value,
                provenance: None,
            },
        );
    }

    /// Sets an aggregate value with provenance.
    pub fn set_with_provenance(
        &mut self,
        dataset: DatasetId,
        metric: Metric,
        value: f64,
        provenance: CellProvenance,
    ) {
        self.cells.insert(
            (dataset, metric),
            AggregateCell {
                value,
                provenance: Some(provenance),
            },
        );
    }

    /// The aggregate value for a cell, if present.
    pub fn get(&self, dataset: &DatasetId, metric: Metric) -> Option<f64> {
        self.cells.get(&(dataset.clone(), metric)).map(|c| c.value)
    }

    /// The full cell (value + provenance), if present.
    pub fn get_cell(&self, dataset: &DatasetId, metric: Metric) -> Option<&AggregateCell> {
        self.cells.get(&(dataset.clone(), metric))
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell is populated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates populated cells in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&(DatasetId, Metric), &AggregateCell)> {
        self.cells.iter()
    }

    /// Datasets with at least one populated cell.
    pub fn datasets(&self) -> Vec<DatasetId> {
        let mut out: Vec<DatasetId> = self.cells.keys().map(|(d, _)| d.clone()).collect();
        out.dedup();
        out
    }

    /// Validates every populated value against its metric's physical domain.
    pub fn validate(&self) -> Result<(), CoreError> {
        for ((_, metric), cell) in &self.cells {
            metric
                .validate(cell.value)
                .map_err(|reason| CoreError::InvalidMetricValue {
                    metric: *metric,
                    value: cell.value,
                    reason,
                })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut input = AggregateInput::new();
        assert!(input.is_empty());
        input.set(DatasetId::Ndt, Metric::DownloadThroughput, 87.5);
        assert_eq!(input.len(), 1);
        assert_eq!(
            input.get(&DatasetId::Ndt, Metric::DownloadThroughput),
            Some(87.5)
        );
        assert_eq!(input.get(&DatasetId::Ndt, Metric::UploadThroughput), None);
    }

    #[test]
    fn overwrite_replaces_value() {
        let mut input = AggregateInput::new();
        input.set(DatasetId::Ookla, Metric::Latency, 30.0);
        input.set(DatasetId::Ookla, Metric::Latency, 25.0);
        assert_eq!(input.len(), 1);
        assert_eq!(input.get(&DatasetId::Ookla, Metric::Latency), Some(25.0));
    }

    #[test]
    fn provenance_is_preserved() {
        let mut input = AggregateInput::new();
        input.set_with_provenance(
            DatasetId::Cloudflare,
            Metric::PacketLoss,
            0.2,
            CellProvenance {
                sample_count: 1234,
                quantile: 0.95,
                backend: AggregationBackend::Exact,
            },
        );
        let cell = input
            .get_cell(&DatasetId::Cloudflare, Metric::PacketLoss)
            .unwrap();
        assert_eq!(cell.provenance.unwrap().sample_count, 1234);
    }

    #[test]
    fn datasets_lists_unique_sources() {
        let mut input = AggregateInput::new();
        input.set(DatasetId::Ndt, Metric::Latency, 20.0);
        input.set(DatasetId::Ndt, Metric::PacketLoss, 0.1);
        input.set(DatasetId::Ookla, Metric::Latency, 18.0);
        let datasets = input.datasets();
        assert!(datasets.contains(&DatasetId::Ndt));
        assert!(datasets.contains(&DatasetId::Ookla));
    }

    #[test]
    fn validate_rejects_domain_violations() {
        let mut input = AggregateInput::new();
        input.set(DatasetId::Ndt, Metric::PacketLoss, 250.0);
        assert!(input.validate().is_err());
        let mut ok = AggregateInput::new();
        ok.set(DatasetId::Ndt, Metric::PacketLoss, 2.5);
        ok.validate().unwrap();
    }

    #[test]
    fn serde_json_round_trip() {
        let mut input = AggregateInput::new();
        input.set(DatasetId::Ndt, Metric::Latency, 20.0);
        input.set_with_provenance(
            DatasetId::Custom("probes".into()),
            Metric::PacketLoss,
            0.4,
            CellProvenance {
                sample_count: 9,
                quantile: 0.95,
                backend: AggregationBackend::TDigest,
            },
        );
        let json = serde_json::to_string(&input).unwrap();
        let back: AggregateInput = serde_json::from_str(&json).unwrap();
        assert_eq!(back, input);
    }

    #[test]
    fn validate_rejects_nan() {
        let mut input = AggregateInput::new();
        input.set(DatasetId::Ndt, Metric::Latency, f64::NAN);
        assert!(input.validate().is_err());
    }
}
