//! Quality thresholds — the paper's Fig. 2.
//!
//! For every (use case, requirement) pair the framework defines what a user
//! needs for a *minimum*-quality and a *high*-quality experience. The
//! thresholds below were elicited from 60+ experts between Nov 2023 and
//! Mar 2025 and published in the poster's Fig. 2; [`ThresholdTable::paper_fig2`]
//! encodes that table verbatim, including its two irregular cell kinds:
//!
//! * `"Other"` cells (web-browsing and gaming upload, high quality) become
//!   [`ThresholdSpec::Unspecified`] — the requirement is skipped for that
//!   use case/level and its weight is redistributed by the score
//!   normalization.
//! * The `"50-100 Mb/s"` cell (video-streaming download, high quality)
//!   becomes a [`ThresholdSpec::Range`]; binary evaluation uses its
//!   conservative (upper) bound by default.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::metric::{Metric, Polarity};
use crate::usecase::UseCase;

/// The two quality levels of the paper's Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QualityLevel {
    /// The minimum for the use case to work acceptably.
    Minimum,
    /// A high-quality experience.
    High,
}

impl QualityLevel {
    /// Both levels, minimum first.
    pub const ALL: [QualityLevel; 2] = [QualityLevel::Minimum, QualityLevel::High];

    /// Label as used in the paper's column headers.
    pub fn label(&self) -> &'static str {
        match self {
            QualityLevel::Minimum => "min quality",
            QualityLevel::High => "high quality",
        }
    }
}

/// One cell of the threshold table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ThresholdSpec {
    /// A single threshold value in the metric's unit.
    Value(f64),
    /// A published range (e.g. "50-100 Mb/s"). Binary evaluation uses the
    /// conservative bound: the range end that is harder to satisfy.
    Range {
        /// Lower end of the published range.
        low: f64,
        /// Upper end of the published range.
        high: f64,
    },
    /// The paper's "Other" cells: no numeric requirement is specified, so
    /// the (use case, requirement) pair is excluded at this level and its
    /// weight is redistributed by normalization.
    Unspecified,
}

impl ThresholdSpec {
    /// The value binary evaluation compares against, honouring polarity:
    /// for a range, the *conservative* end (upper for higher-is-better
    /// metrics, also upper for lower-is-better since the paper's only range
    /// is on throughput; we pick the stricter end generically).
    ///
    /// Returns `None` for [`ThresholdSpec::Unspecified`].
    pub fn effective_value(&self, polarity: Polarity) -> Option<f64> {
        match *self {
            ThresholdSpec::Value(v) => Some(v),
            ThresholdSpec::Range { low, high } => Some(match polarity {
                // Needing *more* throughput is stricter.
                Polarity::HigherIsBetter => high,
                // Needing *less* latency/loss is stricter.
                Polarity::LowerIsBetter => low,
            }),
            ThresholdSpec::Unspecified => None,
        }
    }

    /// The lenient end of the spec (opposite of [`Self::effective_value`]);
    /// equal to it for plain values. Used by graded scoring.
    pub fn lenient_value(&self, polarity: Polarity) -> Option<f64> {
        match *self {
            ThresholdSpec::Value(v) => Some(v),
            ThresholdSpec::Range { low, high } => Some(match polarity {
                Polarity::HigherIsBetter => low,
                Polarity::LowerIsBetter => high,
            }),
            ThresholdSpec::Unspecified => None,
        }
    }

    /// Whether a measured value meets this threshold under `polarity`.
    ///
    /// Meeting the threshold exactly counts as meeting it (`>=` / `<=`).
    /// `Unspecified` returns `None` — the cell cannot be evaluated.
    pub fn is_met(&self, value: f64, polarity: Polarity) -> Option<bool> {
        self.effective_value(polarity).map(|t| match polarity {
            Polarity::HigherIsBetter => value >= t,
            Polarity::LowerIsBetter => value <= t,
        })
    }

    /// Renders the cell the way the paper prints it.
    pub fn render(&self, unit_suffix: &str) -> String {
        match *self {
            ThresholdSpec::Value(v) => format!("{v}{unit_suffix}"),
            ThresholdSpec::Range { low, high } => format!("{low}-{high}{unit_suffix}"),
            ThresholdSpec::Unspecified => "Other".to_string(),
        }
    }
}

/// The full threshold table: `(use case, metric, level) → spec`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ThresholdTable {
    cells: BTreeMap<UseCase, BTreeMap<Metric, LevelPair>>,
}

/// Threshold pair for one (use case, metric) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LevelPair {
    /// Minimum-quality threshold.
    pub min: ThresholdSpec,
    /// High-quality threshold.
    pub high: ThresholdSpec,
}

impl ThresholdTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's Fig. 2, verbatim.
    ///
    /// Packet-loss and latency cells are lower-is-better; throughput cells
    /// higher-is-better (encoded in [`Metric::polarity`], not here).
    pub fn paper_fig2() -> Self {
        use Metric::*;
        use ThresholdSpec::{Range, Unspecified, Value};
        let mut t = Self::new();
        let rows: [(UseCase, [(Metric, ThresholdSpec, ThresholdSpec); 4]); 6] = [
            (
                UseCase::WebBrowsing,
                [
                    (DownloadThroughput, Value(10.0), Value(100.0)),
                    (UploadThroughput, Value(10.0), Unspecified),
                    (Latency, Value(100.0), Value(50.0)),
                    (PacketLoss, Value(1.0), Value(0.5)),
                ],
            ),
            (
                UseCase::VideoStreaming,
                [
                    (
                        DownloadThroughput,
                        Value(25.0),
                        Range {
                            low: 50.0,
                            high: 100.0,
                        },
                    ),
                    (UploadThroughput, Value(10.0), Value(10.0)),
                    (Latency, Value(100.0), Value(50.0)),
                    (PacketLoss, Value(1.0), Value(0.1)),
                ],
            ),
            (
                UseCase::VideoConferencing,
                [
                    (DownloadThroughput, Value(10.0), Value(100.0)),
                    (UploadThroughput, Value(25.0), Value(100.0)),
                    (Latency, Value(50.0), Value(20.0)),
                    (PacketLoss, Value(0.5), Value(0.1)),
                ],
            ),
            (
                UseCase::AudioStreaming,
                [
                    (DownloadThroughput, Value(10.0), Value(50.0)),
                    (UploadThroughput, Value(10.0), Value(50.0)),
                    (Latency, Value(100.0), Value(50.0)),
                    (PacketLoss, Value(1.0), Value(0.1)),
                ],
            ),
            (
                UseCase::OnlineBackup,
                [
                    (DownloadThroughput, Value(10.0), Value(10.0)),
                    (UploadThroughput, Value(25.0), Value(200.0)),
                    (Latency, Value(100.0), Value(100.0)),
                    (PacketLoss, Value(1.0), Value(0.1)),
                ],
            ),
            (
                UseCase::Gaming,
                [
                    (DownloadThroughput, Value(10.0), Value(100.0)),
                    (UploadThroughput, Value(10.0), Unspecified),
                    (Latency, Value(100.0), Value(50.0)),
                    (PacketLoss, Value(1.0), Value(0.5)),
                ],
            ),
        ];
        for (use_case, cells) in rows {
            for (metric, min, high) in cells {
                t.set(use_case.clone(), metric, LevelPair { min, high });
            }
        }
        t
    }

    /// Sets the threshold pair for a (use case, metric) cell.
    pub fn set(&mut self, use_case: UseCase, metric: Metric, pair: LevelPair) {
        self.cells.entry(use_case).or_default().insert(metric, pair);
    }

    /// Looks up the threshold spec for a (use case, metric, level) cell.
    pub fn get(
        &self,
        use_case: &UseCase,
        metric: Metric,
        level: QualityLevel,
    ) -> Option<ThresholdSpec> {
        self.cells.get(use_case).and_then(|row| {
            row.get(&metric).map(|pair| match level {
                QualityLevel::Minimum => pair.min,
                QualityLevel::High => pair.high,
            })
        })
    }

    /// Looks up the full pair for a (use case, metric) cell.
    pub fn get_pair(&self, use_case: &UseCase, metric: Metric) -> Option<LevelPair> {
        self.cells
            .get(use_case)
            .and_then(|row| row.get(&metric))
            .copied()
    }

    /// Use cases with at least one threshold row.
    pub fn use_cases(&self) -> impl Iterator<Item = &UseCase> {
        self.cells.keys()
    }

    /// Validates internal consistency: for every cell where both levels are
    /// numeric, the high-quality threshold must be at least as strict as the
    /// minimum-quality one under the metric's polarity.
    pub fn validate(&self) -> Result<(), CoreError> {
        for (use_case, row) in &self.cells {
            for (&metric, pair) in row {
                let polarity = metric.polarity();
                // Domain-check numeric thresholds with the metric validator.
                for spec in [pair.min, pair.high] {
                    let candidates = match spec {
                        ThresholdSpec::Value(v) => vec![v],
                        ThresholdSpec::Range { low, high } => vec![low, high],
                        ThresholdSpec::Unspecified => vec![],
                    };
                    for v in candidates {
                        metric
                            .validate(v)
                            .map_err(|reason| CoreError::InconsistentThreshold {
                                use_case: use_case.clone(),
                                metric,
                                reason,
                            })?;
                    }
                }
                if let ThresholdSpec::Range { low, high } = pair.min {
                    if low > high {
                        return Err(CoreError::InconsistentThreshold {
                            use_case: use_case.clone(),
                            metric,
                            reason: format!("range {low}-{high} is inverted"),
                        });
                    }
                }
                if let ThresholdSpec::Range { low, high } = pair.high {
                    if low > high {
                        return Err(CoreError::InconsistentThreshold {
                            use_case: use_case.clone(),
                            metric,
                            reason: format!("range {low}-{high} is inverted"),
                        });
                    }
                }
                if let (Some(min_v), Some(high_v)) = (
                    pair.min.effective_value(polarity),
                    pair.high.effective_value(polarity),
                ) {
                    let consistent = match polarity {
                        Polarity::HigherIsBetter => high_v >= min_v,
                        Polarity::LowerIsBetter => high_v <= min_v,
                    };
                    if !consistent {
                        return Err(CoreError::InconsistentThreshold {
                            use_case: use_case.clone(),
                            metric,
                            reason: format!(
                                "high-quality threshold {high_v} is laxer than minimum {min_v}"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_has_all_48_cells() {
        let t = ThresholdTable::paper_fig2();
        for u in UseCase::BUILTIN {
            for m in Metric::ALL {
                for level in QualityLevel::ALL {
                    assert!(
                        t.get(&u, m, level).is_some(),
                        "missing cell {u}/{m}/{level:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_table_validates() {
        ThresholdTable::paper_fig2().validate().unwrap();
    }

    #[test]
    fn spot_check_paper_values() {
        let t = ThresholdTable::paper_fig2();
        // Video conferencing latency: 50 ms min, 20 ms high.
        assert_eq!(
            t.get(
                &UseCase::VideoConferencing,
                Metric::Latency,
                QualityLevel::Minimum
            ),
            Some(ThresholdSpec::Value(50.0))
        );
        assert_eq!(
            t.get(
                &UseCase::VideoConferencing,
                Metric::Latency,
                QualityLevel::High
            ),
            Some(ThresholdSpec::Value(20.0))
        );
        // Online backup upload: 25 min, 200 high.
        assert_eq!(
            t.get(
                &UseCase::OnlineBackup,
                Metric::UploadThroughput,
                QualityLevel::High
            ),
            Some(ThresholdSpec::Value(200.0))
        );
        // Web browsing upload high is "Other".
        assert_eq!(
            t.get(
                &UseCase::WebBrowsing,
                Metric::UploadThroughput,
                QualityLevel::High
            ),
            Some(ThresholdSpec::Unspecified)
        );
        // Video streaming download high is the 50-100 range.
        assert_eq!(
            t.get(
                &UseCase::VideoStreaming,
                Metric::DownloadThroughput,
                QualityLevel::High
            ),
            Some(ThresholdSpec::Range {
                low: 50.0,
                high: 100.0
            })
        );
    }

    #[test]
    fn is_met_respects_polarity_and_edges() {
        let spec = ThresholdSpec::Value(100.0);
        assert_eq!(spec.is_met(100.0, Polarity::HigherIsBetter), Some(true));
        assert_eq!(spec.is_met(99.9, Polarity::HigherIsBetter), Some(false));
        assert_eq!(spec.is_met(100.0, Polarity::LowerIsBetter), Some(true));
        assert_eq!(spec.is_met(100.1, Polarity::LowerIsBetter), Some(false));
        assert_eq!(
            ThresholdSpec::Unspecified.is_met(5.0, Polarity::HigherIsBetter),
            None
        );
    }

    #[test]
    fn range_uses_conservative_bound() {
        let spec = ThresholdSpec::Range {
            low: 50.0,
            high: 100.0,
        };
        // Throughput: must clear the upper end.
        assert_eq!(spec.effective_value(Polarity::HigherIsBetter), Some(100.0));
        assert_eq!(spec.is_met(75.0, Polarity::HigherIsBetter), Some(false));
        assert_eq!(spec.is_met(100.0, Polarity::HigherIsBetter), Some(true));
        // Lower-is-better: must come in under the lower end.
        assert_eq!(spec.effective_value(Polarity::LowerIsBetter), Some(50.0));
        assert_eq!(spec.lenient_value(Polarity::HigherIsBetter), Some(50.0));
    }

    #[test]
    fn render_matches_paper_formatting() {
        assert_eq!(ThresholdSpec::Value(25.0).render("Mb/s"), "25Mb/s");
        assert_eq!(
            ThresholdSpec::Range {
                low: 50.0,
                high: 100.0
            }
            .render("Mb/s"),
            "50-100Mb/s"
        );
        assert_eq!(ThresholdSpec::Unspecified.render("Mb/s"), "Other");
    }

    #[test]
    fn validation_rejects_inverted_levels() {
        let mut t = ThresholdTable::new();
        t.set(
            UseCase::Gaming,
            Metric::Latency,
            LevelPair {
                min: ThresholdSpec::Value(50.0),
                high: ThresholdSpec::Value(100.0), // laxer than min: invalid
            },
        );
        assert!(matches!(
            t.validate(),
            Err(CoreError::InconsistentThreshold { .. })
        ));
    }

    #[test]
    fn validation_rejects_out_of_domain_values() {
        let mut t = ThresholdTable::new();
        t.set(
            UseCase::Gaming,
            Metric::PacketLoss,
            LevelPair {
                min: ThresholdSpec::Value(150.0), // >100%
                high: ThresholdSpec::Value(0.5),
            },
        );
        assert!(t.validate().is_err());
    }

    #[test]
    fn validation_rejects_inverted_range() {
        let mut t = ThresholdTable::new();
        t.set(
            UseCase::Gaming,
            Metric::DownloadThroughput,
            LevelPair {
                min: ThresholdSpec::Value(10.0),
                high: ThresholdSpec::Range {
                    low: 100.0,
                    high: 50.0,
                },
            },
        );
        assert!(t.validate().is_err());
    }

    #[test]
    fn unspecified_high_with_numeric_min_is_valid() {
        // The paper's own web-browsing upload row.
        ThresholdTable::paper_fig2().validate().unwrap();
    }

    #[test]
    fn custom_use_case_rows_are_supported() {
        let mut t = ThresholdTable::paper_fig2();
        let surgery = UseCase::custom("Remote Surgery").unwrap();
        t.set(
            surgery.clone(),
            Metric::Latency,
            LevelPair {
                min: ThresholdSpec::Value(20.0),
                high: ThresholdSpec::Value(5.0),
            },
        );
        t.validate().unwrap();
        assert_eq!(
            t.get(&surgery, Metric::Latency, QualityLevel::High),
            Some(ThresholdSpec::Value(5.0))
        );
    }
}
