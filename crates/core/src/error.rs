//! Error type for the IQB core framework.

use std::fmt;

use crate::dataset::DatasetId;
use crate::metric::Metric;
use crate::usecase::UseCase;

/// Errors produced while configuring or evaluating the IQB framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A weight outside the paper's 0–5 integer range was supplied.
    InvalidWeight(u32),
    /// A metric value was non-finite or out of its physical domain.
    InvalidMetricValue {
        /// The metric the value was supplied for.
        metric: Metric,
        /// The offending value.
        value: f64,
        /// Why it was rejected.
        reason: String,
    },
    /// A threshold table entry is inconsistent (e.g. the minimum-quality
    /// threshold is stricter than the high-quality one).
    InconsistentThreshold {
        /// Use case whose threshold row is inconsistent.
        use_case: UseCase,
        /// Metric whose cell is inconsistent.
        metric: Metric,
        /// Description of the inconsistency.
        reason: String,
    },
    /// The configuration is structurally invalid (missing rows, no datasets,
    /// all-zero weights …).
    InvalidConfig(String),
    /// Scoring was requested but no (use case, requirement, dataset) cell
    /// could be evaluated — typically an empty [`crate::input::AggregateInput`].
    NothingToScore,
    /// A referenced use case is not part of the configuration.
    UnknownUseCase(UseCase),
    /// A referenced dataset is not part of the configuration.
    UnknownDataset(DatasetId),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidWeight(w) => {
                write!(f, "weight {w} is outside the paper's 0..=5 integer range")
            }
            CoreError::InvalidMetricValue {
                metric,
                value,
                reason,
            } => write!(f, "invalid value {value} for {metric}: {reason}"),
            CoreError::InconsistentThreshold {
                use_case,
                metric,
                reason,
            } => write!(
                f,
                "inconsistent threshold for {use_case}/{metric}: {reason}"
            ),
            CoreError::InvalidConfig(why) => write!(f, "invalid IQB configuration: {why}"),
            CoreError::NothingToScore => write!(
                f,
                "no (use case, requirement, dataset) cell could be evaluated from the input"
            ),
            CoreError::UnknownUseCase(u) => write!(f, "use case {u} is not in the configuration"),
            CoreError::UnknownDataset(d) => write!(f, "dataset {d} is not in the configuration"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_details() {
        let e = CoreError::InvalidWeight(9);
        assert!(e.to_string().contains('9'));
        let e = CoreError::UnknownUseCase(UseCase::Gaming);
        assert!(e.to_string().to_lowercase().contains("gaming"));
        let e = CoreError::UnknownDataset(DatasetId::Ookla);
        assert!(e.to_string().to_lowercase().contains("ookla"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
