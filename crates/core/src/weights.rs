//! Importance weights — the paper's Table 1 plus the two other weight
//! families of the score formula.
//!
//! The IQB score uses three families of integer weights in `0..=5`:
//!
//! * `w_{u,r}` — how much requirement `r` matters for use case `u`
//!   (published in Table 1, elicited from experts; encoded in
//!   [`WeightTable::paper_table1`]).
//! * `w_u` — how much use case `u` contributes to the composite. The poster
//!   defines the symbol but publishes no values; the default is equal
//!   weight.
//! * `w_{u,r,d}` — how much dataset `d` is trusted for requirement `r`
//!   under use case `u`. Also unpublished; the default is equal weight per
//!   dataset (uniform corroboration).
//!
//! All three normalize to `w' ∈ [0, 1]` by dividing by their family sum —
//! [`normalize`] implements that and is shared by every tier of the score.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::dataset::DatasetId;
use crate::error::CoreError;
use crate::metric::Metric;
use crate::usecase::UseCase;

/// An integer importance weight in the paper's `0..=5` range.
///
/// A weight of 0 removes its term from the weighted average entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "u32", into = "u32")]
pub struct Weight(u8);

impl Weight {
    /// The maximum weight the paper allows.
    pub const MAX: Weight = Weight(5);
    /// Zero weight: excludes the term.
    pub const ZERO: Weight = Weight(0);

    /// Creates a weight, rejecting values above 5.
    pub fn new(value: u32) -> Result<Self, CoreError> {
        if value > 5 {
            return Err(CoreError::InvalidWeight(value));
        }
        Ok(Weight(value as u8))
    }

    /// The raw integer value.
    pub fn get(&self) -> u8 {
        self.0
    }

    /// The weight as a float, for normalization arithmetic.
    pub fn as_f64(&self) -> f64 {
        f64::from(self.0)
    }
}

impl TryFrom<u32> for Weight {
    type Error = CoreError;
    fn try_from(value: u32) -> Result<Self, Self::Error> {
        Weight::new(value)
    }
}

impl From<Weight> for u32 {
    fn from(w: Weight) -> u32 {
        u32::from(w.0)
    }
}

impl std::fmt::Display for Weight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Normalizes a slice of weights to `w'_i = w_i / Σ w` (paper §3).
///
/// Returns `None` when the weights sum to zero — the caller must then
/// exclude the whole family from the average (an all-zero family carries no
/// information).
pub fn normalize(weights: &[Weight]) -> Option<Vec<f64>> {
    let sum: f64 = weights.iter().map(Weight::as_f64).sum();
    if sum == 0.0 {
        return None;
    }
    Some(weights.iter().map(|w| w.as_f64() / sum).collect())
}

/// The requirement-weight table `w_{u,r}`: `(use case, metric) → weight`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WeightTable {
    rows: BTreeMap<UseCase, BTreeMap<Metric, Weight>>,
}

impl WeightTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's Table 1, verbatim.
    ///
    /// | Use case           | Down | Up | Latency | Loss |
    /// |--------------------|------|----|---------|------|
    /// | Web Browsing       | 3    | 2  | 4       | 4    |
    /// | Video Streaming    | 4    | 2  | 4       | 4    |
    /// | Audio Streaming    | 4    | 1  | 3       | 4    |
    /// | Video Conferencing | 4    | 4  | 4       | 4    |
    /// | Online Backup      | 4    | 4  | 2       | 4    |
    /// | Gaming             | 4    | 4  | 5       | 4    |
    pub fn paper_table1() -> Self {
        let mut t = Self::new();
        let rows: [(UseCase, [u32; 4]); 6] = [
            (UseCase::WebBrowsing, [3, 2, 4, 4]),
            (UseCase::VideoStreaming, [4, 2, 4, 4]),
            (UseCase::AudioStreaming, [4, 1, 3, 4]),
            (UseCase::VideoConferencing, [4, 4, 4, 4]),
            (UseCase::OnlineBackup, [4, 4, 2, 4]),
            (UseCase::Gaming, [4, 4, 5, 4]),
        ];
        for (use_case, ws) in rows {
            for (metric, w) in Metric::ALL.into_iter().zip(ws) {
                // lint: allow(panic) the table above only holds weights in 0..=5
                let weight = Weight::new(w).expect("paper weights are 0..=5");
                t.set(use_case.clone(), metric, weight);
            }
        }
        t
    }

    /// Sets the weight for a (use case, metric) cell.
    pub fn set(&mut self, use_case: UseCase, metric: Metric, weight: Weight) {
        self.rows
            .entry(use_case)
            .or_default()
            .insert(metric, weight);
    }

    /// Looks up the weight for a (use case, metric) cell.
    pub fn get(&self, use_case: &UseCase, metric: Metric) -> Option<Weight> {
        self.rows
            .get(use_case)
            .and_then(|r| r.get(&metric))
            .copied()
    }

    /// The use cases with at least one weight row.
    pub fn use_cases(&self) -> impl Iterator<Item = &UseCase> {
        self.rows.keys()
    }

    /// Validates that every row has at least one positive weight (a use
    /// case whose requirements all weigh zero can never be scored).
    pub fn validate(&self) -> Result<(), CoreError> {
        for (use_case, row) in &self.rows {
            if row.values().all(|w| *w == Weight::ZERO) {
                return Err(CoreError::InvalidConfig(format!(
                    "all requirement weights for {use_case} are zero"
                )));
            }
        }
        Ok(())
    }
}

/// Dataset weights `w_{u,r,d}` with a uniform default.
///
/// The poster defines the symbol but publishes no values, so the default
/// weight for every (use case, requirement, dataset) triple is 1 (uniform
/// corroboration). Individual triples can be overridden — e.g. down-weight
/// Ookla for latency because its open data reports idle rather than loaded
/// latency.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DatasetWeights {
    /// Serialized as an entry list because JSON map keys must be strings.
    #[serde(with = "overrides_serde")]
    overrides: BTreeMap<(UseCase, Metric, DatasetId), Weight>,
}

/// Serde adapter for the tuple-keyed override map.
mod overrides_serde {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        overrides: &BTreeMap<(UseCase, Metric, DatasetId), Weight>,
        serializer: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&UseCase, &Metric, &DatasetId, &Weight)> = overrides
            .iter()
            .map(|((u, m, d), w)| (u, m, d, w))
            .collect();
        serde::Serialize::serialize(&entries, serializer)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> Result<BTreeMap<(UseCase, Metric, DatasetId), Weight>, D::Error> {
        let entries: Vec<(UseCase, Metric, DatasetId, Weight)> =
            serde::Deserialize::deserialize(deserializer)?;
        Ok(entries
            .into_iter()
            .map(|(u, m, d, w)| ((u, m, d), w))
            .collect())
    }
}

impl DatasetWeights {
    /// Creates the uniform default (every triple weighs 1).
    pub fn uniform() -> Self {
        Self::default()
    }

    /// Overrides the weight for one (use case, requirement, dataset) triple.
    pub fn set(&mut self, use_case: UseCase, metric: Metric, dataset: DatasetId, weight: Weight) {
        self.overrides.insert((use_case, metric, dataset), weight);
    }

    /// The weight for a triple (1 unless overridden).
    pub fn get(&self, use_case: &UseCase, metric: Metric, dataset: &DatasetId) -> Weight {
        self.overrides
            .get(&(use_case.clone(), metric, dataset.clone()))
            .copied()
            .unwrap_or(Weight(1))
    }

    /// Number of explicit overrides.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }
}

/// Use-case weights `w_u` with an equal-weight default.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UseCaseWeights {
    overrides: BTreeMap<UseCase, Weight>,
}

impl UseCaseWeights {
    /// Creates the equal-weight default (every use case weighs 1).
    pub fn uniform() -> Self {
        Self::default()
    }

    /// Overrides the weight of one use case.
    pub fn set(&mut self, use_case: UseCase, weight: Weight) {
        self.overrides.insert(use_case, weight);
    }

    /// The weight of a use case (1 unless overridden).
    pub fn get(&self, use_case: &UseCase) -> Weight {
        self.overrides.get(use_case).copied().unwrap_or(Weight(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_range_enforced() {
        assert!(Weight::new(0).is_ok());
        assert!(Weight::new(5).is_ok());
        assert_eq!(Weight::new(6), Err(CoreError::InvalidWeight(6)));
        assert_eq!(Weight::new(100), Err(CoreError::InvalidWeight(100)));
    }

    #[test]
    fn normalize_sums_to_one() {
        let ws = [
            Weight::new(3).unwrap(),
            Weight::new(2).unwrap(),
            Weight::new(5).unwrap(),
        ];
        let n = normalize(&ws).unwrap();
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((n[0] - 0.3).abs() < 1e-12);
        assert!((n[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_all_zero_is_none() {
        assert_eq!(normalize(&[Weight::ZERO, Weight::ZERO]), None);
        assert_eq!(normalize(&[]), None);
    }

    #[test]
    fn normalize_zero_weight_excludes_term() {
        let ws = [Weight::ZERO, Weight::new(4).unwrap()];
        let n = normalize(&ws).unwrap();
        assert_eq!(n[0], 0.0);
        assert_eq!(n[1], 1.0);
    }

    #[test]
    fn paper_table1_values() {
        let t = WeightTable::paper_table1();
        let cases: [(UseCase, [u8; 4]); 6] = [
            (UseCase::WebBrowsing, [3, 2, 4, 4]),
            (UseCase::VideoStreaming, [4, 2, 4, 4]),
            (UseCase::AudioStreaming, [4, 1, 3, 4]),
            (UseCase::VideoConferencing, [4, 4, 4, 4]),
            (UseCase::OnlineBackup, [4, 4, 2, 4]),
            (UseCase::Gaming, [4, 4, 5, 4]),
        ];
        for (u, expected) in cases {
            for (m, e) in Metric::ALL.into_iter().zip(expected) {
                assert_eq!(t.get(&u, m).unwrap().get(), e, "weight mismatch at {u}/{m}");
            }
        }
    }

    #[test]
    fn paper_table1_validates() {
        WeightTable::paper_table1().validate().unwrap();
    }

    #[test]
    fn all_zero_row_rejected() {
        let mut t = WeightTable::new();
        for m in Metric::ALL {
            t.set(UseCase::Gaming, m, Weight::ZERO);
        }
        assert!(t.validate().is_err());
    }

    #[test]
    fn gaming_latency_is_the_only_five() {
        // The single 5 in Table 1 is gaming/latency — the paper's example of
        // "the differing importance of throughput and latency".
        let t = WeightTable::paper_table1();
        let mut fives = Vec::new();
        for u in UseCase::BUILTIN {
            for m in Metric::ALL {
                if t.get(&u, m).unwrap().get() == 5 {
                    fives.push((u.clone(), m));
                }
            }
        }
        assert_eq!(fives, vec![(UseCase::Gaming, Metric::Latency)]);
    }

    #[test]
    fn dataset_weights_default_uniform() {
        let w = DatasetWeights::uniform();
        assert_eq!(
            w.get(&UseCase::Gaming, Metric::Latency, &DatasetId::Ndt)
                .get(),
            1
        );
        assert_eq!(w.override_count(), 0);
    }

    #[test]
    fn dataset_weight_override() {
        let mut w = DatasetWeights::uniform();
        w.set(
            UseCase::Gaming,
            Metric::Latency,
            DatasetId::Ookla,
            Weight::ZERO,
        );
        assert_eq!(
            w.get(&UseCase::Gaming, Metric::Latency, &DatasetId::Ookla),
            Weight::ZERO
        );
        // Other triples untouched.
        assert_eq!(
            w.get(&UseCase::Gaming, Metric::Latency, &DatasetId::Ndt)
                .get(),
            1
        );
    }

    #[test]
    fn use_case_weights_default_uniform() {
        let w = UseCaseWeights::uniform();
        for u in UseCase::BUILTIN {
            assert_eq!(w.get(&u).get(), 1);
        }
    }

    #[test]
    fn weight_display() {
        assert_eq!(Weight::new(4).unwrap().to_string(), "4");
    }
}
