//! Equivalence suite for the streaming aggregation backends.
//!
//! Three contracts, checked on synthesized measurement campaigns:
//!
//! 1. **Approximation tolerance** — the t-digest and P² backends must
//!    land within a documented tolerance of the exact backend's
//!    per-cell quantiles (2 % of each cell's observed value range at
//!    1 500 tests per dataset).
//! 2. **Grade agreement** — after scoring, all three backends must
//!    agree on every region's letter grade: the approximation must not
//!    move a region across a grade band on realistic data volumes.
//! 3. **Incremental ≡ batch** (proptest) — `ScoringSession::ingest` +
//!    `rescore` with the exact backend must equal a from-scratch batch
//!    run over the same records, bit for bit, for arbitrary record
//!    streams and batch splits.

use iqb::core::IqbConfig;
use iqb::data::aggregate::{aggregate_region, AggregationSpec, AggregatorBackend};
use iqb::data::record::{RegionId, TestRecord};
use iqb::data::store::{MeasurementStore, QueryFilter};
use iqb::pipeline::runner::score_all_regions;
use iqb::pipeline::session::ScoringSession;
use iqb::synth::campaign::{run_campaign, CampaignConfig};
use iqb::synth::region::RegionSpec;
use proptest::prelude::*;

const SEED: u64 = 0xA66B;

fn fleet_store(tests_per_dataset: u64) -> MeasurementStore {
    let regions = vec![
        RegionSpec::urban_fiber("urban-fiber", 60),
        RegionSpec::suburban_cable("suburban-cable", 60),
        RegionSpec::rural_dsl("rural-dsl", 60),
        RegionSpec::mobile_first("mobile-first", 60),
    ];
    let mut store = MeasurementStore::new();
    for region in &regions {
        let output = run_campaign(
            region,
            &CampaignConfig {
                tests_per_dataset,
                seed: SEED,
                ..Default::default()
            },
        )
        .expect("campaign runs");
        store.extend(output.records).expect("valid records");
    }
    store
}

/// Tolerance contract: at n = 1 500 per dataset, each streaming cell is
/// within 2 % of that metric column's observed value range of the exact
/// p95. (Both estimators' published error bounds are far tighter at the
/// tails; 2 % of range keeps the test robust to distribution shape.)
#[test]
fn streaming_quantiles_within_documented_tolerance() {
    let store = fleet_store(1_500);
    let config = IqbConfig::paper_default();
    let exact_spec = AggregationSpec::paper_default();
    for backend in [AggregatorBackend::tdigest_default(), AggregatorBackend::P2] {
        let spec = AggregationSpec::paper_default().with_backend(backend);
        for region in store.regions() {
            let exact =
                aggregate_region(&store, &region, &config.datasets, &exact_spec).unwrap();
            let approx = aggregate_region(&store, &region, &config.datasets, &spec).unwrap();
            assert_eq!(exact.len(), approx.len(), "{backend}/{region}: cell sets differ");
            for ((dataset, metric), cell) in exact.iter() {
                let filter = QueryFilter::all()
                    .region(region.clone())
                    .dataset(dataset.clone());
                let column = store.metric_column(&filter, *metric);
                let (lo, hi) = column
                    .iter()
                    .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                        (lo.min(v), hi.max(v))
                    });
                let tolerance = 0.02 * (hi - lo).max(f64::EPSILON);
                let a = approx.get(dataset, *metric).unwrap();
                assert!(
                    (a - cell.value).abs() <= tolerance,
                    "{backend}/{region}/{dataset}/{metric}: {a} vs exact {} (tol {tolerance})",
                    cell.value
                );
            }
        }
    }
}

/// Grade agreement: the letter grade (Nutri-Score-style) every region
/// earns must be identical under all three backends.
#[test]
fn all_backends_agree_on_letter_grades() {
    let store = fleet_store(1_500);
    let config = IqbConfig::paper_default();
    let exact = score_all_regions(
        &store,
        &config,
        &AggregationSpec::paper_default(),
        &QueryFilter::all(),
    )
    .unwrap();
    for backend in [AggregatorBackend::tdigest_default(), AggregatorBackend::P2] {
        let spec = AggregationSpec::paper_default().with_backend(backend);
        let report = score_all_regions(&store, &config, &spec, &QueryFilter::all()).unwrap();
        assert_eq!(report.regions.len(), exact.regions.len());
        for (region, scored) in &exact.regions {
            let approx = &report.regions[region];
            assert_eq!(
                approx.grade, scored.grade,
                "{backend}/{region}: grade {} vs exact {} (scores {} vs {})",
                approx.grade, scored.grade, approx.report.score, scored.report.score
            );
        }
    }
}

/// Provenance carries the backend tag through to the scored cells.
#[test]
fn provenance_records_the_selected_backend() {
    let store = fleet_store(200);
    let config = IqbConfig::paper_default();
    for backend in [
        AggregatorBackend::Exact,
        AggregatorBackend::tdigest_default(),
        AggregatorBackend::P2,
    ] {
        let spec = AggregationSpec::paper_default().with_backend(backend);
        let report = score_all_regions(&store, &config, &spec, &QueryFilter::all()).unwrap();
        for scored in report.regions.values() {
            for (_, cell) in scored.input.iter() {
                assert_eq!(cell.provenance.unwrap().backend, backend.provenance());
            }
        }
    }
}

const PROP_REGIONS: [&str; 4] = ["r0", "r1", "r2", "r3"];

/// One arbitrary, physically plausible test record.
fn arb_record() -> impl Strategy<Value = TestRecord> {
    (
        0..PROP_REGIONS.len(),
        0..iqb::core::DatasetId::BUILTIN.len(),
        1.0..500.0f64,
        1.0..100.0f64,
        1.0..200.0f64,
        proptest::option::of(0.0..5.0f64),
        0..1_000u64,
    )
        .prop_map(|(r, d, down, up, latency, loss, ts)| TestRecord {
            timestamp: ts,
            region: RegionId::new(PROP_REGIONS[r]).unwrap(),
            dataset: iqb::core::DatasetId::BUILTIN[d].clone(),
            download_mbps: down,
            upload_mbps: up,
            latency_ms: latency,
            loss_pct: loss,
            tech: None,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With the exact backend, ingesting arbitrary record streams in
    /// arbitrary batch splits (rescoring after each batch) produces a
    /// report identical to one from-scratch batch run.
    #[test]
    fn session_ingest_rescore_equals_batch(
        records in proptest::collection::vec(arb_record(), 1..150),
        split in 1..8usize,
    ) {
        let config = IqbConfig::paper_default();
        let spec = AggregationSpec::paper_default();
        let mut session = ScoringSession::new(config.clone(), spec.clone()).unwrap();
        let chunk = records.len().div_ceil(split).max(1);
        for batch in records.chunks(chunk) {
            session.ingest(batch.iter().cloned()).unwrap();
            session.rescore().unwrap();
        }
        let mut store = MeasurementStore::new();
        store.extend(records.iter().cloned()).unwrap();
        let full = score_all_regions(&store, &config, &spec, &QueryFilter::all()).unwrap();
        prop_assert_eq!(session.report(), &full);
    }
}
