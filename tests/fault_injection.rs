//! Adversarial fault-injection suite for the ingest→score path.
//!
//! Every scenario runs the same corrupted input through both ingest
//! modes and asserts the dual contract from both sides:
//!
//! * **lenient** — the run completes, the clean records survive, and the
//!   `QuarantineReport` accounts for every drop with the right
//!   [`FaultKind`];
//! * **strict** — the run aborts on the first fault (and completes with
//!   identical results when the input is clean).
//!
//! Corruption is produced by the reusable harness in `iqb::data::fault`:
//! byte/field [`Mutation`]s for flat-file fixtures and the
//! [`ChaosSource`] proxy for source-level failures (errors, panics,
//! value corruption, transient faults recovered by retry).

use iqb::core::dataset::DatasetId;
use iqb::core::metric::Metric;
use iqb::core::IqbConfig;
use iqb::data::aggregate::AggregationSpec;
use iqb::data::csv_io::read_csv_mode;
use iqb::data::fault::{mutate, ChaosMode, ChaosSource, Mutation};
use iqb::data::jsonl::{read_jsonl_mode, write_jsonl};
use iqb::data::quarantine::{FaultKind, IngestMode, RetryPolicy};
use iqb::data::record::{RegionId, TestRecord};
use iqb::data::source::{DataSource, PerTestSource};
use iqb::data::store::{MeasurementStore, QueryFilter};
use iqb::pipeline::runner::{score_sources, ScoredSources, SourceRunOptions};
use iqb::pipeline::PipelineError;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Flat-file scenarios (CSV + JSONL), table-driven.
// ---------------------------------------------------------------------------

const ROWS: usize = 10;

/// A clean 10-row CSV fixture: header on line 1, data on lines 2–11.
fn clean_csv() -> Vec<u8> {
    let mut out = String::from(
        "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n",
    );
    for i in 0..ROWS {
        out.push_str(&format!(
            "{},metro,ndt,{}.0,20.0,25.0,0.1,cable\n",
            i * 60,
            90 + i
        ));
    }
    out.into_bytes()
}

struct Scenario {
    name: &'static str,
    mutations: Vec<Mutation>,
    /// Records expected to survive lenient ingest.
    expect_kept: usize,
    /// Expected (kind, count) quarantine tally; empty means clean input.
    expect_faults: Vec<(FaultKind, u64)>,
}

fn csv_scenarios() -> Vec<Scenario> {
    let base = clean_csv();
    let header_end = base.iter().position(|&b| b == b'\n').unwrap() + 1;
    // Start of the last data row: the byte after the second-to-last
    // newline (the fixture ends with one).
    let last_row_start = base[..base.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .unwrap()
        + 1;
    let field = |line, column, value: &str| Mutation::ReplaceField {
        line,
        column,
        value: value.to_string(),
    };
    vec![
        Scenario {
            name: "control: untouched fixture is clean",
            mutations: vec![],
            expect_kept: ROWS,
            expect_faults: vec![],
        },
        Scenario {
            name: "file truncated mid-row",
            // Cut 14 bytes into the last row: too few fields to parse.
            mutations: vec![Mutation::TruncateAt(last_row_start + 14)],
            expect_kept: ROWS - 1,
            expect_faults: vec![(FaultKind::Parse, 1)],
        },
        Scenario {
            // The whole line becomes one field of garbage bytes, so the
            // structural (column-count) check trips before the encoding
            // one; a field-level encoding fault is exercised separately
            // in `csv_invalid_utf8_field_is_an_encoding_fault`.
            name: "whole line replaced by garbage UTF-8",
            mutations: vec![Mutation::GarbageUtf8Line(5)],
            expect_kept: ROWS - 1,
            expect_faults: vec![(FaultKind::Parse, 1)],
        },
        Scenario {
            name: "NaN download",
            mutations: vec![field(3, 4, "NaN")],
            expect_kept: ROWS - 1,
            expect_faults: vec![(FaultKind::InvalidValue, 1)],
        },
        Scenario {
            name: "infinite latency",
            mutations: vec![field(4, 6, "inf")],
            expect_kept: ROWS - 1,
            expect_faults: vec![(FaultKind::InvalidValue, 1)],
        },
        Scenario {
            name: "negative throughput",
            mutations: vec![field(5, 4, "-50.0")],
            expect_kept: ROWS - 1,
            expect_faults: vec![(FaultKind::InvalidValue, 1)],
        },
        Scenario {
            name: "packet loss above 100%",
            mutations: vec![field(6, 7, "150.0")],
            expect_kept: ROWS - 1,
            expect_faults: vec![(FaultKind::InvalidValue, 1)],
        },
        Scenario {
            name: "empty region id",
            mutations: vec![field(7, 2, "")],
            expect_kept: ROWS - 1,
            expect_faults: vec![(FaultKind::InvalidRegion, 1)],
        },
        Scenario {
            name: "empty dataset token",
            mutations: vec![field(8, 3, "")],
            expect_kept: ROWS - 1,
            expect_faults: vec![(FaultKind::UnknownDataset, 1)],
        },
        Scenario {
            name: "non-numeric garbage in a numeric column",
            mutations: vec![field(9, 4, "banana")],
            expect_kept: ROWS - 1,
            expect_faults: vec![(FaultKind::Parse, 1)],
        },
        Scenario {
            name: "appended non-record garbage line",
            mutations: vec![Mutation::AppendGarbageLine],
            expect_kept: ROWS,
            expect_faults: vec![(FaultKind::Parse, 1)],
        },
        Scenario {
            name: "duplicated lines are valid records, not faults",
            mutations: vec![Mutation::DuplicateLine { line: 4, copies: 3 }],
            expect_kept: ROWS + 3,
            expect_faults: vec![],
        },
        Scenario {
            name: "deleted line shrinks the batch cleanly",
            mutations: vec![Mutation::DeleteLine(6)],
            expect_kept: ROWS - 1,
            expect_faults: vec![],
        },
        Scenario {
            name: "header-only file is empty, not faulty",
            mutations: vec![Mutation::TruncateAt(header_end)],
            expect_kept: 0,
            expect_faults: vec![],
        },
        Scenario {
            name: "compound corruption: every drop accounted for",
            mutations: vec![
                field(3, 4, "NaN"),
                field(5, 2, ""),
                Mutation::GarbageUtf8Line(8),
                Mutation::AppendGarbageLine,
            ],
            expect_kept: ROWS - 3,
            expect_faults: vec![
                (FaultKind::Parse, 2),
                (FaultKind::InvalidValue, 1),
                (FaultKind::InvalidRegion, 1),
            ],
        },
    ]
}

#[test]
fn csv_fault_scenarios_lenient_and_strict() {
    for scenario in csv_scenarios() {
        let mut bytes = clean_csv();
        for mutation in &scenario.mutations {
            bytes = mutate(&bytes, mutation);
        }
        let total_faults: u64 = scenario.expect_faults.iter().map(|(_, n)| n).sum();

        // Lenient: completes, keeps the clean rows, accounts for every drop.
        let (records, report) = read_csv_mode(bytes.as_slice(), IngestMode::Lenient)
            .unwrap_or_else(|e| panic!("[{}] lenient ingest aborted: {e}", scenario.name));
        assert_eq!(records.len(), scenario.expect_kept, "[{}] kept", scenario.name);
        assert_eq!(report.kept as usize, scenario.expect_kept, "[{}]", scenario.name);
        assert_eq!(report.quarantined(), total_faults, "[{}]", scenario.name);
        assert_eq!(
            report.scanned,
            report.kept + report.quarantined(),
            "[{}] every scanned row is kept or accounted for",
            scenario.name
        );
        for (kind, count) in &scenario.expect_faults {
            assert_eq!(
                report.count(*kind),
                *count,
                "[{}] count for {kind}",
                scenario.name
            );
        }

        // Strict: aborts iff the input has a fault; identical otherwise.
        let strict = read_csv_mode(bytes.as_slice(), IngestMode::Strict);
        if total_faults == 0 {
            let (strict_records, strict_report) =
                strict.unwrap_or_else(|e| panic!("[{}] strict: {e}", scenario.name));
            assert_eq!(strict_records, records, "[{}]", scenario.name);
            assert!(strict_report.is_clean(), "[{}]", scenario.name);
        } else {
            assert!(strict.is_err(), "[{}] strict must abort", scenario.name);
        }
    }
}

#[test]
fn csv_invalid_utf8_field_is_an_encoding_fault() {
    // Eight well-formed fields with invalid bytes inside one of them:
    // the record is structurally fine, so the encoding check is what
    // trips (unlike a whole-line replacement, which breaks the column
    // count first).
    let mut bytes = clean_csv();
    bytes.extend_from_slice(b"600,metro,ndt,95.0,20.0,25.0,0.1,ca");
    bytes.extend_from_slice(&[0xFF, 0xFE]);
    bytes.push(b'\n');

    let (records, report) = read_csv_mode(bytes.as_slice(), IngestMode::Lenient).unwrap();
    assert_eq!(records.len(), ROWS);
    assert_eq!(report.count(FaultKind::Encoding), 1);
    assert!(read_csv_mode(bytes.as_slice(), IngestMode::Strict).is_err());
}

fn jsonl_record(region: &str, i: u64) -> TestRecord {
    TestRecord {
        timestamp: i,
        region: RegionId::new(region).unwrap(),
        dataset: DatasetId::Cloudflare,
        download_mbps: 50.0 + i as f64,
        upload_mbps: 10.0,
        latency_ms: 30.0,
        loss_pct: Some(0.2),
        tech: None,
    }
}

#[test]
fn jsonl_fault_scenarios_lenient_and_strict() {
    let clean: Vec<TestRecord> = (0..6).map(|i| jsonl_record("metro", i)).collect();
    let mut buf = Vec::new();
    write_jsonl(&mut buf, &clean).unwrap();

    // Blank lines are not faults.
    let mut blanky = b"\n".to_vec();
    blanky.extend_from_slice(&buf);
    blanky.extend_from_slice(b"\n\n");
    let (records, report) = read_jsonl_mode(blanky.as_slice(), IngestMode::Lenient).unwrap();
    assert_eq!(records, clean);
    assert!(report.is_clean());

    // Garbage JSON line: Parse fault carrying the line number.
    let garbage = mutate(&buf, &Mutation::AppendGarbageLine);
    let (records, report) = read_jsonl_mode(garbage.as_slice(), IngestMode::Lenient).unwrap();
    assert_eq!(records.len(), 6);
    assert_eq!(report.count(FaultKind::Parse), 1);
    assert_eq!(report.exemplars[0].line, Some(7));
    assert!(read_jsonl_mode(garbage.as_slice(), IngestMode::Strict).is_err());

    // Invalid UTF-8 line: Encoding fault, stream keeps going.
    let corrupt = mutate(&buf, &Mutation::GarbageUtf8Line(2));
    let (records, report) = read_jsonl_mode(corrupt.as_slice(), IngestMode::Lenient).unwrap();
    assert_eq!(records.len(), 5);
    assert_eq!(report.count(FaultKind::Encoding), 1);
    assert!(read_jsonl_mode(corrupt.as_slice(), IngestMode::Strict).is_err());

    // Out-of-domain value that parses fine: InvalidValue fault.
    let mut poisoned = jsonl_record("metro", 99);
    poisoned.loss_pct = Some(150.0);
    let mut with_poison = buf.clone();
    with_poison.extend_from_slice(serde_json::to_string(&poisoned).unwrap().as_bytes());
    with_poison.push(b'\n');
    let (records, report) = read_jsonl_mode(with_poison.as_slice(), IngestMode::Lenient).unwrap();
    assert_eq!(records.len(), 6);
    assert_eq!(report.count(FaultKind::InvalidValue), 1);
    assert!(read_jsonl_mode(with_poison.as_slice(), IngestMode::Strict).is_err());
}

// ---------------------------------------------------------------------------
// Source-level scenarios: ChaosSource behind the pipeline's isolation
// boundary, end-to-end through score_sources.
// ---------------------------------------------------------------------------

fn two_region_store() -> Arc<MeasurementStore> {
    let mut store = MeasurementStore::new();
    for (k, region) in ["east", "west"].iter().enumerate() {
        let region = RegionId::new(*region).unwrap();
        for dataset in DatasetId::BUILTIN {
            for i in 0..25u64 {
                store
                    .push(TestRecord {
                        timestamp: i,
                        region: region.clone(),
                        dataset: dataset.clone(),
                        download_mbps: 60.0 * (k + 1) as f64 + i as f64,
                        upload_mbps: 15.0 * (k + 1) as f64,
                        latency_ms: 80.0 / (k + 1) as f64,
                        loss_pct: if dataset == DatasetId::Ookla {
                            None
                        } else {
                            Some(0.4)
                        },
                        tech: None,
                    })
                    .unwrap();
            }
        }
    }
    Arc::new(store)
}

fn run_sources(
    sources: Vec<Box<dyn DataSource>>,
    options: &SourceRunOptions,
) -> Result<ScoredSources, PipelineError> {
    score_sources(
        &sources,
        &IqbConfig::paper_default(),
        &AggregationSpec::paper_default(),
        &QueryFilter::all(),
        options,
    )
}

fn builtin_sources(store: &Arc<MeasurementStore>) -> Vec<Box<dyn DataSource>> {
    DatasetId::BUILTIN
        .into_iter()
        .map(|d| Box::new(PerTestSource::new(Arc::clone(store), d)) as Box<dyn DataSource>)
        .collect()
}

#[test]
fn panicking_source_is_isolated_in_lenient_mode() {
    let store = two_region_store();
    let build = || {
        let mut sources = builtin_sources(&store);
        sources.push(Box::new(ChaosSource::new(
            PerTestSource::new(Arc::clone(&store), DatasetId::Custom("flaky".into())),
            ChaosMode::Panic,
        )) as Box<dyn DataSource>);
        sources
    };

    let scored = run_sources(build(), &SourceRunOptions::lenient()).unwrap();
    assert_eq!(scored.report.regions.len(), 2, "run completed");
    assert_eq!(scored.quality.incidents.len(), 2);
    assert!(scored
        .quality
        .incidents
        .iter()
        .all(|i| i.kind == FaultKind::SourcePanic));
    for score in scored.report.regions.values() {
        assert_eq!(score.report.degraded_datasets, vec!["flaky".to_string()]);
    }

    // Strict: the same fleet aborts with the precise panic error.
    let err = run_sources(build(), &SourceRunOptions::default()).unwrap_err();
    assert!(err.to_string().contains("panicked"), "{err}");
}

#[test]
fn erroring_source_degrades_without_poisoning_scores() {
    let store = two_region_store();
    let healthy = run_sources(builtin_sources(&store), &SourceRunOptions::lenient()).unwrap();
    assert!(healthy.quality.is_clean());

    let mut sources = builtin_sources(&store);
    sources.push(Box::new(ChaosSource::new(
        PerTestSource::new(Arc::clone(&store), DatasetId::Custom("down".into())),
        ChaosMode::ErrorAlways,
    )) as Box<dyn DataSource>);
    let degraded = run_sources(sources, &SourceRunOptions::lenient()).unwrap();

    // The three healthy datasets still produce exactly the same scores.
    for (region, score) in &healthy.report.regions {
        assert_eq!(
            score.report.score,
            degraded.report.regions[region].report.score,
            "healthy datasets' contribution unchanged for {region}"
        );
    }
    assert_eq!(degraded.quality.degraded_datasets(), vec!["down".to_string()]);
}

#[test]
fn value_corrupting_source_is_quarantined_not_scored() {
    let store = two_region_store();
    let mut sources = builtin_sources(&store);
    sources.push(Box::new(ChaosSource::new(
        PerTestSource::new(Arc::clone(&store), DatasetId::Ndt),
        ChaosMode::NegativeThroughput,
    )) as Box<dyn DataSource>);
    let scored = run_sources(sources, &SourceRunOptions::lenient()).unwrap();
    assert_eq!(scored.report.regions.len(), 2);
    assert!(scored
        .quality
        .incidents
        .iter()
        .all(|i| i.kind == FaultKind::InvalidValue));
    for score in scored.report.regions.values() {
        // The clean NDT source contributed before the corrupting proxy;
        // its cells survive and are finite.
        let down = score
            .input
            .get(&DatasetId::Ndt, Metric::DownloadThroughput)
            .unwrap();
        assert!(down.is_finite() && down > 0.0);
    }
}

#[test]
fn transient_source_failure_recovers_via_retry() {
    let store = two_region_store();
    // Two regions share the chaos call counter, so fail only the very
    // first call: one region retries once, everything else is clean.
    let sources: Vec<Box<dyn DataSource>> = vec![Box::new(ChaosSource::new(
        PerTestSource::new(Arc::clone(&store), DatasetId::Ndt),
        ChaosMode::ErrorFirstN(1),
    ))];
    let options = SourceRunOptions {
        mode: IngestMode::Lenient,
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 0,
        },
    };
    let scored = run_sources(sources, &options).unwrap();
    assert_eq!(scored.report.regions.len(), 2);
    assert!(scored.quality.incidents.is_empty());
    assert_eq!(scored.quality.retry_successes, 1);

    // Without retries the same fleet records an incident instead.
    let sources: Vec<Box<dyn DataSource>> = vec![Box::new(ChaosSource::new(
        PerTestSource::new(Arc::clone(&store), DatasetId::Ndt),
        ChaosMode::ErrorFirstN(1),
    ))];
    let no_retry = SourceRunOptions {
        mode: IngestMode::Lenient,
        retry: RetryPolicy::none(),
    };
    let scored = run_sources(sources, &no_retry).unwrap();
    assert_eq!(scored.quality.incidents.len(), 1);
    assert_eq!(scored.quality.retry_successes, 0);
}

#[test]
fn empty_source_is_absence_not_a_fault() {
    let store = two_region_store();
    let mut sources = builtin_sources(&store);
    sources.push(Box::new(ChaosSource::new(
        PerTestSource::new(Arc::clone(&store), DatasetId::Custom("dried-up".into())),
        ChaosMode::Empty,
    )) as Box<dyn DataSource>);
    let scored = run_sources(sources, &SourceRunOptions::lenient()).unwrap();
    assert!(scored.quality.is_clean(), "silence is not a fault");
    assert_eq!(scored.report.regions.len(), 2);
    for score in scored.report.regions.values() {
        assert!(score.report.degraded_datasets.is_empty());
        assert!(score
            .input
            .get(&DatasetId::Custom("dried-up".into()), Metric::Latency)
            .is_none());
    }
}

#[test]
fn all_sources_failing_still_completes_leniently() {
    let store = two_region_store();
    let sources: Vec<Box<dyn DataSource>> = vec![Box::new(ChaosSource::new(
        PerTestSource::new(Arc::clone(&store), DatasetId::Ndt),
        ChaosMode::ErrorAlways,
    ))];
    let scored = run_sources(sources, &SourceRunOptions::lenient()).unwrap();
    assert!(scored.report.regions.is_empty());
    assert_eq!(scored.report.skipped.len(), 2, "skipped, not failed");
    assert_eq!(scored.quality.incidents.len(), 2);
}
