//! Golden tests pinning the regenerated paper exhibits (E1–E3) to the
//! poster's published values. If a default threshold or weight drifts,
//! these fail.

use iqb::core::metric::Metric;
use iqb::core::threshold::{QualityLevel, ThresholdSpec};
use iqb::core::usecase::UseCase;
use iqb::core::IqbConfig;
use iqb::pipeline::exhibits::{render_fig1, render_fig2, render_table1};

#[test]
fn fig2_exhibit_rows_match_paper() {
    let text = render_fig2(&IqbConfig::paper_default());
    // One golden line per use case, transcribed from the poster's Fig. 2
    // (cells joined in column order: down min/high, up min/high, latency
    // min/high, loss min/high).
    let expectations = [
        ("Web Browsing", vec!["10Mb/s", "100Mb/s", "10Mb/s", "Other", "100ms", "50ms", "1%", "0.5%"]),
        ("Video Streaming", vec!["25Mb/s", "50-100Mb/s", "10Mb/s", "10Mb/s", "100ms", "50ms", "1%", "0.1%"]),
        ("Video Conferencing", vec!["10Mb/s", "100Mb/s", "25Mb/s", "100Mb/s", "50ms", "20ms", "0.5%", "0.1%"]),
        ("Audio Streaming", vec!["10Mb/s", "50Mb/s", "10Mb/s", "50Mb/s", "100ms", "50ms", "1%", "0.1%"]),
        ("Online Backup", vec!["10Mb/s", "10Mb/s", "25Mb/s", "200Mb/s", "100ms", "100ms", "1%", "0.1%"]),
        ("Gaming", vec!["10Mb/s", "100Mb/s", "10Mb/s", "Other", "100ms", "50ms", "1%", "0.5%"]),
    ];
    for (use_case, cells) in expectations {
        let line = text
            .lines()
            .find(|l| l.starts_with(use_case))
            .unwrap_or_else(|| panic!("no row for {use_case}"));
        let got: Vec<&str> = line[use_case.len()..].split_whitespace().collect();
        assert_eq!(got, cells, "row mismatch for {use_case}");
    }
}

#[test]
fn table1_exhibit_rows_match_paper() {
    let text = render_table1(&IqbConfig::paper_default());
    let expectations = [
        ("Web Browsing", ["3", "2", "4", "4"]),
        ("Video Streaming", ["4", "2", "4", "4"]),
        ("Video Conferencing", ["4", "4", "4", "4"]),
        ("Audio Streaming", ["4", "1", "3", "4"]),
        ("Online Backup", ["4", "4", "2", "4"]),
        ("Gaming", ["4", "4", "5", "4"]),
    ];
    for (use_case, weights) in expectations {
        let line = text
            .lines()
            .find(|l| l.starts_with(use_case))
            .unwrap_or_else(|| panic!("no row for {use_case}"));
        let got: Vec<&str> = line[use_case.len()..].split_whitespace().collect();
        assert_eq!(got, weights, "weights mismatch for {use_case}");
    }
}

#[test]
fn fig1_lists_tier_membership() {
    let text = render_fig1(&IqbConfig::paper_default());
    // Tier 3: the six use cases in paper order.
    let tier3 = text.lines().find(|l| l.contains("USE CASES")).unwrap();
    let idx = |needle: &str| tier3.find(needle).unwrap();
    assert!(idx("Web Browsing") < idx("Video Streaming"));
    assert!(idx("Video Streaming") < idx("Gaming"));
    // Tier 1: the three datasets.
    let tier1 = text.lines().find(|l| l.contains("DATASETS")).unwrap();
    for d in ["M-Lab NDT", "Cloudflare", "Ookla"] {
        assert!(tier1.contains(d));
    }
}

#[test]
fn programmatic_defaults_match_exhibit_rendering() {
    // Exhibits render from the same structures the scorer evaluates; this
    // confirms a few cells through the programmatic API as well.
    let config = IqbConfig::paper_default();
    assert_eq!(
        config
            .thresholds
            .get(&UseCase::Gaming, Metric::Latency, QualityLevel::Minimum),
        Some(ThresholdSpec::Value(100.0))
    );
    assert_eq!(
        config
            .thresholds
            .get(&UseCase::OnlineBackup, Metric::UploadThroughput, QualityLevel::High),
        Some(ThresholdSpec::Value(200.0))
    );
    assert_eq!(
        config
            .requirement_weights
            .get(&UseCase::Gaming, Metric::Latency)
            .unwrap()
            .get(),
        5
    );
    assert_eq!(config.use_cases.len(), 6);
    assert_eq!(config.datasets.len(), 3);
}
