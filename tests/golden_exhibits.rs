//! Golden-exhibit regression tests.
//!
//! The committed `results/` files are the paper-reproduction contract:
//! strict-mode runs must keep them byte-identical. These tests re-render
//! the Fig. 1 / Fig. 2 / Table 1 exhibits from `IqbConfig::paper_default()`
//! and diff them row-for-row against the committed outputs (minus the
//! two-line run banner), so any drift in thresholds, weights, or
//! rendering is pinned to the exact row that changed.

use iqb::core::IqbConfig;
use iqb::pipeline::exhibits::{render_fig1, render_fig2, render_table1};

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()))
}

/// Strips the leading `=== ` banner lines and the blank line after them.
/// (Exhibit bodies contain pure-`=` rules, so only the `=== `-prefixed
/// banner lines are stripped.)
fn body(text: &str) -> Vec<&str> {
    let mut lines = text.lines().peekable();
    while lines.peek().map_or(false, |l| l.starts_with("=== ")) {
        lines.next();
    }
    if lines.peek().map_or(false, |l| l.trim().is_empty()) {
        lines.next();
    }
    lines.collect()
}

fn assert_rows_match(name: &str, rendered: &str, golden_text: &str) {
    let expected = body(golden_text);
    let actual: Vec<&str> = rendered.lines().collect();
    for (i, (a, e)) in actual.iter().zip(&expected).enumerate() {
        assert_eq!(a, e, "{name}: row {} drifted from results/", i + 1);
    }
    assert_eq!(
        actual.len(),
        expected.len(),
        "{name}: row count drifted from results/"
    );
}

#[test]
fn fig1_framework_matches_committed_results() {
    let rendered = render_fig1(&IqbConfig::paper_default());
    assert_rows_match("fig1", &rendered, &golden("fig1_framework.txt"));
}

#[test]
fn fig2_thresholds_match_committed_results() {
    let rendered = render_fig2(&IqbConfig::paper_default());
    assert_rows_match("fig2", &rendered, &golden("fig2_thresholds.txt"));
}

#[test]
fn table1_weights_match_committed_results() {
    let rendered = render_table1(&IqbConfig::paper_default());
    assert_rows_match("table1", &rendered, &golden("table1_weights.txt"));
}
