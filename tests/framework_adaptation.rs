//! Integration tests for the framework-adaptation surface the paper's §4
//! promises: named profiles, what-if planning, PowerBoost provisioning
//! and report comparison — all through the public facade.

use iqb::core::profiles;
use iqb::core::whatif::{evaluate_interventions, standard_interventions};
use iqb::core::{DatasetId, IqbConfig, Metric};
use iqb::data::aggregate::{aggregate_region, AggregationSpec};
use iqb::data::store::{MeasurementStore, QueryFilter};
use iqb::netsim::protocol::{CloudflareProtocol, NdtProtocol, SpeedTestProtocol};
use iqb::netsim::shaper::BoostSpec;
use iqb::pipeline::compare::compare;
use iqb::pipeline::runner::score_all_regions;
use iqb::synth::campaign::{run_campaign, CampaignConfig};
use iqb::synth::region::RegionSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cable_store(aqm: Option<iqb::netsim::aqm::AqmPolicy>) -> MeasurementStore {
    let region = RegionSpec::suburban_cable("suburbia", 80);
    let output = run_campaign(
        &region,
        &CampaignConfig {
            tests_per_dataset: 600,
            seed: 0xADA7,
            aqm,
            ..Default::default()
        },
    )
    .expect("campaign runs");
    let mut store = MeasurementStore::new();
    store.extend(output.records).expect("valid records");
    store
}

#[test]
fn every_profile_scores_the_same_store() {
    let store = cable_store(None);
    let spec = AggregationSpec::paper_default();
    let mut scores = std::collections::BTreeMap::new();
    for name in profiles::PROFILE_NAMES {
        let config = profiles::by_name(name).unwrap();
        let report = score_all_regions(&store, &config, &spec, &QueryFilter::all()).unwrap();
        scores.insert(name, report.regions.values().next().unwrap().report.score);
    }
    // Profiles must actually differ in their verdicts on real-shaped data.
    let distinct: std::collections::BTreeSet<u64> =
        scores.values().map(|s| s.to_bits()).collect();
    assert!(
        distinct.len() >= 3,
        "profiles too similar: {scores:?}"
    );
    assert!(scores["minimum-access"] > scores["paper-default"]);
}

#[test]
fn whatif_ranks_interventions_on_campaign_data() {
    let store = cable_store(None);
    let region = store.regions()[0].clone();
    let config = IqbConfig::paper_default();
    let input = aggregate_region(
        &store,
        &region,
        &config.datasets,
        &AggregationSpec::paper_default(),
    )
    .unwrap();
    let outcomes = evaluate_interventions(&config, &input, &standard_interventions()).unwrap();
    assert_eq!(outcomes.len(), 4);
    for o in &outcomes {
        assert!(o.gain() >= -1e-12);
        assert!((0.0..=1.0).contains(&o.improved));
    }
    // Sorted descending by gain.
    for pair in outcomes.windows(2) {
        assert!(pair[0].gain() >= pair[1].gain());
    }
}

#[test]
fn aqm_upgrade_improves_the_composite_comparison() {
    let before_store = cable_store(None);
    let after_store = cable_store(Some(iqb::netsim::aqm::AqmPolicy::codel_default()));
    let config = IqbConfig::paper_default();
    let spec = AggregationSpec::paper_default();
    let before = score_all_regions(&before_store, &config, &spec, &QueryFilter::all()).unwrap();
    let after = score_all_regions(&after_store, &config, &spec, &QueryFilter::all()).unwrap();
    let comparison = compare(&before, &after).unwrap();
    assert_eq!(comparison.deltas.len(), 1);
    assert!(
        comparison.deltas[0].delta() > 0.1,
        "AQM should lift the score substantially, got {:+.3}",
        comparison.deltas[0].delta()
    );
}

#[test]
fn powerboost_widens_the_cloudflare_ndt_gap() {
    // Boost inflates exactly the short-transfer methodology: the gap
    // between Cloudflare-style and NDT-style results widens, which the
    // corroboration tier then has to absorb.
    let plain = iqb::netsim::link::LinkSpec::cable(100.0, 10.0);
    let boosted = plain.with_boost(BoostSpec {
        factor: 2.0,
        burst_bytes: 5e7,
    });
    let mean = |link: &iqb::netsim::link::LinkSpec, seed: u64, cf: bool| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..40)
            .map(|_| {
                if cf {
                    CloudflareProtocol::default()
                        .run(link, 0.1, &mut rng)
                        .unwrap()
                        .download_mbps
                } else {
                    NdtProtocol::default()
                        .run(link, 0.1, &mut rng)
                        .unwrap()
                        .download_mbps
                }
            })
            .sum::<f64>()
            / 40.0
    };
    let gap_plain = mean(&plain, 1, true) / mean(&plain, 2, false);
    let gap_boosted = mean(&boosted, 3, true) / mean(&boosted, 4, false);
    assert!(
        gap_boosted > gap_plain * 1.2,
        "boost should widen the CF/NDT gap: {gap_boosted:.2} vs {gap_plain:.2}"
    );
}

#[test]
fn custom_dataset_flows_through_the_whole_stack() {
    // A custom dataset id survives synthesis (Cloudflare-style emulation),
    // CSV round trip, aggregation and scoring.
    let campus = DatasetId::Custom("campus-probes".into());
    let region = RegionSpec::urban_fiber("campus", 40);
    let output = run_campaign(
        &region,
        &CampaignConfig {
            tests_per_dataset: 200,
            datasets: vec![DatasetId::Ndt, campus.clone()],
            seed: 0xCA_11,
            ..Default::default()
        },
    )
    .unwrap();
    let mut buf = Vec::new();
    iqb::data::csv_io::write_csv(&mut buf, &output.records).unwrap();
    let store = iqb::data::csv_io::read_csv_into_store(buf.as_slice()).unwrap();

    let config = IqbConfig::builder()
        .datasets(vec![DatasetId::Ndt, campus.clone()])
        .build()
        .unwrap();
    let input = aggregate_region(
        &store,
        &region.id,
        &config.datasets,
        &AggregationSpec::paper_default(),
    )
    .unwrap();
    assert!(input.get(&campus, Metric::DownloadThroughput).is_some());
    let report = iqb::core::score_iqb(&config, &input).unwrap();
    assert!((0.0..=1.0).contains(&report.score));
}
