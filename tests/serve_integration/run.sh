#!/usr/bin/env bash
# End-to-end exercise of the `iqb serve` daemon over a real socket.
#
# Boots the daemon on a loopback ephemeral port, drives it with
# `iqb client` (submit fixture -> health -> score -> reload-config ->
# score -> shutdown), and fails on:
#
#   * any nonzero client/daemon exit,
#   * a mismatch between the count-deterministic response lines and the
#     committed golden.txt,
#   * any divergence between the daemon's published reports and batch
#     `iqb score` over the same fixture (the drained-equals-batch
#     contract, compared as canonicalized JSON).
#
# A second daemon then boots with 900 s event-time windows and runs
# submit -> window -> detect -> shutdown; the count-deterministic shape
# of those responses (window grid, sample ledgers, open/closed/late
# counts, detection dimensions — scores jq-normalized away) must match
# the committed golden_window.txt.
#
# A third daemon boots a *sliding* family (900 s wide, 300 s slide),
# which the windowed sessions score through pane aggregation, and runs
# submit -> window -> reload-config -> window -> window. The normalized
# responses must match golden_window_sliding.txt, and the metro window
# response must be identical before and after the reload — per-shard
# pane state survives a config swap (the registry replays each shard's
# retained store into the rebuilt pane sessions).
#
# The `metrics` response is intentionally absent from the goldens: its
# counter values depend on request history and are not byte-stable.
#
# Usage: tests/serve_integration/run.sh
#   IQB=<path>  use a prebuilt binary instead of `cargo build --release`.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
HERE="$ROOT/tests/serve_integration"
command -v jq >/dev/null || { echo "error: jq is required" >&2; exit 2; }

if [[ -z "${IQB:-}" ]]; then
    (cd "$ROOT" && cargo build --release -p iqb-cli)
    IQB="$ROOT/target/release/iqb"
fi
[[ -x "$IQB" ]] || { echo "error: $IQB is not executable" >&2; exit 2; }

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [[ -n "$SERVER_PID" ]] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# --- boot ---------------------------------------------------------------
"$IQB" serve --addr 127.0.0.1:0 --shards 2 >"$WORK/serve.log" 2>"$WORK/serve.err" &
SERVER_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^iqb serve: listening on //p' "$WORK/serve.log" | head -n1)"
    [[ -n "$ADDR" ]] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "error: daemon exited before listening" >&2
        cat "$WORK/serve.log" "$WORK/serve.err" >&2
        exit 1
    fi
    sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "error: daemon never reported its address" >&2; exit 1; }
echo "daemon on $ADDR (pid $SERVER_PID)"

client() { "$IQB" client "$@" --addr "$ADDR"; }

# --- drive --------------------------------------------------------------
client submit --input "$HERE/fixture.csv"        >"$WORK/submitted.json"
client health                                    >"$WORK/health.json"
client score                                     >"$WORK/score_default.json"
client score --region metro                      >"$WORK/score_metro.json"
client whatif --region metro                     >"$WORK/whatif.json"
client reload-config --profile graded            >"$WORK/reloaded.json"
client score                                     >"$WORK/score_graded.json"
client metrics                                   >"$WORK/metrics.json"
client shutdown                                  >"$WORK/shutdown.json"

if ! wait "$SERVER_PID"; then
    echo "error: daemon exited nonzero" >&2
    cat "$WORK/serve.log" "$WORK/serve.err" >&2
    exit 1
fi
SERVER_PID=""
grep -q "iqb serve: drained and stopped" "$WORK/serve.log" \
    || { echo "error: daemon did not report a drained stop" >&2; exit 1; }

# --- count-deterministic lines vs committed goldens ---------------------
cat "$WORK/submitted.json" "$WORK/health.json" "$WORK/reloaded.json" \
    "$WORK/shutdown.json" >"$WORK/actual.txt"
diff -u "$HERE/golden.txt" "$WORK/actual.txt" \
    || { echo "error: wire responses diverge from golden.txt" >&2; exit 1; }

# --- drained-equals-batch: daemon reports vs batch `iqb score` ----------
"$IQB" score --input "$HERE/fixture.csv" --format json >"$WORK/batch_default.json"
"$IQB" score --input "$HERE/fixture.csv" --profile graded --format json \
    >"$WORK/batch_graded.json"

jq -S .report "$WORK/score_default.json" >"$WORK/daemon_default.canon"
jq -S .       "$WORK/batch_default.json" >"$WORK/batch_default.canon"
diff -u "$WORK/batch_default.canon" "$WORK/daemon_default.canon" \
    || { echo "error: daemon default-config report != batch score" >&2; exit 1; }

jq -S .score            "$WORK/score_metro.json"   >"$WORK/daemon_metro.canon"
jq -S '.regions.metro'  "$WORK/batch_default.json" >"$WORK/batch_metro.canon"
diff -u "$WORK/batch_metro.canon" "$WORK/daemon_metro.canon" \
    || { echo "error: daemon per-region score != batch score" >&2; exit 1; }

jq -S .report "$WORK/score_graded.json" >"$WORK/daemon_graded.canon"
jq -S .       "$WORK/batch_graded.json" >"$WORK/batch_graded.canon"
diff -u "$WORK/batch_graded.canon" "$WORK/daemon_graded.canon" \
    || { echo "error: daemon post-reload report != batch --profile graded" >&2; exit 1; }

# --- shape checks on the float-bearing / nondeterministic responses -----
jq -e '.type == "whatif" and (.outcomes | length > 0)' "$WORK/whatif.json" >/dev/null \
    || { echo "error: whatif response malformed: $(cat "$WORK/whatif.json")" >&2; exit 1; }
jq -e '.type == "metrics" and (.counters["serve.requests.submit"] >= 1)' \
    "$WORK/metrics.json" >/dev/null \
    || { echo "error: metrics response malformed: $(cat "$WORK/metrics.json")" >&2; exit 1; }

# --- windowed daemon: submit -> window -> detect -> shutdown ------------
"$IQB" serve --addr 127.0.0.1:0 --shards 2 --window 900 \
    >"$WORK/serve_w.log" 2>"$WORK/serve_w.err" &
SERVER_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^iqb serve: listening on //p' "$WORK/serve_w.log" | head -n1)"
    [[ -n "$ADDR" ]] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "error: windowed daemon exited before listening" >&2
        cat "$WORK/serve_w.log" "$WORK/serve_w.err" >&2
        exit 1
    fi
    sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "error: windowed daemon never reported its address" >&2; exit 1; }
echo "windowed daemon on $ADDR (pid $SERVER_PID)"

client submit --input "$HERE/fixture.csv"        >"$WORK/w_submitted.json"
client window --region metro                     >"$WORK/w_metro.json"
client window --region rural                     >"$WORK/w_rural.json"
client detect --region metro                     >"$WORK/w_detect.json"
client shutdown                                  >"$WORK/w_shutdown.json"

if ! wait "$SERVER_PID"; then
    echo "error: windowed daemon exited nonzero" >&2
    cat "$WORK/serve_w.log" "$WORK/serve_w.err" >&2
    exit 1
fi
SERVER_PID=""
grep -q "iqb serve: drained and stopped" "$WORK/serve_w.log" \
    || { echo "error: windowed daemon did not report a drained stop" >&2; exit 1; }

# Normalize the float-bearing window/detect responses down to their
# count-deterministic shape: the window grid, per-window sample counts,
# open/closed/late accounting and detection dimensions are exact; the
# scores themselves are floats and are reduced to "did it score".
norm_window='{type, region, closed, open, late, points: [.points[]
    | {start: .window_start, width: .window_s, samples, closed,
       scored: (.score != null)}]}'
norm_detect='{type, region, windows: .analysis.windows,
    scored: .analysis.scored, period: .analysis.diurnal.period_s,
    shifts: (.analysis.shifts | length)}'
{
    jq -c .              "$WORK/w_submitted.json"
    jq -c "$norm_window" "$WORK/w_metro.json"
    jq -c "$norm_window" "$WORK/w_rural.json"
    jq -c "$norm_detect" "$WORK/w_detect.json"
    jq -c .              "$WORK/w_shutdown.json"
} >"$WORK/actual_window.txt"
diff -u "$HERE/golden_window.txt" "$WORK/actual_window.txt" \
    || { echo "error: windowed wire responses diverge from golden_window.txt" >&2; exit 1; }

# --- sliding (pane-mode) daemon: window -> reload -> window -------------
"$IQB" serve --addr 127.0.0.1:0 --shards 2 --window 900 --slide 300 \
    >"$WORK/serve_s.log" 2>"$WORK/serve_s.err" &
SERVER_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^iqb serve: listening on //p' "$WORK/serve_s.log" | head -n1)"
    [[ -n "$ADDR" ]] && break
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "error: sliding daemon exited before listening" >&2
        cat "$WORK/serve_s.log" "$WORK/serve_s.err" >&2
        exit 1
    fi
    sleep 0.1
done
[[ -n "$ADDR" ]] || { echo "error: sliding daemon never reported its address" >&2; exit 1; }
echo "sliding daemon on $ADDR (pid $SERVER_PID)"

client submit --input "$HERE/fixture.csv"        >"$WORK/s_submitted.json"
client window --region metro                     >"$WORK/s_metro_before.json"
client reload-config --profile graded            >"$WORK/s_reloaded.json"
client window --region metro                     >"$WORK/s_metro_after.json"
client window --region rural                     >"$WORK/s_rural_after.json"
client shutdown                                  >"$WORK/s_shutdown.json"

if ! wait "$SERVER_PID"; then
    echo "error: sliding daemon exited nonzero" >&2
    cat "$WORK/serve_s.log" "$WORK/serve_s.err" >&2
    exit 1
fi
SERVER_PID=""
grep -q "iqb serve: drained and stopped" "$WORK/serve_s.log" \
    || { echo "error: sliding daemon did not report a drained stop" >&2; exit 1; }

# Pane state survives reload-config: the rebuilt shards replay their
# retained stores, so the sliding window grid, per-window sample
# ledgers and open/closed/late accounting must be unchanged.
jq -c "$norm_window" "$WORK/s_metro_before.json" >"$WORK/s_metro_before.norm"
jq -c "$norm_window" "$WORK/s_metro_after.json"  >"$WORK/s_metro_after.norm"
diff -u "$WORK/s_metro_before.norm" "$WORK/s_metro_after.norm" \
    || { echo "error: sliding window state changed across reload-config" >&2; exit 1; }

{
    jq -c .              "$WORK/s_submitted.json"
    cat                  "$WORK/s_metro_before.norm"
    jq -c .              "$WORK/s_reloaded.json"
    cat                  "$WORK/s_metro_after.norm"
    jq -c "$norm_window" "$WORK/s_rural_after.json"
    jq -c .              "$WORK/s_shutdown.json"
} >"$WORK/actual_sliding.txt"
diff -u "$HERE/golden_window_sliding.txt" "$WORK/actual_sliding.txt" \
    || { echo "error: sliding wire responses diverge from golden_window_sliding.txt" >&2; exit 1; }

echo "serve integration: OK"
