//! Cross-crate checks of the measurement-methodology biases the netsim
//! substrate reproduces, observed through the *full* data layer (campaign
//! → store → p95 aggregation) rather than raw protocol outputs.

use iqb::core::{DatasetId, Metric};
use iqb::data::aggregate::{aggregate_region, AggregationSpec};
use iqb::data::store::MeasurementStore;
use iqb::synth::campaign::{run_campaign, CampaignConfig};
use iqb::synth::region::RegionSpec;
use iqb::synth::tech::Technology;

fn aggregated_input(tech: Technology) -> (iqb::core::AggregateInput, iqb::data::record::RegionId) {
    let region = RegionSpec::single_tech(&format!("bias-{}", tech.tag()), tech, 50);
    let output = run_campaign(
        &region,
        &CampaignConfig {
            tests_per_dataset: 1_000,
            seed: 0xB1A5,
            ..Default::default()
        },
    )
    .expect("campaign runs");
    let mut store = MeasurementStore::new();
    store.extend(output.records).expect("valid records");
    let input = aggregate_region(
        &store,
        &region.id,
        &DatasetId::BUILTIN,
        &AggregationSpec::paper_default(),
    )
    .expect("aggregation succeeds");
    (input, region.id)
}

#[test]
fn single_stream_ndt_trails_multi_stream_ookla_on_fiber() {
    let (input, _) = aggregated_input(Technology::Fiber);
    let ndt = input
        .get(&DatasetId::Ndt, Metric::DownloadThroughput)
        .unwrap();
    let ookla = input
        .get(&DatasetId::Ookla, Metric::DownloadThroughput)
        .unwrap();
    assert!(
        ookla > 1.3 * ndt,
        "p95 download: ookla {ookla} should exceed ndt {ndt} on fiber"
    );
}

#[test]
fn methodology_gap_shrinks_on_dsl() {
    let gap = |tech: Technology| {
        let (input, _) = aggregated_input(tech);
        let ndt = input
            .get(&DatasetId::Ndt, Metric::DownloadThroughput)
            .unwrap();
        let ookla = input
            .get(&DatasetId::Ookla, Metric::DownloadThroughput)
            .unwrap();
        ookla / ndt
    };
    let fiber_gap = gap(Technology::Fiber);
    let dsl_gap = gap(Technology::Dsl);
    assert!(
        fiber_gap > dsl_gap,
        "methodology gap should shrink with BDP: fiber {fiber_gap} vs dsl {dsl_gap}"
    );
}

#[test]
fn ookla_latency_reads_lower_than_loaded_ndt_latency() {
    // Idle ping vs during-transfer RTT on a bufferbloated technology.
    let (input, _) = aggregated_input(Technology::Cable);
    let ndt = input.get(&DatasetId::Ndt, Metric::Latency).unwrap();
    let ookla = input.get(&DatasetId::Ookla, Metric::Latency).unwrap();
    assert!(
        ndt > ookla,
        "loaded NDT p95 RTT {ndt} should exceed idle Ookla ping {ookla}"
    );
}

#[test]
fn ookla_never_contributes_packet_loss() {
    for tech in [Technology::Fiber, Technology::Dsl, Technology::Mobile4g] {
        let (input, _) = aggregated_input(tech);
        assert!(input.get(&DatasetId::Ookla, Metric::PacketLoss).is_none());
        assert!(input.get(&DatasetId::Ndt, Metric::PacketLoss).is_some());
        assert!(input
            .get(&DatasetId::Cloudflare, Metric::PacketLoss)
            .is_some());
    }
}

#[test]
fn p95_loss_exceeds_mean_loss() {
    // The p95 aggregation is tail-sensitive by design: on a bursty-loss
    // technology the p95 of per-test loss sits well above the mean.
    let region = RegionSpec::single_tech("bursty", Technology::Mobile4g, 50);
    let output = run_campaign(
        &region,
        &CampaignConfig {
            tests_per_dataset: 2_000,
            seed: 0xB1A5,
            ..Default::default()
        },
    )
    .expect("campaign runs");
    let losses: Vec<f64> = output
        .records
        .iter()
        .filter(|r| r.dataset == DatasetId::Ndt)
        .filter_map(|r| r.loss_pct)
        .collect();
    let mean = losses.iter().sum::<f64>() / losses.len() as f64;
    let p95 = iqb::stats::quantile(&losses, 0.95).unwrap();
    assert!(
        p95 > 1.5 * mean,
        "bursty loss: p95 {p95} should sit well above mean {mean}"
    );
}
