//! Detection-golden regression (E13): the planted diurnal cycle and
//! outage step must be recovered within documented tolerance, and the
//! rendered report must match the committed `results/ext_detection.txt`
//! byte for byte.
//!
//! Tolerances (documented in EXPERIMENTS.md):
//! - period: exact — lag estimation is discrete, 12 samples × 7 200 s;
//! - best/worst hour: exact — phase means are separated by far more than
//!   the ±0.004 noise floor;
//! - swing: planted 2 × amplitude = 0.100, ± 0.02;
//! - shift position: within one window of the planted boundary;
//! - shift magnitude: planted −0.25, ± 0.05.
//!
//! The golden file blesses itself on first run (the binary
//! `cargo run -p iqb-bench --bin ext_detection` regenerates it); once
//! committed, any byte of drift fails here.

use iqb_bench::detection::{
    detection_analysis, detection_golden_text, detection_series, DETECTION_AMPLITUDE,
    DETECTION_STEP, DETECTION_STEP_WINDOW, DETECTION_WINDOWS, DETECTION_WINDOW_S,
};
use iqb_stats::changepoint::ShiftDirection;

#[test]
fn detection_recovers_planted_cycle_and_step_within_tolerance() {
    let points = detection_series();
    let analysis = detection_analysis(&points);

    assert_eq!(analysis.windows, DETECTION_WINDOWS);
    assert_eq!(analysis.scored, DETECTION_WINDOWS);

    // The cycle: 12 windows × 7 200 s = 24 h, peaking at 06:00.
    assert_eq!(analysis.diurnal.period_s, Some(86_400));
    assert!(
        analysis.diurnal.strength >= 0.8,
        "planted cycle should dominate the noise floor, strength {}",
        analysis.diurnal.strength
    );
    assert_eq!(analysis.diurnal.best_hour, Some(6));
    assert_eq!(analysis.diurnal.worst_hour, Some(18));
    let planted_swing = 2.0 * DETECTION_AMPLITUDE;
    assert!(
        (analysis.diurnal.swing - planted_swing).abs() <= 0.02,
        "swing {} drifted from the planted {planted_swing}",
        analysis.diurnal.swing
    );

    // The step: one downward shift, within a window of the plant.
    assert_eq!(
        analysis.shifts.len(),
        1,
        "expected exactly the planted shift, got {:?}",
        analysis.shifts
    );
    let shift = &analysis.shifts[0];
    assert_eq!(shift.direction, ShiftDirection::Down);
    let planted_start = DETECTION_STEP_WINDOW as u64 * DETECTION_WINDOW_S;
    assert!(
        shift.window_start.abs_diff(planted_start) <= DETECTION_WINDOW_S,
        "shift at {} is more than one window from the planted {planted_start}",
        shift.window_start
    );
    assert!(
        (shift.magnitude - DETECTION_STEP).abs() <= 0.05,
        "magnitude {} drifted from the planted {DETECTION_STEP}",
        shift.magnitude
    );
}

#[test]
fn detection_report_matches_committed_golden() {
    let rendered = detection_golden_text();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("ext_detection.txt");
    if !path.exists() {
        // First run on a fresh checkout blesses the golden; review the
        // diff and commit it. Every later run byte-compares.
        std::fs::write(&path, &rendered)
            .unwrap_or_else(|e| panic!("blessing {}: {e}", path.display()));
        eprintln!("blessed new golden {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    assert_eq!(
        rendered, golden,
        "detection report drifted from results/ext_detection.txt; if the \
         change is intended, regenerate it with \
         `cargo run -p iqb-bench --bin ext_detection > results/ext_detection.txt`"
    );
}
