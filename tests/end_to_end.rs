//! End-to-end integration: synthesis → store → aggregation → score →
//! report, across every crate in the workspace.

use iqb::core::IqbConfig;
use iqb::data::aggregate::AggregationSpec;
use iqb::data::store::{MeasurementStore, QueryFilter};
use iqb::pipeline::rank::ranking;
use iqb::pipeline::report::{render_csv, render_summary};
use iqb::pipeline::runner::score_all_regions;
use iqb::synth::campaign::{run_campaign, CampaignConfig};
use iqb::synth::region::RegionSpec;
use iqb::synth::tech::Technology;

const SEED: u64 = 0xE2E;

fn fleet_store(tests_per_dataset: u64) -> MeasurementStore {
    let regions = vec![
        RegionSpec::urban_fiber("urban-fiber", 60),
        RegionSpec::suburban_cable("suburban-cable", 60),
        RegionSpec::rural_dsl("rural-dsl", 60),
        RegionSpec::mobile_first("mobile-first", 60),
    ];
    let mut store = MeasurementStore::new();
    for region in &regions {
        let output = run_campaign(
            region,
            &CampaignConfig {
                tests_per_dataset,
                seed: SEED,
                ..Default::default()
            },
        )
        .expect("campaign runs");
        store.extend(output.records).expect("valid records");
    }
    store
}

#[test]
fn full_pipeline_scores_all_regions() {
    let store = fleet_store(400);
    let report = score_all_regions(
        &store,
        &IqbConfig::paper_default(),
        &AggregationSpec::paper_default(),
        &QueryFilter::all(),
    )
    .expect("pipeline succeeds");
    assert_eq!(report.regions.len(), 4);
    assert!(report.skipped.is_empty());
    for scored in report.regions.values() {
        assert!((0.0..=1.0).contains(&scored.report.score));
        assert!((300..=850).contains(&scored.credit));
        // All six use cases must have been evaluated (data covers all
        // datasets and metrics except Ookla loss).
        assert_eq!(scored.report.use_cases.len(), 6);
    }
}

#[test]
fn infrastructure_ordering_survives_the_whole_stack() {
    // The headline sanity check: after protocol emulation, p95
    // aggregation and weighted scoring, better infrastructure must still
    // score better.
    let store = fleet_store(600);
    let report = score_all_regions(
        &store,
        &IqbConfig::paper_default(),
        &AggregationSpec::paper_default(),
        &QueryFilter::all(),
    )
    .expect("pipeline succeeds");
    let score = |name: &str| {
        report.regions[&iqb::data::record::RegionId::new(name).unwrap()]
            .report
            .score
    };
    assert!(
        score("urban-fiber") >= score("rural-dsl"),
        "fiber {} vs dsl {}",
        score("urban-fiber"),
        score("rural-dsl")
    );
    assert!(
        score("suburban-cable") >= score("rural-dsl"),
        "cable {} vs dsl {}",
        score("suburban-cable"),
        score("rural-dsl")
    );
}

#[test]
fn single_tech_extremes_bracket_everything() {
    let mut store = MeasurementStore::new();
    for (name, tech) in [
        ("all-fiber", Technology::Fiber),
        ("all-geo", Technology::SatelliteGeo),
    ] {
        let region = RegionSpec::single_tech(name, tech, 40);
        let output = run_campaign(
            &region,
            &CampaignConfig {
                tests_per_dataset: 500,
                seed: SEED,
                ..Default::default()
            },
        )
        .expect("campaign runs");
        store.extend(output.records).expect("valid records");
    }
    let report = score_all_regions(
        &store,
        &IqbConfig::paper_default(),
        &AggregationSpec::paper_default(),
        &QueryFilter::all(),
    )
    .expect("pipeline succeeds");
    let ranks = ranking(&report);
    assert_eq!(ranks[0].region.as_str(), "all-fiber");
    assert_eq!(ranks[1].region.as_str(), "all-geo");
    assert!(ranks[0].score > ranks[1].score + 0.2);
}

#[test]
fn pipeline_is_deterministic() {
    let a = fleet_store(200);
    let b = fleet_store(200);
    let config = IqbConfig::paper_default();
    let spec = AggregationSpec::paper_default();
    let ra = score_all_regions(&a, &config, &spec, &QueryFilter::all()).unwrap();
    let rb = score_all_regions(&b, &config, &spec, &QueryFilter::all()).unwrap();
    assert_eq!(ra, rb);
}

#[test]
fn reports_render_from_live_pipeline() {
    let store = fleet_store(200);
    let report = score_all_regions(
        &store,
        &IqbConfig::paper_default(),
        &AggregationSpec::paper_default(),
        &QueryFilter::all(),
    )
    .unwrap();
    let summary = render_summary(&report);
    for name in ["urban-fiber", "suburban-cable", "rural-dsl", "mobile-first"] {
        assert!(summary.contains(name), "summary missing {name}\n{summary}");
    }
    let csv = render_csv(&report);
    assert_eq!(csv.trim_end().lines().count(), 1 + 4);
    assert!(csv.starts_with("region,iqb_score,grade,credit"));
}

#[test]
fn time_filter_restricts_scoring_window() {
    let store = fleet_store(400);
    let config = IqbConfig::paper_default();
    let spec = AggregationSpec::paper_default();
    // A one-hour window somewhere mid-week still scores (campaigns spread
    // tests across the whole week).
    let narrow = QueryFilter::all().time_range(3 * 86_400, 3 * 86_400 + 8 * 3_600);
    let windowed = score_all_regions(&store, &config, &spec, &narrow).unwrap();
    let full = score_all_regions(&store, &config, &spec, &QueryFilter::all()).unwrap();
    assert!(!windowed.regions.is_empty());
    // Fewer samples in the window than in the full campaign.
    for (region, scored) in &windowed.regions {
        let full_cells = &full.regions[region].input;
        for ((dataset, metric), cell) in scored.input.iter() {
            let windowed_n = cell.provenance.unwrap().sample_count;
            let full_n = full_cells
                .get_cell(dataset, *metric)
                .unwrap()
                .provenance
                .unwrap()
                .sample_count;
            assert!(windowed_n < full_n);
        }
    }
}
