//! Property tests for `ScoringSession` under poisoned batches.
//!
//! The contract pinned down here: for *any* record stream, *any*
//! injected poison (NaN/∞ metrics, negative throughput, impossible
//! loss), and *any* batch split, `ingest_lenient` + `rescore` must land
//! the session exactly where a from-scratch batch run over only the
//! clean records lands — with every dropped record accounted for as an
//! `invalid-value` quarantine entry. Strict `ingest` must abort exactly
//! when the stream carries poison.

use iqb::core::{DatasetId, IqbConfig};
use iqb::data::aggregate::AggregationSpec;
use iqb::data::quarantine::FaultKind;
use iqb::data::record::{RegionId, TestRecord};
use iqb::data::store::{MeasurementStore, QueryFilter};
use iqb::pipeline::runner::score_all_regions;
use iqb::pipeline::session::ScoringSession;
use proptest::prelude::*;
use proptest::sample::Index;

const PROP_REGIONS: [&str; 3] = ["east", "west", "north"];

/// One arbitrary, physically plausible test record.
fn clean_record() -> impl Strategy<Value = TestRecord> {
    (
        0..PROP_REGIONS.len(),
        0..DatasetId::BUILTIN.len(),
        1.0..500.0f64,
        1.0..100.0f64,
        1.0..200.0f64,
        proptest::option::of(0.0..5.0f64),
        0..1_000u64,
    )
        .prop_map(|(r, d, down, up, latency, loss, ts)| TestRecord {
            timestamp: ts,
            region: RegionId::new(PROP_REGIONS[r]).unwrap(),
            dataset: DatasetId::BUILTIN[d].clone(),
            download_mbps: down,
            upload_mbps: up,
            latency_ms: latency,
            loss_pct: loss,
            tech: None,
        })
}

/// The ways a record can be out of its physical domain while still being
/// representable (everything `TestRecord::validate` must catch).
#[derive(Debug, Clone, Copy)]
enum Poison {
    NanDownload,
    NegativeUpload,
    InfiniteLatency,
    ImpossibleLoss,
}

fn arb_poison() -> impl Strategy<Value = Poison> {
    prop_oneof![
        Just(Poison::NanDownload),
        Just(Poison::NegativeUpload),
        Just(Poison::InfiniteLatency),
        Just(Poison::ImpossibleLoss),
    ]
}

fn apply(poison: Poison, mut record: TestRecord) -> TestRecord {
    match poison {
        Poison::NanDownload => record.download_mbps = f64::NAN,
        Poison::NegativeUpload => record.upload_mbps = -10.0,
        Poison::InfiniteLatency => record.latency_ms = f64::INFINITY,
        Poison::ImpossibleLoss => record.loss_pct = Some(250.0),
    }
    record
}

/// Interleaves poisoned copies of clean records into the stream at
/// arbitrary positions; the clean subsequence keeps its order.
fn poison_stream(clean: &[TestRecord], poisons: &[(Index, Poison)]) -> Vec<TestRecord> {
    let mut stream = clean.to_vec();
    for (index, poison) in poisons {
        let victim = clean[index.index(clean.len())].clone();
        let at = index.index(stream.len() + 1);
        stream.insert(at, apply(*poison, victim));
    }
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lenient ingest of a poisoned stream, split into arbitrary batches
    /// with a rescore after each, equals a batch run over the retained
    /// clean records — and the quarantine ledger balances exactly.
    #[test]
    fn lenient_session_equals_clean_batch_run(
        clean in proptest::collection::vec(clean_record(), 1..100),
        poisons in proptest::collection::vec((any::<Index>(), arb_poison()), 0..16),
        split in 1..6usize,
    ) {
        let stream = poison_stream(&clean, &poisons);
        let config = IqbConfig::paper_default();
        let spec = AggregationSpec::paper_default();
        let mut session = ScoringSession::new(config.clone(), spec.clone()).unwrap();

        let chunk = stream.len().div_ceil(split).max(1);
        let mut ingested_total = 0usize;
        let mut quarantined_total = 0u64;
        for batch in stream.chunks(chunk) {
            let (ingested, report) = session.ingest_lenient(batch.iter().cloned()).unwrap();
            prop_assert_eq!(report.scanned, batch.len() as u64, "every record scanned");
            prop_assert!(
                report.counts.keys().all(|k| *k == FaultKind::InvalidValue),
                "domain poison classifies as invalid-value: {:?}",
                report.counts
            );
            ingested_total += ingested;
            quarantined_total += report.quarantined();
            session.rescore().unwrap();
        }

        // The ledger balances: kept + quarantined == stream, and the
        // quarantined count is exactly the injected poison.
        prop_assert_eq!(ingested_total, clean.len());
        prop_assert_eq!(quarantined_total, poisons.len() as u64);
        prop_assert_eq!(session.store().len(), clean.len());

        // Poison left no trace: identical to a clean-only batch run.
        let mut store = MeasurementStore::new();
        store.extend(clean.iter().cloned()).unwrap();
        let full = score_all_regions(&store, &config, &spec, &QueryFilter::all()).unwrap();
        prop_assert_eq!(session.report(), &full);
    }

    /// Strict ingest aborts precisely when the stream carries poison.
    #[test]
    fn strict_ingest_aborts_iff_poisoned(
        clean in proptest::collection::vec(clean_record(), 1..40),
        poisons in proptest::collection::vec((any::<Index>(), arb_poison()), 0..4),
    ) {
        let stream = poison_stream(&clean, &poisons);
        let mut session = ScoringSession::new(
            IqbConfig::paper_default(),
            AggregationSpec::paper_default(),
        ).unwrap();
        let result = session.ingest(stream.iter().cloned());
        prop_assert_eq!(result.is_err(), !poisons.is_empty());
    }
}
