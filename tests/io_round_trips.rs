//! Interchange-format round trips on realistic (synthesized) data.

use iqb::core::IqbConfig;
use iqb::data::csv_io::{read_csv, read_csv_into_store, write_csv};
use iqb::data::jsonl::{read_jsonl, write_jsonl};
use iqb::synth::campaign::{run_campaign, CampaignConfig};
use iqb::synth::region::RegionSpec;

fn campaign_records() -> Vec<iqb::data::record::TestRecord> {
    run_campaign(
        &RegionSpec::suburban_cable("io-region", 40),
        &CampaignConfig {
            tests_per_dataset: 300,
            seed: 0x10,
            ..Default::default()
        },
    )
    .expect("campaign runs")
    .records
}

#[test]
fn csv_round_trip_on_campaign_output() {
    let records = campaign_records();
    let mut buf = Vec::new();
    let written = write_csv(&mut buf, &records).unwrap();
    assert_eq!(written, records.len());
    let back = read_csv(buf.as_slice()).unwrap();
    assert_eq!(back, records);
}

#[test]
fn jsonl_round_trip_on_campaign_output() {
    let records = campaign_records();
    let mut buf = Vec::new();
    write_jsonl(&mut buf, &records).unwrap();
    let back = read_jsonl(buf.as_slice()).unwrap();
    assert_eq!(back, records);
}

#[test]
fn csv_import_preserves_scoring_result() {
    // Scoring from the original records and from a CSV round trip must
    // agree exactly.
    let records = campaign_records();
    let mut original = iqb::data::store::MeasurementStore::new();
    original.extend(records.iter().cloned()).unwrap();

    let mut buf = Vec::new();
    write_csv(&mut buf, &records).unwrap();
    let imported = read_csv_into_store(buf.as_slice()).unwrap();

    let config = IqbConfig::paper_default();
    let spec = iqb::data::aggregate::AggregationSpec::paper_default();
    let filter = iqb::data::store::QueryFilter::all();
    let a = iqb::pipeline::runner::score_all_regions(&original, &config, &spec, &filter).unwrap();
    let b = iqb::pipeline::runner::score_all_regions(&imported, &config, &spec, &filter).unwrap();
    assert_eq!(a, b);
}

#[test]
fn config_json_round_trip_with_customisations() {
    use iqb::core::dataset::DatasetId;
    use iqb::core::metric::Metric;
    use iqb::core::usecase::UseCase;
    use iqb::core::weights::Weight;

    let mut config = IqbConfig::paper_default();
    config.use_case_weights.set(UseCase::Gaming, Weight::new(5).unwrap());
    config.dataset_weights.set(
        UseCase::Gaming,
        Metric::Latency,
        DatasetId::Ookla,
        Weight::ZERO,
    );
    config
        .dataset_weights
        .set(
            UseCase::custom("Remote Surgery").unwrap(),
            Metric::Latency,
            DatasetId::Custom("clinic-probes".into()),
            Weight::new(3).unwrap(),
        );
    let json = serde_json::to_string_pretty(&config).unwrap();
    let back: IqbConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, config);
}

#[test]
fn regional_report_json_round_trip() {
    let records = campaign_records();
    let mut store = iqb::data::store::MeasurementStore::new();
    store.extend(records).unwrap();
    let report = iqb::pipeline::runner::score_all_regions(
        &store,
        &IqbConfig::paper_default(),
        &iqb::data::aggregate::AggregationSpec::paper_default(),
        &iqb::data::store::QueryFilter::all(),
    )
    .unwrap();
    let json = iqb::pipeline::report::render_json(&report).unwrap();
    let back: iqb::pipeline::runner::RegionalReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}
