//! Scenario suite: hand-constructed connections with known expected
//! verdicts, exercising the scoring semantics end to end through the
//! public API.

use iqb::core::config::{IqbConfig, ScoringMode};
use iqb::core::grade::GradeBands;
use iqb::core::threshold::QualityLevel;
use iqb::core::usecase::UseCase;
use iqb::core::{score_iqb, AggregateInput, DatasetId, Metric};

/// Input where every dataset reports the same four aggregates.
fn connection(down: f64, up: f64, rtt: f64, loss: f64) -> AggregateInput {
    let mut input = AggregateInput::new();
    for d in DatasetId::BUILTIN {
        input.set(d.clone(), Metric::DownloadThroughput, down);
        input.set(d.clone(), Metric::UploadThroughput, up);
        input.set(d.clone(), Metric::Latency, rtt);
        input.set(d, Metric::PacketLoss, loss);
    }
    input
}

#[test]
fn gigabit_fiber_gets_an_a() {
    let report = score_iqb(
        &IqbConfig::paper_default(),
        &connection(940.0, 880.0, 4.0, 0.01),
    )
    .unwrap();
    assert!(report.score > 0.95, "{}", report.score);
    assert_eq!(
        GradeBands::default().grade(report.score).unwrap().label(),
        'A'
    );
}

#[test]
fn legacy_dsl_fails_high_quality_but_partially_meets_minimum() {
    let input = connection(18.0, 1.5, 70.0, 0.9);
    let high = score_iqb(&IqbConfig::paper_default(), &input).unwrap();
    assert!(high.score < 0.2, "high-level score {}", high.score);
    let min_config = IqbConfig::builder()
        .quality_level(QualityLevel::Minimum)
        .build()
        .unwrap();
    let min = score_iqb(&min_config, &input).unwrap();
    assert!(
        min.score > high.score,
        "minimum {} vs high {}",
        min.score,
        high.score
    );
}

#[test]
fn upload_starved_cable_is_limited_by_upload_everywhere_it_matters() {
    // Classic DOCSIS asymmetry: 500 down, 11 up.
    let report = score_iqb(
        &IqbConfig::paper_default(),
        &connection(500.0, 11.0, 15.0, 0.05),
    )
    .unwrap();
    for use_case in [UseCase::VideoConferencing, UseCase::OnlineBackup] {
        let ucs = &report.use_cases[&use_case];
        assert_eq!(
            ucs.limiting_requirement().unwrap().0,
            Metric::UploadThroughput,
            "{use_case} should be upload-limited"
        );
    }
    // Web browsing's high-quality upload is "Other": unaffected.
    let wb = &report.use_cases[&UseCase::WebBrowsing];
    assert!((wb.score - 1.0).abs() < 1e-12);
}

#[test]
fn satellite_latency_caps_gaming_regardless_of_throughput() {
    let report = score_iqb(
        &IqbConfig::paper_default(),
        &connection(200.0, 20.0, 620.0, 0.4),
    )
    .unwrap();
    let gaming = &report.use_cases[&UseCase::Gaming];
    let latency = &gaming.requirements[&Metric::Latency];
    assert_eq!(latency.agreement, 0.0);
    assert_eq!(
        gaming.limiting_requirement().unwrap().0,
        Metric::Latency
    );
}

#[test]
fn loss_spike_hits_streaming_harder_than_browsing() {
    // 0.3% loss: below browsing/gaming's 0.5% high bar, above the 0.1%
    // bar of streaming/conferencing/backup.
    let report = score_iqb(
        &IqbConfig::paper_default(),
        &connection(300.0, 250.0, 12.0, 0.3),
    )
    .unwrap();
    let loss_agreement = |u: &UseCase| report.use_cases[u].requirements[&Metric::PacketLoss].agreement;
    assert_eq!(loss_agreement(&UseCase::WebBrowsing), 1.0);
    assert_eq!(loss_agreement(&UseCase::Gaming), 1.0);
    assert_eq!(loss_agreement(&UseCase::VideoStreaming), 0.0);
    assert_eq!(loss_agreement(&UseCase::AudioStreaming), 0.0);
}

#[test]
fn missing_dataset_changes_nothing_when_verdicts_agree() {
    let full = connection(940.0, 880.0, 4.0, 0.01);
    let mut partial = AggregateInput::new();
    for ((d, m), cell) in full.iter() {
        if *d == DatasetId::Cloudflare {
            continue; // drop one whole dataset
        }
        partial.set(d.clone(), *m, cell.value);
    }
    let config = IqbConfig::paper_default();
    let a = score_iqb(&config, &full).unwrap().score;
    let b = score_iqb(&config, &partial).unwrap().score;
    assert!((a - b).abs() < 1e-12, "unanimous verdicts: {a} vs {b}");
}

#[test]
fn graded_mode_separates_identical_binary_scores() {
    // Two connections that fail the same binary cells but by different
    // margins: binary cannot tell them apart, graded must.
    let nearly = connection(95.0, 95.0, 22.0, 0.12); // just misses several bars
    let badly = connection(52.0, 52.0, 45.0, 0.45); // misses the same bars, worse
    let binary = IqbConfig::paper_default();
    let graded = IqbConfig::builder()
        .scoring_mode(ScoringMode::Graded)
        .build()
        .unwrap();
    let b_nearly = score_iqb(&binary, &nearly).unwrap().score;
    let b_badly = score_iqb(&binary, &badly).unwrap().score;
    let g_nearly = score_iqb(&graded, &nearly).unwrap().score;
    let g_badly = score_iqb(&graded, &badly).unwrap().score;
    assert_eq!(b_nearly, b_badly, "binary collapses the two connections");
    assert!(
        g_nearly > g_badly + 0.1,
        "graded must separate them: {g_nearly} vs {g_badly}"
    );
}

#[test]
fn sensitivity_tools_run_on_public_api() {
    use iqb::core::sensitivity::{requirement_weight_tornado, threshold_sweep};
    let config = IqbConfig::paper_default();
    let input = connection(120.0, 15.0, 18.0, 0.05);
    let rows = requirement_weight_tornado(&config, &input).unwrap();
    assert_eq!(rows.len(), 24);
    let sweep = threshold_sweep(
        &config,
        &input,
        &UseCase::Gaming,
        Metric::Latency,
        QualityLevel::High,
        &[0.5, 1.0, 2.0],
    )
    .unwrap();
    assert_eq!(sweep.len(), 3);
    // Laxer latency threshold cannot lower the score.
    assert!(sweep[2].score >= sweep[0].score);
}
