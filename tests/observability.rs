//! Observability invariants across the instrumented crates (PR 3).
//!
//! Exercises the real ingest and scoring paths and checks that what the
//! metrics registry says happened is exactly what the quarantine and
//! pipeline accounting say happened. The global registry is shared by
//! every test in this binary, so tests that assert exact deltas hold
//! [`ingest_lock`] around their window.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use iqb_core::config::IqbConfig;
use iqb_data::aggregate::AggregationSpec;
use iqb_data::csv_io;
use iqb_data::quarantine::IngestMode;
use iqb_data::store::{MeasurementStore, QueryFilter};
use iqb_obs::{names, EventSink, RunTelemetry, SharedBuffer, Span};
use iqb_pipeline::runner::score_all_regions;

/// Serializes registry-window tests so concurrent tests in this binary
/// cannot contaminate each other's snapshot deltas.
fn ingest_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn corrupt_csv(clean_rows: usize, bad_rows: usize) -> String {
    let mut csv = String::from(
        "timestamp,region,dataset,download_mbps,upload_mbps,latency_ms,loss_pct,tech\n",
    );
    for i in 0..clean_rows {
        csv.push_str(&format!("{},metro,ndt,90.0,20.0,25.0,0.1,\n", i * 60));
    }
    for i in 0..bad_rows {
        csv.push_str(&format!("{},metro,ndt,NaN,20.0,25.0,0.1,\n", 900_000 + i * 60));
    }
    csv
}

#[test]
fn registry_mirrors_quarantine_accounting_exactly() {
    let _guard = ingest_lock();
    let before = iqb_obs::global().snapshot();
    let (records, report) =
        csv_io::read_csv_mode(corrupt_csv(12, 3).as_bytes(), IngestMode::Lenient).unwrap();
    let delta = iqb_obs::global().snapshot().diff(&before);

    assert_eq!(records.len(), 12);
    // The registry numbers ARE the QuarantineReport numbers — same
    // mirror_to choke point, no second bookkeeping path to drift.
    assert_eq!(
        delta.counter(&names::per_source(names::INGEST_SCANNED, "csv")),
        report.scanned
    );
    assert_eq!(
        delta.counter(&names::per_source(names::INGEST_KEPT, "csv")),
        report.kept
    );
    assert_eq!(
        delta.counter(&names::per_source(names::INGEST_QUARANTINED, "csv")),
        report.quarantined()
    );
    // The accounting identity holds inside the registry itself.
    assert_eq!(
        delta.counter(&names::per_source(names::INGEST_SCANNED, "csv")),
        delta.counter(&names::per_source(names::INGEST_KEPT, "csv"))
            + delta.counter(&names::per_source(names::INGEST_QUARANTINED, "csv"))
    );
    // Fault-kind counters sum to the quarantined total.
    let faults: u64 = delta.labelled(names::INGEST_FAULT).values().sum();
    assert_eq!(faults, report.quarantined());
}

#[test]
fn run_telemetry_equals_quarantine_report_on_the_same_run() {
    let _guard = ingest_lock();
    let before = iqb_obs::global().snapshot();
    let (records, report) =
        csv_io::read_csv_mode(corrupt_csv(30, 5).as_bytes(), IngestMode::Lenient).unwrap();
    let mut store = MeasurementStore::new();
    store.extend(records).unwrap();
    let config = IqbConfig::paper_default();
    let spec = AggregationSpec::uniform_quantile(0.95).unwrap();
    let scored = score_all_regions(&store, &config, &spec, &QueryFilter::all()).unwrap();
    let delta = iqb_obs::global().snapshot().diff(&before);

    let telemetry = RunTelemetry::from_delta(&delta, vec![("score".into(), 1.0)]);
    let csv = &telemetry.sources["csv"];
    assert_eq!(csv.scanned, report.scanned);
    assert_eq!(csv.kept, report.kept);
    assert_eq!(csv.quarantined, report.quarantined());
    let fault_totals: BTreeMap<String, u64> = report
        .counts
        .iter()
        .map(|(kind, n)| (kind.tag().to_string(), *n))
        .collect();
    assert_eq!(telemetry.faults, fault_totals);
    // The scoring pass is accounted too: one region scored, values
    // pushed for every kept record's metrics.
    assert_eq!(telemetry.regions_scored, scored.regions.len() as u64);
    assert!(telemetry.agg_values_pushed > 0);
    // Both documents render and serialize.
    assert!(telemetry.render_text().contains("ingest[csv]"));
    let json: serde_json::Value = serde_json::from_str(&telemetry.to_json()).unwrap();
    assert_eq!(json["sources"]["csv"]["scanned"], report.scanned);
}

#[test]
fn scoring_is_counted_in_the_registry() {
    let _guard = ingest_lock();
    let regions = iqb_synth::region::RegionSpec::urban_fiber("obs-urban", 15);
    let campaign = iqb_synth::campaign::run_campaign(
        &regions,
        &iqb_synth::campaign::CampaignConfig {
            tests_per_dataset: 40,
            ..Default::default()
        },
    )
    .unwrap();
    let mut store = MeasurementStore::new();
    store.extend(campaign.records.iter().cloned()).unwrap();

    let before = iqb_obs::global().snapshot();
    let config = IqbConfig::paper_default();
    let spec = AggregationSpec::uniform_quantile(0.95).unwrap();
    let report = score_all_regions(&store, &config, &spec, &QueryFilter::all()).unwrap();
    let delta = iqb_obs::global().snapshot().diff(&before);

    assert_eq!(report.regions.len(), 1);
    assert_eq!(delta.counter(names::PIPELINE_REGIONS_SCORED), 1);
    assert_eq!(delta.counter(names::PIPELINE_REGIONS_SKIPPED), 0);
    // Every (region, metric, dataset) cell pushes its samples through a
    // sink; the exact count is data-dependent but must cover at least
    // one value per kept record once across the metric columns.
    assert!(delta.counter(names::AGG_VALUES_PUSHED) >= store.len() as u64);
    // Region scoring wall time landed in the histogram.
    let hist = delta
        .histogram(names::PIPELINE_REGION_SCORE_MS)
        .expect("region score histogram recorded");
    assert_eq!(hist.count, 1);
}

#[test]
fn span_sink_emits_well_nested_jsonl() {
    let buf = SharedBuffer::new();
    let sink = EventSink::new(Box::new(buf.clone()));
    {
        let root = Span::with_sink("run", sink);
        {
            let ingest = root.child("ingest");
            drop(ingest);
        }
        let score = root.child("score");
        let _grandchild = score.child("region");
    }
    let text = buf.contents();
    let mut stack: Vec<String> = Vec::new();
    let mut seqs = Vec::new();
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("each line is JSON");
        seqs.push(v["seq"].as_u64().unwrap());
        let name = v["span"].as_str().unwrap().to_string();
        let depth = v["depth"].as_u64().unwrap() as usize;
        match v["event"].as_str().unwrap() {
            "span_start" => {
                assert_eq!(depth, stack.len(), "start depth matches nesting");
                stack.push(name);
            }
            "span_end" => {
                assert_eq!(stack.pop().as_deref(), Some(name.as_str()));
                assert_eq!(depth, stack.len(), "end depth matches nesting");
            }
            other => panic!("unknown event `{other}`"),
        }
    }
    assert!(stack.is_empty(), "every span closed");
    assert_eq!(seqs, (0..8).collect::<Vec<u64>>(), "gap-free sequence");
}

#[test]
fn strict_ingest_mirrors_nothing_extra_on_clean_input() {
    let _guard = ingest_lock();
    let before = iqb_obs::global().snapshot();
    let (records, report) =
        csv_io::read_csv_mode(corrupt_csv(7, 0).as_bytes(), IngestMode::Strict).unwrap();
    let delta = iqb_obs::global().snapshot().diff(&before);
    assert_eq!(records.len(), 7);
    assert!(report.is_clean());
    assert_eq!(
        delta.counter(&names::per_source(names::INGEST_SCANNED, "csv")),
        7
    );
    assert_eq!(delta.counter(&names::per_source(names::INGEST_KEPT, "csv")), 7);
    assert_eq!(
        delta.counter(&names::per_source(names::INGEST_QUARANTINED, "csv")),
        0
    );
    assert!(delta.labelled(names::INGEST_FAULT).values().all(|v| *v == 0));
}
