#![forbid(unsafe_code)]
//! # iqb — the Internet Quality Barometer, in Rust
//!
//! A facade crate re-exporting the full IQB workspace: a reproduction of
//! *"Poster: The Internet Quality Barometer Framework"* (Ohlsen, Sermpezis,
//! Newcomb — Measurement Lab, IMC 2025).
//!
//! The IQB framework redefines Internet quality beyond "speed": it scores a
//! connection or region against *use cases* (web browsing, video
//! conferencing, gaming, …), each with expert-elicited network-requirement
//! thresholds and weights, corroborated across multiple measurement
//! datasets, and rolls everything into a composite **IQB score** in
//! `[0, 1]`.
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`core`] | `iqb-core` | use cases, thresholds (Fig. 2), weights (Table 1), the score (eq. 1–5), grades, sensitivity |
//! | [`stats`] | `iqb-stats` | quantiles, t-digest, bootstrap, windowed aggregation |
//! | [`netsim`] | `iqb-netsim` | access-network simulator and speed-test protocol emulation |
//! | [`synth`] | `iqb-synth` | synthetic measurement campaigns over technology/region models |
//! | [`data`] | `iqb-data` | per-test records, stores, CSV/JSONL I/O, aggregation to scoring input |
//! | [`pipeline`] | `iqb-pipeline` | end-to-end runner, regional reports, rankings, trends, comparisons, exhibits |
//! | [`serve`] | `iqb-serve` | sharded, snapshot-isolated scoring daemon: TCP server, JSON wire protocol, client |
//!
//! A command-line front end (`iqb-cli`, binary name `iqb`) drives the same
//! APIs: `iqb synth | score | compare | trend | whatif | exhibits`, plus
//! `iqb serve` (the long-running daemon) and `iqb client` (its wire
//! driver).
//!
//! ## Quickstart
//!
//! ```
//! use iqb::core::{score_iqb, AggregateInput, DatasetId, IqbConfig, Metric};
//!
//! let config = IqbConfig::paper_default();
//! let mut input = AggregateInput::new();
//! for d in [DatasetId::Ndt, DatasetId::Cloudflare, DatasetId::Ookla] {
//!     input.set(d.clone(), Metric::DownloadThroughput, 250.0);
//!     input.set(d.clone(), Metric::UploadThroughput, 110.0);
//!     input.set(d.clone(), Metric::Latency, 14.0);
//!     input.set(d, Metric::PacketLoss, 0.05);
//! }
//! let report = score_iqb(&config, &input).unwrap();
//! println!("IQB score: {:.3}", report.score);
//! ```
//!
//! See `examples/` for end-to-end scenarios driving the synthetic dataset
//! generator and the full pipeline.

pub use iqb_core as core;
pub use iqb_data as data;
pub use iqb_netsim as netsim;
pub use iqb_pipeline as pipeline;
pub use iqb_serve as serve;
pub use iqb_stats as stats;
pub use iqb_synth as synth;
